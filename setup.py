"""Packaging for the Sizey reproduction.

The single source of truth for the version is ``src/repro/__init__.py``;
it is read textually here so ``setup.py`` never imports the package (and
its numpy dependency) at build time.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(
    r'^__version__ = "([^"]+)"', _INIT.read_text(), re.MULTILINE
).group(1)

setup(
    name="sizey-repro",
    version=_VERSION,
    description=(
        "Reproduction of Sizey: Memory-Efficient Execution of Scientific "
        "Workflow Tasks (IEEE CLUSTER 2024)"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark", "pytest-xdist"],
        "lint": ["ruff"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
    classifiers=[
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "License :: OSI Approved :: MIT License",
    ],
)
