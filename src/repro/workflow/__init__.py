"""Scientific-workflow task model and synthetic trace generation.

A workflow is a DAG of black-box *task types*; each task type is a
template instantiated into many *physical task instances* with concrete
inputs (paper §I).  This package provides:

- :mod:`repro.workflow.task` -- the task-type / task-instance data model.
- :mod:`repro.workflow.dag` -- the workflow DAG with validation and
  topological stage ordering.
- :mod:`repro.workflow.archetypes` -- parametric memory/runtime behaviour
  models (linear, sub-linear, quadratic, bimodal, heavy-tail constant)
  calibrated to the shapes in the paper's Figs. 1 and 2.
- :mod:`repro.workflow.generator` -- deterministic trace generation.
- :mod:`repro.workflow.nfcore` -- the six evaluation workflows (eager,
  methylseq, chipseq, rnaseq, mag, iwd) parameterised with the paper's
  Table I statistics.
- :mod:`repro.workflow.io` -- versioned trace serialisation (JSON
  v1/v2, streaming JSONL, CSV) with typed
  :class:`~repro.workflow.io.TraceFormatError` validation.
"""

from repro.workflow.dag import WorkflowDAG
from repro.workflow.generator import TaskTypeSpec, WorkflowSpec, generate_trace
from repro.workflow.io import TraceFormatError, load_trace, save_trace
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace

__all__ = [
    "TaskType",
    "TaskInstance",
    "WorkflowTrace",
    "WorkflowDAG",
    "TaskTypeSpec",
    "WorkflowSpec",
    "generate_trace",
    "TraceFormatError",
    "load_trace",
    "save_trace",
]
