"""Deterministic synthetic workflow-trace generation.

The paper's evaluation replays measured traces of six nf-core workflow
executions.  Those traces are not public, so this module generates
synthetic equivalents: each task type is declared with a memory
archetype (see :mod:`repro.workflow.archetypes`), an input-size
distribution, and a runtime model; the generator draws every instance's
ground truth from a seeded RNG.  The same (spec, seed) pair always
produces an identical trace.

Submission order follows the workflow DAG stage by stage — instances of
downstream task types are only submitted after upstream stages, matching
how an SWMS releases ready tasks and therefore how much history an
online predictor has accumulated when each task arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workflow.archetypes import MemoryArchetype, RuntimeModel
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace

__all__ = ["TaskTypeSpec", "WorkflowSpec", "generate_trace"]


@dataclass
class TaskTypeSpec:
    """Declarative description of one task type's behaviour.

    Attributes
    ----------
    name:
        Task-type name (e.g. ``"MarkDuplicates"``).
    archetype:
        Memory behaviour model.
    n_instances:
        Number of physical instances to generate.
    input_median_mb / input_sigma:
        Log-normal input-size distribution parameters (median in MB and
        log-scale sigma).
    input_min_mb / input_max_mb:
        Hard clip range for input sizes.
    runtime:
        Runtime/CPU/IO model; defaults to a generic short task.
    preset_factor:
        The user preset is ``ceil_to_gb(max_peak * preset_factor)``, with
        a 4 GB floor — matching the conservative round-number defaults
        workflow developers ship (nf-core processes typically request
        4-72 GB regardless of input); presets never fail, as in the paper.
    """

    name: str
    archetype: MemoryArchetype
    n_instances: int
    input_median_mb: float = 1024.0
    input_sigma: float = 0.6
    input_min_mb: float = 1.0
    input_max_mb: float = 1024.0 * 64
    runtime: RuntimeModel = field(default_factory=RuntimeModel)
    preset_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.n_instances < 1:
            raise ValueError(f"n_instances must be >= 1 for {self.name!r}")
        if self.input_median_mb <= 0 or self.input_sigma < 0:
            raise ValueError(f"invalid input distribution for {self.name!r}")
        if self.preset_factor < 1.0:
            raise ValueError(
                f"preset_factor must be >= 1 so presets never fail "
                f"(got {self.preset_factor} for {self.name!r})"
            )


@dataclass
class WorkflowSpec:
    """A workflow: its task-type specs, DAG, and machine pool."""

    name: str
    task_types: list[TaskTypeSpec]
    dag: WorkflowDAG | None = None
    machines: list[str] = field(default_factory=lambda: ["epyc-7282-128g"])
    max_memory_mb: float = 128.0 * 1024

    def __post_init__(self) -> None:
        names = [t.name for t in self.task_types]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate task types in {self.name!r}: {dupes}")
        if self.dag is None:
            # Default DAG: a linear pipeline in declaration order.
            self.dag = WorkflowDAG.linear_pipeline(names)
        else:
            missing = set(names) ^ set(self.dag.nodes)
            if missing:
                raise ValueError(
                    f"DAG nodes and task types disagree in {self.name!r}: {missing}"
                )
        if not self.machines:
            raise ValueError("at least one machine is required")

    def spec_of(self, task_name: str) -> TaskTypeSpec:
        for spec in self.task_types:
            if spec.name == task_name:
                return spec
        raise KeyError(task_name)


def _ceil_to_gb(mb: float) -> float:
    return float(np.ceil(mb / 1024.0) * 1024.0)


def generate_trace(spec: WorkflowSpec, seed: int = 0) -> WorkflowTrace:
    """Generate the full execution trace of ``spec``.

    Ground-truth peaks are capped just below the machine capacity so that
    every task is schedulable (the paper's traces are from successful
    workflow runs).
    """
    rng = np.random.default_rng(seed)
    peak_cap = spec.max_memory_mb * 0.85

    # Pass 1: draw raw per-type arrays.  The batched sample paths are
    # RNG-stream-identical to the historical per-instance loops (pinned
    # by the golden trace tests and the archetype equivalence tests), so
    # traces stay bit-for-bit while generation runs vectorized.
    per_type: dict[str, dict[str, np.ndarray]] = {}
    for t in spec.task_types:
        mu = np.log(t.input_median_mb)
        inputs = np.exp(rng.normal(mu, t.input_sigma, size=t.n_instances))
        inputs = np.clip(inputs, t.input_min_mb, t.input_max_mb)
        peaks = np.asarray(
            t.archetype.sample_batch(inputs, rng), dtype=np.float64
        )
        peaks = np.minimum(peaks, peak_cap)
        rt, cpu, io_r, io_w = t.runtime.sample_batch(inputs, rng)
        per_type[t.name] = {
            "inputs": inputs,
            "peaks": peaks,
            "runtime": rt,
            "cpu": cpu,
            "io_read": io_r,
            "io_write": io_w,
        }

    # Pass 2: build TaskType objects with presets derived from true peaks.
    task_types: dict[str, TaskType] = {}
    for t in spec.task_types:
        preset = _ceil_to_gb(float(per_type[t.name]["peaks"].max()) * t.preset_factor)
        preset = min(max(preset, 4096.0), spec.max_memory_mb)
        task_types[t.name] = TaskType(
            name=t.name, workflow=spec.name, preset_memory_mb=preset
        )

    # Pass 3: emit instances stage by stage; shuffle within a stage so
    # different task types interleave as they would on a busy cluster.
    # The per-type columns are bulk-converted to Python floats once
    # (``tolist`` yields the exact same values as per-element
    # ``float(arr[i])``), and each instance is assembled with
    # ``object.__new__`` + a ``__dict__`` fill — skipping the frozen
    # dataclass's per-field ``object.__setattr__`` — so the assembly
    # keeps up with the vectorized draws at million-task scale.
    columns = {
        name: (
            d["inputs"].tolist(),
            d["peaks"].tolist(),
            d["runtime"].tolist(),
            d["cpu"].tolist(),
            d["io_read"].tolist(),
            d["io_write"].tolist(),
        )
        for name, d in per_type.items()
    }
    instances: list[TaskInstance] = []
    append = instances.append
    new = object.__new__
    machines = spec.machines
    instance_id = 0
    assert spec.dag is not None
    for stage in spec.dag.stages:
        stage_slots: list[tuple[str, int]] = []
        for name in stage:
            n = spec.spec_of(name).n_instances
            stage_slots.extend((name, i) for i in range(n))
        order = rng.permutation(len(stage_slots))
        # One bounded-integer block replaces the per-instance machine
        # draws; the Generator's array fill consumes the bit stream
        # exactly like the equivalent sequence of scalar calls.
        machine_draws = rng.integers(
            0, len(spec.machines), size=len(stage_slots)
        )
        machine_picks = machine_draws.tolist()
        for slot_pos, k in enumerate(order.tolist()):
            name, i = stage_slots[k]
            inputs, peaks, runtimes, cpus, io_reads, io_writes = columns[name]
            inst = new(TaskInstance)
            # ``__dict__`` fill skips the frozen dataclass's per-field
            # ``object.__setattr__``.
            inst.__dict__.update(
                task_type=task_types[name],
                instance_id=instance_id,
                input_size_mb=inputs[i],
                peak_memory_mb=peaks[i],
                runtime_hours=runtimes[i],
                cpu_percent=cpus[i],
                io_read_mb=io_reads[i],
                io_write_mb=io_writes[i],
                machine=machines[machine_picks[slot_pos]],
            )
            append(inst)
            instance_id += 1

    # Export the DAG that governed stage ordering above, so the
    # DAG-aware scheduler consumes the same dependency structure the
    # generator produced the trace under (one source of truth).
    return WorkflowTrace(spec.name, instances, dag=spec.dag)
