"""Parametric task-behaviour archetypes.

The paper's evaluation rests on the observation that different task types
exhibit *different* relationships between input size and peak memory
(Figs. 1 and 2): some are cleanly linear (MarkDuplicates), some bimodal
(BaseRecalibrator — "using a linear model ... would lead to half of the
task instances failing"), some nearly input-independent with wide spread
(lcextrap).  Each archetype below generates ground-truth peak memory,
runtime, CPU and I/O figures for a task instance given its input size.

All archetypes are deterministic functions of (input size, RNG), so a
seeded generator reproduces a trace bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MemoryArchetype",
    "LinearMemory",
    "SublinearMemory",
    "PolynomialMemory",
    "BimodalMemory",
    "ConstantHeavyTailMemory",
    "SaturatingMemory",
    "RuntimeModel",
    "ARCHETYPE_REGISTRY",
]


class MemoryArchetype:
    """Base class: maps input size (MB) to peak memory (MB), stochastically."""

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample_batch(
        self, inputs_mb: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized :meth:`sample` over a whole input array.

        Must consume the RNG stream exactly as ``[sample(x, rng) for x
        in inputs_mb]`` would, so batched and per-task generation stay
        bit-for-bit identical (the golden trace tests pin this).  The
        built-in archetypes override with true vectorized draws — one
        ``standard_normal`` array in instance-major order replaces the
        per-call scalar draws, which is where the generator's time went;
        this fallback keeps third-party archetypes correct unchanged.
        """
        return np.array(
            [self.sample(float(x), rng) for x in inputs_mb],
            dtype=np.float64,
        )

    def _positive(self, value: float, floor: float = 16.0) -> float:
        """Clamp to a sane positive floor (tasks never use < ~16 MB)."""
        return max(float(value), floor)

    def _noisy_batch(
        self,
        base: np.ndarray,
        rng: np.random.Generator,
        noise_frac: float,
        noise_mb: float,
    ) -> np.ndarray:
        """Apply the shared frac-then-mb noise scheme to a base array.

        One ``standard_normal((n, k))`` draw in instance-major (row)
        order consumes the stream exactly like the scalar path's
        per-instance ``normal(0, frac)`` / ``normal(0, mb)`` pairs —
        ``normal(loc, scale)`` is ``loc + scale * standard_normal()``
        draw for draw.
        """
        k = (1 if noise_frac else 0) + (1 if noise_mb else 0)
        value = base
        if k:
            z = rng.standard_normal((base.shape[0], k))
            col = 0
            if noise_frac:
                value = base * (1.0 + noise_frac * z[:, col])
                col += 1
            if noise_mb:
                value = value + noise_mb * z[:, col]
        return np.maximum(value, 16.0)


@dataclass
class LinearMemory(MemoryArchetype):
    """``mem = slope * input + intercept`` with Gaussian noise.

    The MarkDuplicates shape in Fig. 2 (clear linear correlation).
    ``noise_frac`` is multiplicative jitter (scales with the memory
    level, i.e. heteroscedastic); ``noise_mb`` is additive jitter (a
    fixed spread from buffers/runtime overhead, independent of input).
    Most real tools are dominated by the additive component.
    """

    slope: float = 4.0
    intercept_mb: float = 512.0
    noise_frac: float = 0.03
    noise_mb: float = 0.0

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        base = self.slope * input_mb + self.intercept_mb
        value = base * (1.0 + rng.normal(0.0, self.noise_frac)) if self.noise_frac else base
        if self.noise_mb:
            value += rng.normal(0.0, self.noise_mb)
        return self._positive(value)

    def sample_batch(
        self, inputs_mb: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        inputs = np.asarray(inputs_mb, dtype=np.float64)
        base = self.slope * inputs + self.intercept_mb
        return self._noisy_batch(base, rng, self.noise_frac, self.noise_mb)


@dataclass
class SublinearMemory(MemoryArchetype):
    """``mem = coef * input^exponent + intercept`` with ``exponent < 1``.

    Streaming tools whose working set grows with the square root (or
    similar) of input size.
    """

    coef: float = 64.0
    exponent: float = 0.5
    intercept_mb: float = 256.0
    noise_frac: float = 0.05
    noise_mb: float = 0.0

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        base = self.coef * input_mb**self.exponent + self.intercept_mb
        value = base * (1.0 + rng.normal(0.0, self.noise_frac)) if self.noise_frac else base
        if self.noise_mb:
            value += rng.normal(0.0, self.noise_mb)
        return self._positive(value)

    def sample_batch(
        self, inputs_mb: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        inputs = np.asarray(inputs_mb, dtype=np.float64)
        base = self.coef * inputs**self.exponent + self.intercept_mb
        return self._noisy_batch(base, rng, self.noise_frac, self.noise_mb)


@dataclass
class PolynomialMemory(MemoryArchetype):
    """``mem = coef * input^exponent + intercept`` with ``exponent > 1``.

    The paper's §II-B motivates the MLP with "memory usage that grows as
    the square of the amount of input data".
    """

    coef: float = 0.01
    exponent: float = 2.0
    intercept_mb: float = 256.0
    noise_frac: float = 0.04
    noise_mb: float = 0.0

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        base = self.coef * input_mb**self.exponent + self.intercept_mb
        value = base * (1.0 + rng.normal(0.0, self.noise_frac)) if self.noise_frac else base
        if self.noise_mb:
            value += rng.normal(0.0, self.noise_mb)
        return self._positive(value)

    def sample_batch(
        self, inputs_mb: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        inputs = np.asarray(inputs_mb, dtype=np.float64)
        base = self.coef * inputs**self.exponent + self.intercept_mb
        return self._noisy_batch(base, rng, self.noise_frac, self.noise_mb)


@dataclass
class BimodalMemory(MemoryArchetype):
    """Two memory regimes selected by input size (BaseRecalibrator, Fig. 2).

    Below ``threshold_mb`` the task stays in the low regime; above it the
    working set jumps.  A single linear model fitted to both regimes
    underestimates the high regime (task failures) and overestimates the
    low regime (waste) — exactly the pathology the paper describes.
    """

    threshold_mb: float = 600.0
    low_mb: float = 800.0
    high_mb: float = 3000.0
    slope: float = 0.15
    noise_frac: float = 0.06

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        base = (self.high_mb if input_mb >= self.threshold_mb else self.low_mb)
        base += self.slope * input_mb
        return self._positive(base * (1.0 + rng.normal(0.0, self.noise_frac)))

    def sample_batch(
        self, inputs_mb: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        inputs = np.asarray(inputs_mb, dtype=np.float64)
        base = np.where(inputs >= self.threshold_mb, self.high_mb, self.low_mb)
        base = base + self.slope * inputs
        # The scalar path draws unconditionally (no noise_frac guard).
        z = rng.standard_normal(inputs.shape[0])
        return np.maximum(base * (1.0 + self.noise_frac * z), 16.0)


@dataclass
class ConstantHeavyTailMemory(MemoryArchetype):
    """Input-independent log-normal spread (the lcextrap shape in Fig. 1).

    ``median_mb`` sets the distribution median; ``sigma`` the log-scale
    spread (0.35 gives roughly the 200 MB–1 GB range around a 550 MB
    median seen in the paper).  ``cap_mb`` truncates the tail so traces
    stay schedulable on the simulated machines.
    """

    median_mb: float = 550.0
    sigma: float = 0.35
    cap_mb: float = 16384.0

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        value = self.median_mb * np.exp(rng.normal(0.0, self.sigma))
        return self._positive(min(value, self.cap_mb))

    def sample_batch(
        self, inputs_mb: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = np.asarray(inputs_mb, dtype=np.float64).shape[0]
        value = self.median_mb * np.exp(self.sigma * rng.standard_normal(n))
        return np.maximum(np.minimum(value, self.cap_mb), 16.0)


@dataclass
class SaturatingMemory(MemoryArchetype):
    """Memory rises with input then saturates at a plateau.

    The genomecov shape in Fig. 1: tight distribution at a high plateau
    (4–7 GB) regardless of the largest inputs.
    """

    plateau_mb: float = 5500.0
    scale_mb: float = 1500.0
    half_input_mb: float = 300.0
    noise_frac: float = 0.05

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        frac = input_mb / (input_mb + self.half_input_mb)
        base = self.plateau_mb - self.scale_mb * (1.0 - frac)
        return self._positive(base * (1.0 + rng.normal(0.0, self.noise_frac)))

    def sample_batch(
        self, inputs_mb: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        inputs = np.asarray(inputs_mb, dtype=np.float64)
        frac = inputs / (inputs + self.half_input_mb)
        base = self.plateau_mb - self.scale_mb * (1.0 - frac)
        z = rng.standard_normal(inputs.shape[0])
        return np.maximum(base * (1.0 + self.noise_frac * z), 16.0)


@dataclass
class RuntimeModel:
    """Task runtime, CPU, and I/O as functions of input size.

    ``runtime = base_hours + hours_per_gb * input_gb`` with log-normal
    jitter; CPU and I/O are drawn around workflow-typical levels so the
    Fig. 7 utilisation distributions have the right spread.
    """

    base_hours: float = 0.05
    hours_per_gb: float = 0.1
    jitter_sigma: float = 0.2
    cpu_percent: float = 150.0
    cpu_sigma: float = 0.4
    io_read_factor: float = 1.0
    io_write_factor: float = 0.5

    def sample(
        self, input_mb: float, rng: np.random.Generator
    ) -> tuple[float, float, float, float]:
        """Return (runtime_hours, cpu_percent, io_read_mb, io_write_mb)."""
        runtime = (self.base_hours + self.hours_per_gb * input_mb / 1024.0) * np.exp(
            rng.normal(0.0, self.jitter_sigma)
        )
        cpu = self.cpu_percent * np.exp(rng.normal(0.0, self.cpu_sigma))
        io_read = input_mb * self.io_read_factor * np.exp(rng.normal(0.0, 0.3))
        io_write = input_mb * self.io_write_factor * np.exp(rng.normal(0.0, 0.3))
        return max(runtime, 1e-4), max(cpu, 1.0), max(io_read, 0.0), max(io_write, 0.0)

    def sample_batch(
        self, inputs_mb: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`sample`, RNG-stream-identical to the loop.

        The scalar path draws four normals per instance in the order
        (runtime jitter, cpu, io read, io write); a row-major ``(n, 4)``
        standard-normal block consumes the stream the same way.
        """
        inputs = np.asarray(inputs_mb, dtype=np.float64)
        z = rng.standard_normal((inputs.shape[0], 4))
        runtime = (
            self.base_hours + self.hours_per_gb * inputs / 1024.0
        ) * np.exp(self.jitter_sigma * z[:, 0])
        cpu = self.cpu_percent * np.exp(self.cpu_sigma * z[:, 1])
        io_read = inputs * self.io_read_factor * np.exp(0.3 * z[:, 2])
        io_write = inputs * self.io_write_factor * np.exp(0.3 * z[:, 3])
        return (
            np.maximum(runtime, 1e-4),
            np.maximum(cpu, 1.0),
            np.maximum(io_read, 0.0),
            np.maximum(io_write, 0.0),
        )


#: Name -> constructor map so workflow specs can be declared as plain data.
ARCHETYPE_REGISTRY: dict[str, type[MemoryArchetype]] = {
    "linear": LinearMemory,
    "sublinear": SublinearMemory,
    "polynomial": PolynomialMemory,
    "bimodal": BimodalMemory,
    "constant_heavy_tail": ConstantHeavyTailMemory,
    "saturating": SaturatingMemory,
}
