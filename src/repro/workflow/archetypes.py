"""Parametric task-behaviour archetypes.

The paper's evaluation rests on the observation that different task types
exhibit *different* relationships between input size and peak memory
(Figs. 1 and 2): some are cleanly linear (MarkDuplicates), some bimodal
(BaseRecalibrator — "using a linear model ... would lead to half of the
task instances failing"), some nearly input-independent with wide spread
(lcextrap).  Each archetype below generates ground-truth peak memory,
runtime, CPU and I/O figures for a task instance given its input size.

All archetypes are deterministic functions of (input size, RNG), so a
seeded generator reproduces a trace bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MemoryArchetype",
    "LinearMemory",
    "SublinearMemory",
    "PolynomialMemory",
    "BimodalMemory",
    "ConstantHeavyTailMemory",
    "SaturatingMemory",
    "RuntimeModel",
    "ARCHETYPE_REGISTRY",
]


class MemoryArchetype:
    """Base class: maps input size (MB) to peak memory (MB), stochastically."""

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def _positive(self, value: float, floor: float = 16.0) -> float:
        """Clamp to a sane positive floor (tasks never use < ~16 MB)."""
        return max(float(value), floor)


@dataclass
class LinearMemory(MemoryArchetype):
    """``mem = slope * input + intercept`` with Gaussian noise.

    The MarkDuplicates shape in Fig. 2 (clear linear correlation).
    ``noise_frac`` is multiplicative jitter (scales with the memory
    level, i.e. heteroscedastic); ``noise_mb`` is additive jitter (a
    fixed spread from buffers/runtime overhead, independent of input).
    Most real tools are dominated by the additive component.
    """

    slope: float = 4.0
    intercept_mb: float = 512.0
    noise_frac: float = 0.03
    noise_mb: float = 0.0

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        base = self.slope * input_mb + self.intercept_mb
        value = base * (1.0 + rng.normal(0.0, self.noise_frac)) if self.noise_frac else base
        if self.noise_mb:
            value += rng.normal(0.0, self.noise_mb)
        return self._positive(value)


@dataclass
class SublinearMemory(MemoryArchetype):
    """``mem = coef * input^exponent + intercept`` with ``exponent < 1``.

    Streaming tools whose working set grows with the square root (or
    similar) of input size.
    """

    coef: float = 64.0
    exponent: float = 0.5
    intercept_mb: float = 256.0
    noise_frac: float = 0.05
    noise_mb: float = 0.0

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        base = self.coef * input_mb**self.exponent + self.intercept_mb
        value = base * (1.0 + rng.normal(0.0, self.noise_frac)) if self.noise_frac else base
        if self.noise_mb:
            value += rng.normal(0.0, self.noise_mb)
        return self._positive(value)


@dataclass
class PolynomialMemory(MemoryArchetype):
    """``mem = coef * input^exponent + intercept`` with ``exponent > 1``.

    The paper's §II-B motivates the MLP with "memory usage that grows as
    the square of the amount of input data".
    """

    coef: float = 0.01
    exponent: float = 2.0
    intercept_mb: float = 256.0
    noise_frac: float = 0.04
    noise_mb: float = 0.0

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        base = self.coef * input_mb**self.exponent + self.intercept_mb
        value = base * (1.0 + rng.normal(0.0, self.noise_frac)) if self.noise_frac else base
        if self.noise_mb:
            value += rng.normal(0.0, self.noise_mb)
        return self._positive(value)


@dataclass
class BimodalMemory(MemoryArchetype):
    """Two memory regimes selected by input size (BaseRecalibrator, Fig. 2).

    Below ``threshold_mb`` the task stays in the low regime; above it the
    working set jumps.  A single linear model fitted to both regimes
    underestimates the high regime (task failures) and overestimates the
    low regime (waste) — exactly the pathology the paper describes.
    """

    threshold_mb: float = 600.0
    low_mb: float = 800.0
    high_mb: float = 3000.0
    slope: float = 0.15
    noise_frac: float = 0.06

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        base = (self.high_mb if input_mb >= self.threshold_mb else self.low_mb)
        base += self.slope * input_mb
        return self._positive(base * (1.0 + rng.normal(0.0, self.noise_frac)))


@dataclass
class ConstantHeavyTailMemory(MemoryArchetype):
    """Input-independent log-normal spread (the lcextrap shape in Fig. 1).

    ``median_mb`` sets the distribution median; ``sigma`` the log-scale
    spread (0.35 gives roughly the 200 MB–1 GB range around a 550 MB
    median seen in the paper).  ``cap_mb`` truncates the tail so traces
    stay schedulable on the simulated machines.
    """

    median_mb: float = 550.0
    sigma: float = 0.35
    cap_mb: float = 16384.0

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        value = self.median_mb * np.exp(rng.normal(0.0, self.sigma))
        return self._positive(min(value, self.cap_mb))


@dataclass
class SaturatingMemory(MemoryArchetype):
    """Memory rises with input then saturates at a plateau.

    The genomecov shape in Fig. 1: tight distribution at a high plateau
    (4–7 GB) regardless of the largest inputs.
    """

    plateau_mb: float = 5500.0
    scale_mb: float = 1500.0
    half_input_mb: float = 300.0
    noise_frac: float = 0.05

    def sample(self, input_mb: float, rng: np.random.Generator) -> float:
        frac = input_mb / (input_mb + self.half_input_mb)
        base = self.plateau_mb - self.scale_mb * (1.0 - frac)
        return self._positive(base * (1.0 + rng.normal(0.0, self.noise_frac)))


@dataclass
class RuntimeModel:
    """Task runtime, CPU, and I/O as functions of input size.

    ``runtime = base_hours + hours_per_gb * input_gb`` with log-normal
    jitter; CPU and I/O are drawn around workflow-typical levels so the
    Fig. 7 utilisation distributions have the right spread.
    """

    base_hours: float = 0.05
    hours_per_gb: float = 0.1
    jitter_sigma: float = 0.2
    cpu_percent: float = 150.0
    cpu_sigma: float = 0.4
    io_read_factor: float = 1.0
    io_write_factor: float = 0.5

    def sample(
        self, input_mb: float, rng: np.random.Generator
    ) -> tuple[float, float, float, float]:
        """Return (runtime_hours, cpu_percent, io_read_mb, io_write_mb)."""
        runtime = (self.base_hours + self.hours_per_gb * input_mb / 1024.0) * np.exp(
            rng.normal(0.0, self.jitter_sigma)
        )
        cpu = self.cpu_percent * np.exp(rng.normal(0.0, self.cpu_sigma))
        io_read = input_mb * self.io_read_factor * np.exp(rng.normal(0.0, 0.3))
        io_write = input_mb * self.io_write_factor * np.exp(rng.normal(0.0, 0.3))
        return max(runtime, 1e-4), max(cpu, 1.0), max(io_read, 0.0), max(io_write, 0.0)


#: Name -> constructor map so workflow specs can be declared as plain data.
ARCHETYPE_REGISTRY: dict[str, type[MemoryArchetype]] = {
    "linear": LinearMemory,
    "sublinear": SublinearMemory,
    "polynomial": PolynomialMemory,
    "bimodal": BimodalMemory,
    "constant_heavy_tail": ConstantHeavyTailMemory,
    "saturating": SaturatingMemory,
}
