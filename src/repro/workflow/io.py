"""Trace serialisation: JSON round-trips and CSV export.

Lets users persist generated traces, load externally recorded traces
(e.g. converted from Nextflow trace files or WfCommons JSON), and feed
them to the simulator — the substrate-level equivalent of the paper's
provenance import.

The JSON schema is deliberately flat and versioned::

    {"format": "repro-trace", "version": 1, "workflow": "rnaseq",
     "task_types": [{"name": ..., "preset_memory_mb": ...}, ...],
     "instances": [{"task_type": ..., "instance_id": ..., ...}, ...]}
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace",
           "export_csv"]

_FORMAT = "repro-trace"
_VERSION = 1

_INSTANCE_FIELDS = (
    "instance_id",
    "input_size_mb",
    "peak_memory_mb",
    "runtime_hours",
    "cpu_percent",
    "io_read_mb",
    "io_write_mb",
    "machine",
)


def trace_to_dict(trace: WorkflowTrace) -> dict:
    """Serialise a trace to a JSON-compatible dict.

    The trace's DAG (when present) round-trips as an optional ``dag``
    key — ``{"nodes": [...], "edges": [[up, down], ...]}`` — so a saved
    trace keeps working with the DAG-aware scheduler after reload.
    """
    data = {
        "format": _FORMAT,
        "version": _VERSION,
        "workflow": trace.workflow,
        "task_types": [
            {"name": t.name, "preset_memory_mb": t.preset_memory_mb}
            for t in trace.task_types
        ],
        "instances": [
            {
                "task_type": inst.task_type.name,
                **{f: getattr(inst, f) for f in _INSTANCE_FIELDS},
            }
            for inst in trace
        ],
    }
    if trace.dag is not None:
        data["dag"] = {
            "nodes": trace.dag.nodes,
            "edges": [list(e) for e in trace.dag.edges],
        }
    return data


def trace_from_dict(data: dict) -> WorkflowTrace:
    """Deserialise a trace; validates format, version, and references."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document: format={data.get('format')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported trace version {data.get('version')!r} "
            f"(supported: {_VERSION})"
        )
    workflow = data["workflow"]
    types = {
        t["name"]: TaskType(
            name=t["name"],
            workflow=workflow,
            preset_memory_mb=float(t["preset_memory_mb"]),
        )
        for t in data["task_types"]
    }
    instances = []
    for row in data["instances"]:
        name = row["task_type"]
        if name not in types:
            raise ValueError(f"instance references unknown task type {name!r}")
        instances.append(
            TaskInstance(
                task_type=types[name],
                **{
                    f: (row[f] if f in ("instance_id", "machine") else float(row[f]))
                    for f in _INSTANCE_FIELDS
                },
            )
        )
    dag = None
    if "dag" in data:
        dag = WorkflowDAG(
            list(data["dag"]["nodes"]),
            [(u, v) for u, v in data["dag"]["edges"]],
        )
    return WorkflowTrace(workflow, instances, dag=dag)


def save_trace(trace: WorkflowTrace, path: str | Path) -> None:
    """Write a trace as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> WorkflowTrace:
    """Read a trace from JSON."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def export_csv(trace: WorkflowTrace, path: str | Path) -> None:
    """Write the per-instance table as CSV (for external analysis)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(("workflow", "task_type", *_INSTANCE_FIELDS))
        for inst in trace:
            writer.writerow(
                (
                    trace.workflow,
                    inst.task_type.name,
                    *(getattr(inst, f) for f in _INSTANCE_FIELDS),
                )
            )
