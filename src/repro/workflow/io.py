"""Trace serialisation: JSON round-trips, JSONL streaming, CSV export.

Lets users persist generated traces, load externally recorded traces
(e.g. converted from Nextflow trace files or WfCommons JSON — see
:mod:`repro.workload.wfcommons` for the native WfCommons reader), and
feed them to the simulator — the substrate-level equivalent of the
paper's provenance import.

The JSON schema is deliberately flat and versioned::

    {"format": "repro-trace", "version": 1, "workflow": "rnaseq",
     "task_types": [{"name": ..., "preset_memory_mb": ...}, ...],
     "instances": [{"task_type": ..., "instance_id": ..., ...}, ...]}

Version 2 is identical plus an optional ``instance_edges`` key — a list
of ``[parent_instance_id, child_instance_id]`` pairs that round-trips
per-instance DAG edges (finer-grained than the type-level ``dag`` key,
which both versions carry).  :func:`trace_to_dict` emits version 1
unless the trace actually carries instance edges, so files stay readable
by older loaders whenever possible.

For large traces the JSONL layout (:func:`save_trace_jsonl` /
:func:`iter_trace_jsonl`) streams one instance per line, letting
consumers iterate tasks without materializing the whole trace — the
streaming substrate behind
:class:`repro.workload.tracefile.TraceFileSource`.

All loaders raise the typed :class:`TraceFormatError` (a ``ValueError``)
naming the offending key/path instead of surfacing bare ``KeyError``\\ s.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterator

from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace

__all__ = [
    "TraceFormatError",
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "save_trace_jsonl",
    "iter_trace_jsonl",
    "load_trace_jsonl",
    "export_csv",
    "import_csv",
]

_FORMAT = "repro-trace"
_VERSION = 1
#: Versions the loader accepts: v2 = v1 + optional ``instance_edges``.
_SUPPORTED_VERSIONS = (1, 2)

_INSTANCE_FIELDS = (
    "instance_id",
    "input_size_mb",
    "peak_memory_mb",
    "runtime_hours",
    "cpu_percent",
    "io_read_mb",
    "io_write_mb",
    "machine",
)


class TraceFormatError(ValueError):
    """A trace document violates the schema.

    ``path`` names the offending key (e.g. ``instances[3].peak_memory_mb``)
    so a malformed multi-thousand-row file points at the exact row to
    fix rather than dying with a bare ``KeyError``.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        self.path = path
        if path:
            message = f"{message} (at {path})"
        super().__init__(message)


def _require(mapping: dict, key: str, path: str):
    """Fetch ``mapping[key]`` or raise a :class:`TraceFormatError`."""
    if not isinstance(mapping, dict):
        raise TraceFormatError(
            f"expected an object, got {type(mapping).__name__}", path=path
        )
    if key not in mapping:
        raise TraceFormatError(f"missing required key {key!r}", path=path)
    return mapping[key]


def trace_to_dict(trace: WorkflowTrace) -> dict:
    """Serialise a trace to a JSON-compatible dict.

    The trace's DAG (when present) round-trips as an optional ``dag``
    key — ``{"nodes": [...], "edges": [[up, down], ...]}`` — so a saved
    trace keeps working with the DAG-aware scheduler after reload.  A
    trace carrying per-instance edges is emitted as version 2 with an
    ``instance_edges`` key; everything else stays version 1.
    """
    version = _VERSION if trace.instance_edges is None else 2
    data = {
        "format": _FORMAT,
        "version": version,
        "workflow": trace.workflow,
        "task_types": [
            {"name": t.name, "preset_memory_mb": t.preset_memory_mb}
            for t in trace.task_types
        ],
        "instances": [
            {
                "task_type": inst.task_type.name,
                **{f: getattr(inst, f) for f in _INSTANCE_FIELDS},
            }
            for inst in trace
        ],
    }
    if trace.dag is not None:
        data["dag"] = {
            "nodes": trace.dag.nodes,
            "edges": [list(e) for e in trace.dag.edges],
        }
    if trace.instance_edges is not None:
        data["instance_edges"] = [list(e) for e in trace.instance_edges]
    return data


def _check_header(data: dict, path: str = "") -> int:
    """Validate the format/version header; returns the version."""
    prefix = f"{path}." if path else ""
    if not isinstance(data, dict):
        raise TraceFormatError(
            f"expected a JSON object, got {type(data).__name__}",
            path=path or "$",
        )
    if data.get("format") != _FORMAT:
        raise TraceFormatError(
            f"not a {_FORMAT} document: format={data.get('format')!r}",
            path=f"{prefix}format",
        )
    version = data.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise TraceFormatError(
            f"unsupported trace version {version!r} "
            f"(supported: {', '.join(map(str, _SUPPORTED_VERSIONS))})",
            path=f"{prefix}version",
        )
    return version


def _types_from_rows(rows: list, workflow: str) -> dict[str, TaskType]:
    types: dict[str, TaskType] = {}
    for i, t in enumerate(rows):
        name = _require(t, "name", f"task_types[{i}]")
        try:
            preset = float(_require(t, "preset_memory_mb", f"task_types[{i}]"))
        except (TypeError, ValueError):
            raise TraceFormatError(
                f"preset_memory_mb must be a number, got "
                f"{t.get('preset_memory_mb')!r}",
                path=f"task_types[{i}].preset_memory_mb",
            ) from None
        types[name] = TaskType(
            name=name, workflow=workflow, preset_memory_mb=preset
        )
    return types


def _instance_from_row(
    row: dict, types: dict[str, TaskType], path: str
) -> TaskInstance:
    name = _require(row, "task_type", path)
    if name not in types:
        raise TraceFormatError(
            f"instance references unknown task type {name!r}",
            path=f"{path}.task_type",
        )
    kwargs = {}
    for f in _INSTANCE_FIELDS:
        value = _require(row, f, path)
        if f in ("instance_id", "machine"):
            kwargs[f] = value
        else:
            try:
                kwargs[f] = float(value)
            except (TypeError, ValueError):
                raise TraceFormatError(
                    f"{f} must be a number, got {value!r}",
                    path=f"{path}.{f}",
                ) from None
    try:
        return TaskInstance(task_type=types[name], **kwargs)
    except ValueError as exc:
        raise TraceFormatError(str(exc), path=path) from None


def _dag_from_dict(data: dict) -> WorkflowDAG | None:
    if "dag" not in data:
        return None
    dag = data["dag"]
    nodes = _require(dag, "nodes", "dag")
    edges = _require(dag, "edges", "dag")
    try:
        return WorkflowDAG(list(nodes), [(u, v) for u, v in edges])
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"invalid dag: {exc}", path="dag") from None


def _instance_edges_from_dict(data: dict) -> list[tuple[int, int]] | None:
    if "instance_edges" not in data:
        return None
    edges = data["instance_edges"]
    if not isinstance(edges, list):
        raise TraceFormatError(
            "instance_edges must be a list of [parent, child] pairs",
            path="instance_edges",
        )
    out: list[tuple[int, int]] = []
    for i, pair in enumerate(edges):
        try:
            up, down = pair
            out.append((int(up), int(down)))
        except (TypeError, ValueError):
            raise TraceFormatError(
                f"expected an [parent_id, child_id] integer pair, "
                f"got {pair!r}",
                path=f"instance_edges[{i}]",
            ) from None
    return out


def trace_from_dict(data: dict) -> WorkflowTrace:
    """Deserialise a trace; validates format, version, and references."""
    _check_header(data)
    workflow = _require(data, "workflow", "")
    types = _types_from_rows(_require(data, "task_types", ""), workflow)
    instances = [
        _instance_from_row(row, types, f"instances[{i}]")
        for i, row in enumerate(_require(data, "instances", ""))
    ]
    try:
        return WorkflowTrace(
            workflow,
            instances,
            dag=_dag_from_dict(data),
            instance_edges=_instance_edges_from_dict(data),
        )
    except ValueError as exc:
        if isinstance(exc, TraceFormatError):
            raise
        raise TraceFormatError(str(exc)) from None


def save_trace(trace: WorkflowTrace, path: str | Path) -> None:
    """Write a trace as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> WorkflowTrace:
    """Read a trace from JSON."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"not valid JSON: {exc}", path=str(path)) from None
    return trace_from_dict(data)


# ----------------------------------------------------------------------
# JSONL streaming layout
# ----------------------------------------------------------------------

def save_trace_jsonl(trace: WorkflowTrace, path: str | Path) -> None:
    """Write a trace as JSONL: a header line, then one instance per line.

    The header is the v1/v2 document *without* its ``instances`` key;
    every following line is one instance row.  Consumers can stream the
    instances without holding the whole trace in memory
    (:func:`iter_trace_jsonl`).
    """
    header = trace_to_dict(trace)
    instances = header.pop("instances")
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for row in instances:
            fh.write(json.dumps(row) + "\n")


def _jsonl_line(line: str, lineno: int, path: str | Path) -> dict:
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            f"line {lineno} is not valid JSON: {exc}", path=str(path)
        ) from None


def iter_trace_jsonl(
    path: str | Path,
) -> tuple[dict, Iterator[TaskInstance]]:
    """Open a JSONL trace: ``(header, lazy instance iterator)``.

    The header (format/version/workflow/task_types, plus optional
    ``dag``/``instance_edges``) is read and validated eagerly; the
    instances are parsed one line at a time as the iterator advances —
    the file is never fully materialized.
    """
    path = Path(path)
    with open(path) as fh:
        first = fh.readline()
        if not first.strip():
            raise TraceFormatError("empty JSONL trace file", path=str(path))
        header = _jsonl_line(first, 1, path)
    _check_header(header)
    workflow = _require(header, "workflow", "")
    types = _types_from_rows(_require(header, "task_types", ""), workflow)

    def _instances() -> Iterator[TaskInstance]:
        with open(path) as fh:
            fh.readline()  # header
            for lineno, line in enumerate(fh, start=2):
                if not line.strip():
                    continue
                row = _jsonl_line(line, lineno, path)
                yield _instance_from_row(
                    row, types, f"line {lineno}"
                )

    return header, _instances()


def load_trace_jsonl(path: str | Path) -> WorkflowTrace:
    """Read a JSONL trace fully into a :class:`WorkflowTrace`."""
    header, instances = iter_trace_jsonl(path)
    try:
        return WorkflowTrace(
            _require(header, "workflow", ""),
            list(instances),
            dag=_dag_from_dict(header),
            instance_edges=_instance_edges_from_dict(header),
        )
    except ValueError as exc:
        if isinstance(exc, TraceFormatError):
            raise
        raise TraceFormatError(str(exc)) from None


# ----------------------------------------------------------------------
# CSV export / import
# ----------------------------------------------------------------------

def export_csv(trace: WorkflowTrace, path: str | Path) -> None:
    """Write the per-instance table as CSV (for external analysis)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(("workflow", "task_type", *_INSTANCE_FIELDS))
        for inst in trace:
            writer.writerow(
                (
                    trace.workflow,
                    inst.task_type.name,
                    *(getattr(inst, f) for f in _INSTANCE_FIELDS),
                )
            )


def import_csv(
    path: str | Path, preset_memory_mb: float | None = None
) -> WorkflowTrace:
    """Load a CSV written by :func:`export_csv` back into a trace.

    CSV carries no task-type presets (it is the flat per-instance
    table), so each type's preset is reconstructed as the maximum
    observed peak of its instances rounded up to the next GB — unless an
    explicit ``preset_memory_mb`` overrides it for every type.  DAG and
    instance-edge structure is likewise not part of the CSV layout; use
    the JSON/JSONL formats to round-trip those.
    """
    rows: list[dict] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        missing = [
            f
            for f in ("workflow", "task_type", *_INSTANCE_FIELDS)
            if f not in (reader.fieldnames or ())
        ]
        if missing:
            raise TraceFormatError(
                f"CSV is missing required columns {missing}", path=str(path)
            )
        rows.extend(reader)
    if not rows:
        raise TraceFormatError("CSV contains no instance rows", path=str(path))
    workflow = rows[0]["workflow"]
    peaks: dict[str, float] = {}
    for i, row in enumerate(rows):
        if row["workflow"] != workflow:
            raise TraceFormatError(
                f"mixed workflows in one CSV: {workflow!r} vs "
                f"{row['workflow']!r}",
                path=f"row {i + 2}",
            )
        try:
            peak = float(row["peak_memory_mb"])
        except ValueError:
            raise TraceFormatError(
                f"peak_memory_mb must be a number, got "
                f"{row['peak_memory_mb']!r}",
                path=f"row {i + 2}.peak_memory_mb",
            ) from None
        peaks[row["task_type"]] = max(peaks.get(row["task_type"], 0.0), peak)
    types = {
        name: TaskType(
            name=name,
            workflow=workflow,
            preset_memory_mb=(
                preset_memory_mb
                if preset_memory_mb is not None
                else float(-(-peak // 1024.0) * 1024.0) or 1024.0
            ),
        )
        for name, peak in peaks.items()
    }
    instances = [
        _instance_from_row(
            {
                "task_type": row["task_type"],
                **{f: row[f] for f in _INSTANCE_FIELDS},
            },
            types,
            f"row {i + 2}",
        )
        for i, row in enumerate(rows)
    ]
    # CSV stringifies everything; instance ids come back as ints.
    instances = [
        TaskInstance(
            task_type=inst.task_type,
            instance_id=int(inst.instance_id),
            input_size_mb=inst.input_size_mb,
            peak_memory_mb=inst.peak_memory_mb,
            runtime_hours=inst.runtime_hours,
            cpu_percent=inst.cpu_percent,
            io_read_mb=inst.io_read_mb,
            io_write_mb=inst.io_write_mb,
            machine=inst.machine,
        )
        for inst in instances
    ]
    return WorkflowTrace(workflow, instances)
