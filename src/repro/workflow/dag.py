"""Workflow DAG: task types as nodes, dataflow dependencies as edges.

Workflows are "often defined as a directed acyclic graph, consisting of a
set of black-box task types B and a set of directed edges E" (paper §I).
The DAG fixes the submission order of task instances in the generated
traces: instances of a task type are only submitted after instances of
all its predecessors, mirroring how an SWMS releases ready tasks.

Implemented from scratch (Kahn's algorithm) rather than on networkx so
the substrate has no optional dependencies.
"""

from __future__ import annotations

from collections import defaultdict, deque

__all__ = ["WorkflowDAG", "CycleError"]


class CycleError(ValueError):
    """Raised when the declared edges contain a dependency cycle."""


class WorkflowDAG:
    """A directed acyclic graph over task-type names.

    Parameters
    ----------
    nodes:
        Task-type names.
    edges:
        ``(upstream, downstream)`` pairs: the downstream task consumes
        output of the upstream task.
    """

    def __init__(
        self,
        nodes: list[str],
        edges: list[tuple[str, str]] | None = None,
    ) -> None:
        if len(set(nodes)) != len(nodes):
            dupes = sorted({n for n in nodes if nodes.count(n) > 1})
            raise ValueError(f"duplicate task-type names: {dupes}")
        self._nodes = list(nodes)
        self._succ: dict[str, list[str]] = defaultdict(list)
        self._pred: dict[str, list[str]] = defaultdict(list)
        node_set = set(nodes)
        for up, down in edges or []:
            if up not in node_set or down not in node_set:
                raise ValueError(f"edge ({up!r}, {down!r}) references unknown node")
            if up == down:
                raise CycleError(f"self-loop on {up!r}")
            self._succ[up].append(down)
            self._pred[down].append(up)
        self._stages = self._compute_stages()

    @property
    def nodes(self) -> list[str]:
        return list(self._nodes)

    @property
    def edges(self) -> list[tuple[str, str]]:
        return [(u, v) for u in self._nodes for v in self._succ.get(u, [])]

    def predecessors(self, node: str) -> list[str]:
        if node not in set(self._nodes):
            raise KeyError(node)
        return list(self._pred.get(node, []))

    def successors(self, node: str) -> list[str]:
        if node not in set(self._nodes):
            raise KeyError(node)
        return list(self._succ.get(node, []))

    def _compute_stages(self) -> list[list[str]]:
        """Kahn's algorithm, grouping nodes into parallel stages.

        Stage ``k`` contains all nodes whose longest path from any source
        has length ``k``; the concatenation of stages is a topological
        order.  Raises :class:`CycleError` if edges form a cycle.
        """
        indegree = {n: len(self._pred.get(n, [])) for n in self._nodes}
        queue = deque(n for n in self._nodes if indegree[n] == 0)
        stages: list[list[str]] = []
        processed = 0
        current = list(queue)
        while current:
            stages.append(sorted(current))
            processed += len(current)
            nxt: list[str] = []
            for n in current:
                for s in self._succ.get(n, []):
                    indegree[s] -= 1
                    if indegree[s] == 0:
                        nxt.append(s)
            current = nxt
        if processed != len(self._nodes):
            # Kahn leaves every node downstream of a cycle unprocessed;
            # blame only actual cycle members — a node that can reach
            # itself — so the error points at the edges to fix rather
            # than at innocent descendants or bridges between cycles.
            # Error path only, so the per-node reachability walk is fine.
            remaining = {n for n in self._nodes if indegree[n] > 0}
            members = sorted(
                n for n in remaining if self._reaches_itself(n, remaining)
            )
            raise CycleError(f"dependency cycle involving {members}")
        return stages

    def _reaches_itself(self, node: str, within: set[str]) -> bool:
        """True if ``node`` lies on a cycle inside the ``within`` set."""
        seen: set[str] = set()
        stack = [s for s in self._succ.get(node, []) if s in within]
        while stack:
            current = stack.pop()
            if current == node:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(
                s for s in self._succ.get(current, []) if s in within
            )
        return False

    @property
    def stages(self) -> list[list[str]]:
        """Topological stages: all tasks in a stage can run in parallel."""
        return [list(s) for s in self._stages]

    def topological_order(self) -> list[str]:
        """A deterministic topological ordering of all nodes."""
        return [n for stage in self._stages for n in stage]

    @classmethod
    def linear_pipeline(cls, nodes: list[str]) -> "WorkflowDAG":
        """Convenience constructor: a simple chain ``n0 -> n1 -> ...``."""
        edges = list(zip(nodes[:-1], nodes[1:]))
        return cls(nodes, edges)

    @classmethod
    def fan_out_fan_in(
        cls, source: str, parallel: list[str], sink: str
    ) -> "WorkflowDAG":
        """Convenience constructor: source -> each parallel node -> sink."""
        nodes = [source, *parallel, sink]
        edges = [(source, p) for p in parallel] + [(p, sink) for p in parallel]
        return cls(nodes, edges)
