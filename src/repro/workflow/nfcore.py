"""The six evaluation workflows, parameterised to the paper's Table I.

| workflow  | task types | avg instances/type |
|-----------|-----------:|-------------------:|
| eager     | 13         | 121                |
| methylseq | 9          | 100                |
| chipseq   | 30         | 82                 |
| rnaseq    | 30         | 39                 |
| mag       | 8          | 720                |
| iwd       | 5          | 332                |

Task names follow the real nf-core pipelines where the paper names them:
``lcextrap``, ``mpileup`` (eager), ``genomecov`` (chipseq),
``MarkDuplicates`` / ``BaseRecalibrator`` / ``FastQC`` (rnaseq),
``Prokka`` with 1171 instances (mag, Fig. 12), and ``Preprocessing``
(iwd).  Memory archetypes are chosen to match the shapes in Figs. 1-2:
MarkDuplicates linear (≈18-22 GB over 2-5 GB inputs), BaseRecalibrator
bimodal (0.5-3.5 GB with two regimes), lcextrap input-independent with a
heavy tail (0.2-1 GB around a 550 MB median), genomecov saturating at a
4-7 GB plateau.

Resource profiles per workflow are tuned so the Fig. 7 utilisation
distributions have the documented character (methylseq I/O- and
CPU-intensive, mag I/O-read heavy, iwd lightweight).
"""

from __future__ import annotations

from repro.workflow.archetypes import (
    BimodalMemory,
    ConstantHeavyTailMemory,
    LinearMemory,
    PolynomialMemory,
    RuntimeModel,
    SaturatingMemory,
    SublinearMemory,
)
from repro.workflow.generator import TaskTypeSpec, WorkflowSpec, generate_trace
from repro.workflow.task import WorkflowTrace

__all__ = [
    "WORKFLOW_NAMES",
    "build_workflow_spec",
    "build_workflow_trace",
    "build_all_traces",
]

WORKFLOW_NAMES = ("eager", "methylseq", "chipseq", "rnaseq", "mag", "iwd")


def _rt(
    base: float,
    per_gb: float,
    cpu: float = 150.0,
    io_read: float = 1.0,
    io_write: float = 0.5,
    jitter: float = 0.2,
) -> RuntimeModel:
    return RuntimeModel(
        base_hours=base,
        hours_per_gb=per_gb,
        cpu_percent=cpu,
        io_read_factor=io_read,
        io_write_factor=io_write,
        jitter_sigma=jitter,
    )


def _eager_spec() -> WorkflowSpec:
    """Ancient-DNA genome reconstruction: 13 types, 1573 instances."""
    t = [
        TaskTypeSpec("fastqc", SublinearMemory(coef=12.0, exponent=0.55, intercept_mb=220.0),
                     137, input_median_mb=2500, input_sigma=0.7,
                     runtime=_rt(0.02, 0.01, cpu=110)),
        TaskTypeSpec("adapter_removal", LinearMemory(slope=0.12, intercept_mb=300.0, noise_frac=0.05),
                     137, input_median_mb=2500, input_sigma=0.7,
                     runtime=_rt(0.03, 0.02, cpu=220, io_write=1.0)),
        TaskTypeSpec("bwa_align", LinearMemory(slope=1.6, intercept_mb=6500.0, noise_frac=0.04),
                     137, input_median_mb=2200, input_sigma=0.9,
                     runtime=_rt(0.15, 0.08, cpu=900, io_read=1.2)),
        TaskTypeSpec("samtools_filter", SublinearMemory(coef=30.0, exponent=0.5, intercept_mb=350.0),
                     137, input_median_mb=1800, input_sigma=0.6,
                     runtime=_rt(0.03, 0.02, cpu=160)),
        TaskTypeSpec("dedup", LinearMemory(slope=1.3, intercept_mb=1500.0, noise_frac=0.09),
                     137, input_median_mb=1500, input_sigma=0.9,
                     runtime=_rt(0.05, 0.04, cpu=130)),
        TaskTypeSpec("damageprofiler", ConstantHeavyTailMemory(median_mb=900.0, sigma=0.25),
                     137, input_median_mb=1200, input_sigma=0.5,
                     runtime=_rt(0.02, 0.01, cpu=100)),
        TaskTypeSpec("qualimap", PolynomialMemory(coef=0.0018, exponent=1.7, intercept_mb=900.0),
                     130, input_median_mb=1400, input_sigma=0.5,
                     runtime=_rt(0.04, 0.02, cpu=140)),
        TaskTypeSpec("preseq_ccurve", ConstantHeavyTailMemory(median_mb=420.0, sigma=0.3),
                     120, input_median_mb=1000, input_sigma=0.5,
                     runtime=_rt(0.015, 0.005, cpu=100)),
        # Fig. 1: lcextrap spans ~200 MB-1 GB with a ~550 MB median.
        TaskTypeSpec("lcextrap", ConstantHeavyTailMemory(median_mb=550.0, sigma=0.35),
                     120, input_median_mb=1000, input_sigma=0.5,
                     runtime=_rt(0.015, 0.005, cpu=100)),
        # Fig. 1: mpileup sits below ~400 MB.
        TaskTypeSpec("mpileup", SublinearMemory(coef=9.0, exponent=0.5, intercept_mb=90.0, noise_frac=0.2),
                     120, input_median_mb=900, input_sigma=0.5,
                     runtime=_rt(0.03, 0.015, cpu=120)),
        TaskTypeSpec("genotyping", BimodalMemory(threshold_mb=1200.0, low_mb=2200.0, high_mb=7800.0, slope=0.4, noise_frac=0.03),
                     120, input_median_mb=1100, input_sigma=0.55,
                     runtime=_rt(0.08, 0.04, cpu=200)),
        TaskTypeSpec("sexdeterrmine", ConstantHeavyTailMemory(median_mb=260.0, sigma=0.2),
                     70, input_median_mb=600, input_sigma=0.4,
                     runtime=_rt(0.01, 0.004, cpu=100)),
        TaskTypeSpec("multiqc", LinearMemory(slope=0.4, intercept_mb=600.0, noise_frac=0.1),
                     71, input_median_mb=300, input_sigma=0.4,
                     runtime=_rt(0.02, 0.005, cpu=100)),
    ]
    return WorkflowSpec("eager", t, dag=None)


def _methylseq_spec() -> WorkflowSpec:
    """Bisulfite sequencing: 9 types, 900 instances; the heavyweight.

    Long-running, high-memory alignment tasks dominate (bismark), which is
    why methylseq carries the bulk of the presets' wastage in Table II.
    """
    t = [
        TaskTypeSpec("fastqc", SublinearMemory(coef=12.0, exponent=0.55, intercept_mb=220.0),
                     110, input_median_mb=4000, input_sigma=0.6,
                     runtime=_rt(0.03, 0.01, cpu=110)),
        TaskTypeSpec("trim_galore", LinearMemory(slope=0.1, intercept_mb=350.0, noise_frac=0.0, noise_mb=22.0),
                     110, input_median_mb=4000, input_sigma=0.6,
                     runtime=_rt(0.05, 0.03, cpu=240, io_write=1.0)),
        TaskTypeSpec("bismark_align", LinearMemory(slope=4.2, intercept_mb=14000.0, noise_frac=0.0, noise_mb=260.0),
                     110, input_median_mb=3600, input_sigma=0.55,
                     runtime=_rt(0.8, 0.3, cpu=1100, io_read=1.5, io_write=2.0)),
        TaskTypeSpec("deduplicate_bismark", LinearMemory(slope=1.8, intercept_mb=3500.0, noise_frac=0.0, noise_mb=110.0),
                     110, input_median_mb=3000, input_sigma=0.55,
                     runtime=_rt(0.15, 0.08, cpu=140, io_write=1.5)),
        TaskTypeSpec("methylation_extractor", PolynomialMemory(coef=0.0009, exponent=1.8, intercept_mb=2500.0, noise_frac=0.0, noise_mb=130.0),
                     110, input_median_mb=2800, input_sigma=0.5,
                     runtime=_rt(0.3, 0.15, cpu=350, io_read=2.0, io_write=3.0)),
        TaskTypeSpec("bismark_report", ConstantHeavyTailMemory(median_mb=450.0, sigma=0.25),
                     110, input_median_mb=500, input_sigma=0.4,
                     runtime=_rt(0.01, 0.005, cpu=100)),
        TaskTypeSpec("qualimap", PolynomialMemory(coef=0.0018, exponent=1.7, intercept_mb=900.0),
                     110, input_median_mb=2000, input_sigma=0.5,
                     runtime=_rt(0.08, 0.04, cpu=150)),
        TaskTypeSpec("preseq_lcextrap", ConstantHeavyTailMemory(median_mb=600.0, sigma=0.35),
                     80, input_median_mb=1500, input_sigma=0.5,
                     runtime=_rt(0.02, 0.008, cpu=100)),
        TaskTypeSpec("multiqc", LinearMemory(slope=0.4, intercept_mb=700.0, noise_frac=0.1),
                     50, input_median_mb=400, input_sigma=0.4,
                     runtime=_rt(0.02, 0.005, cpu=100)),
    ]
    return WorkflowSpec("methylseq", t, dag=None)


def _chipseq_spec() -> WorkflowSpec:
    """ChIP sequencing: 30 types, 2460 instances; many small, short tasks."""
    t: list[TaskTypeSpec] = []

    def add(name, arch, n, med, sig=0.5, rt=None):
        t.append(
            TaskTypeSpec(name, arch, n, input_median_mb=med, input_sigma=sig,
                         runtime=rt or _rt(0.015, 0.01, cpu=130))
        )

    add("fastqc", SublinearMemory(coef=12.0, exponent=0.55, intercept_mb=220.0), 90, 1500, 0.6)
    add("trimgalore", LinearMemory(slope=0.1, intercept_mb=300.0), 90, 1500, 0.6,
        _rt(0.02, 0.015, cpu=200))
    add("bwa_mem", LinearMemory(slope=1.4, intercept_mb=5200.0, noise_frac=0.0, noise_mb=110.0), 90, 1300, 0.55,
        _rt(0.08, 0.05, cpu=800))
    add("samtools_sort", LinearMemory(slope=0.9, intercept_mb=800.0, noise_frac=0.0, noise_mb=35.0), 90, 1100, 0.5,
        _rt(0.03, 0.02, cpu=300))
    add("samtools_flagstat", ConstantHeavyTailMemory(median_mb=120.0, sigma=0.2), 90, 900, 0.5)
    add("samtools_idxstats", ConstantHeavyTailMemory(median_mb=90.0, sigma=0.2), 90, 900, 0.5)
    add("samtools_stats", SublinearMemory(coef=8.0, exponent=0.5, intercept_mb=110.0, noise_frac=0.0, noise_mb=9.0), 90, 900, 0.5)
    add("picard_markduplicates", LinearMemory(slope=1.2, intercept_mb=2800.0, noise_frac=0.0, noise_mb=80.0), 90, 1000, 0.5,
        _rt(0.05, 0.03, cpu=140))
    add("picard_collectmetrics", ConstantHeavyTailMemory(median_mb=1600.0, sigma=0.2), 90, 900, 0.5)
    add("preseq", ConstantHeavyTailMemory(median_mb=480.0, sigma=0.3), 90, 800, 0.5)
    add("phantompeakqualtools", PolynomialMemory(coef=0.004, exponent=1.6, intercept_mb=1200.0, noise_frac=0.0, noise_mb=55.0), 90, 700, 0.5)
    # Fig. 1: genomecov plateaus in the 4-7 GB band.
    add("genomecov", SaturatingMemory(plateau_mb=5500.0, scale_mb=1500.0, half_input_mb=300.0), 90, 700, 0.6,
        _rt(0.03, 0.02, cpu=110))
    add("bedgraphtobigwig", LinearMemory(slope=0.5, intercept_mb=400.0, noise_frac=0.0, noise_mb=16.0), 90, 600, 0.5)
    add("computematrix", PolynomialMemory(coef=0.006, exponent=1.5, intercept_mb=900.0, noise_frac=0.0, noise_mb=45.0), 90, 500, 0.5,
        _rt(0.04, 0.02, cpu=200))
    add("plotprofile", ConstantHeavyTailMemory(median_mb=300.0, sigma=0.2), 90, 300, 0.4)
    add("plotheatmap", ConstantHeavyTailMemory(median_mb=650.0, sigma=0.2), 90, 300, 0.4)
    add("plotfingerprint", SublinearMemory(coef=25.0, exponent=0.5, intercept_mb=500.0, noise_frac=0.0, noise_mb=22.0), 90, 500, 0.5)
    add("macs2_callpeak", BimodalMemory(threshold_mb=700.0, low_mb=900.0, high_mb=3400.0, slope=0.3), 90, 650, 0.6,
        _rt(0.04, 0.02, cpu=120))
    add("frip_score", ConstantHeavyTailMemory(median_mb=240.0, sigma=0.25), 90, 400, 0.5)
    add("homer_annotatepeaks", LinearMemory(slope=0.8, intercept_mb=1100.0, noise_frac=0.0, noise_mb=35.0), 90, 400, 0.5)
    add("plot_macs2_qc", ConstantHeavyTailMemory(median_mb=280.0, sigma=0.2), 90, 200, 0.4)
    add("consensus_peaks", SublinearMemory(coef=18.0, exponent=0.6, intercept_mb=300.0, noise_frac=0.0, noise_mb=16.0), 90, 350, 0.5)
    add("featurecounts", LinearMemory(slope=0.6, intercept_mb=700.0, noise_frac=0.0, noise_mb=25.0), 90, 600, 0.5)
    add("deseq2_qc", PolynomialMemory(coef=0.01, exponent=1.4, intercept_mb=800.0, noise_frac=0.0, noise_mb=35.0), 90, 300, 0.5)
    add("igv_session", ConstantHeavyTailMemory(median_mb=150.0, sigma=0.15), 50, 100, 0.3)
    add("ucsc_bigwigaverage", SublinearMemory(coef=10.0, exponent=0.5, intercept_mb=200.0, noise_frac=0.0, noise_mb=9.0), 50, 300, 0.4)
    add("khmer_uniquekmers", ConstantHeavyTailMemory(median_mb=900.0, sigma=0.2), 50, 400, 0.4)
    add("cutadapt_summary", ConstantHeavyTailMemory(median_mb=110.0, sigma=0.15), 50, 200, 0.3)
    add("bampe_rm_orphan", LinearMemory(slope=0.7, intercept_mb=500.0, noise_frac=0.0, noise_mb=22.0), 50, 600, 0.5)
    add("multiqc", LinearMemory(slope=0.4, intercept_mb=650.0, noise_frac=0.1), 50, 300, 0.4)
    return WorkflowSpec("chipseq", t, dag=None)


def _rnaseq_spec() -> WorkflowSpec:
    """RNA sequencing: 30 types, 1170 instances; rich model-class diversity.

    Contains the paper's named tasks: ``FastQC`` and ``MarkDuplicates``
    (Fig. 10 alpha sweep), plus ``BaseRecalibrator`` (Fig. 2 bimodal).
    """
    t: list[TaskTypeSpec] = []

    def add(name, arch, n, med, sig=0.5, rt=None):
        t.append(
            TaskTypeSpec(name, arch, n, input_median_mb=med, input_sigma=sig,
                         runtime=rt or _rt(0.02, 0.012, cpu=140))
        )

    add("FastQC", SublinearMemory(coef=12.0, exponent=0.55, intercept_mb=220.0), 40, 2000, 0.6)
    add("trimgalore", SublinearMemory(coef=3.2, exponent=0.72, intercept_mb=290.0, noise_frac=0.0, noise_mb=14.0), 40, 2000, 0.6,
        _rt(0.03, 0.02, cpu=220))
    add("star_align", LinearMemory(slope=2.2, intercept_mb=26000.0, noise_frac=0.0, noise_mb=260.0), 40, 1800, 0.55,
        _rt(0.2, 0.1, cpu=1200, io_read=1.4))
    add("star_genomegenerate", ConstantHeavyTailMemory(median_mb=31000.0, sigma=0.005, cap_mb=40000.0), 35, 3000, 0.3,
        _rt(0.3, 0.1, cpu=800))
    # Fig. 2: ~18-22 GB over 2-5 GB inputs -> slope ~1.3 GB/GB + 15.5 GB.
    add("MarkDuplicates", LinearMemory(slope=1.33, intercept_mb=15800.0, noise_frac=0.0, noise_mb=170.0), 40, 3300, 0.35,
        _rt(0.08, 0.05, cpu=150))
    # Fig. 2: bimodal 0.5-3.5 GB, regime switch near 600 MB input.
    add("BaseRecalibrator", BimodalMemory(threshold_mb=600.0, low_mb=800.0, high_mb=3000.0, slope=0.15), 40, 600, 0.45,
        _rt(0.05, 0.03, cpu=130))
    add("ApplyBQSR", PolynomialMemory(coef=0.45, exponent=1.18, intercept_mb=1500.0, noise_frac=0.0, noise_mb=55.0), 40, 800, 0.5)
    add("salmon_quant", SublinearMemory(coef=110.0, exponent=0.55, intercept_mb=1400.0, noise_frac=0.0, noise_mb=60.0), 40, 1500, 0.5,
        _rt(0.05, 0.03, cpu=600))
    add("salmon_index", ConstantHeavyTailMemory(median_mb=12000.0, sigma=0.008, cap_mb=20000.0), 35, 2500, 0.3)
    add("rsem_calculateexpression", PolynomialMemory(coef=0.002, exponent=1.7, intercept_mb=3500.0, noise_frac=0.0, noise_mb=110.0), 40, 1500, 0.5,
        _rt(0.1, 0.06, cpu=700))
    add("samtools_sort", PolynomialMemory(coef=0.32, exponent=1.2, intercept_mb=750.0, noise_frac=0.0, noise_mb=35.0), 40, 1400, 0.5,
        _rt(0.03, 0.02, cpu=300))
    add("samtools_index", ConstantHeavyTailMemory(median_mb=100.0, sigma=0.2), 40, 1200, 0.5)
    add("samtools_stats", SublinearMemory(coef=8.0, exponent=0.5, intercept_mb=120.0, noise_frac=0.0, noise_mb=10.0), 40, 1200, 0.5)
    add("picard_collectrnaseqmetrics", PolynomialMemory(coef=0.003, exponent=1.6, intercept_mb=1500.0, noise_frac=0.0, noise_mb=70.0), 40, 1200, 0.5)
    add("stringtie", PolynomialMemory(coef=0.2, exponent=1.25, intercept_mb=800.0, noise_frac=0.0, noise_mb=30.0), 40, 900, 0.5)
    add("featurecounts", PolynomialMemory(coef=0.28, exponent=1.15, intercept_mb=680.0, noise_frac=0.0, noise_mb=28.0), 40, 900, 0.5)
    add("bedtools_genomecov", SaturatingMemory(plateau_mb=4800.0, scale_mb=1400.0, half_input_mb=350.0), 40, 800, 0.6)
    add("bedgraphtobigwig", PolynomialMemory(coef=0.24, exponent=1.15, intercept_mb=380.0, noise_frac=0.0, noise_mb=18.0), 40, 600, 0.5)
    add("qualimap_rnaseq", PolynomialMemory(coef=0.0022, exponent=1.7, intercept_mb=1000.0, noise_frac=0.0, noise_mb=55.0), 40, 1000, 0.5)
    add("dupradar", SublinearMemory(coef=30.0, exponent=0.55, intercept_mb=700.0, noise_frac=0.0, noise_mb=35.0), 40, 800, 0.5)
    add("rseqc_readduplication", PolynomialMemory(coef=0.005, exponent=1.5, intercept_mb=900.0, noise_frac=0.0, noise_mb=45.0), 40, 700, 0.5)
    add("rseqc_junctionsaturation", BimodalMemory(threshold_mb=500.0, low_mb=700.0, high_mb=2400.0, slope=0.2), 40, 500, 0.5)
    add("rseqc_bamstat", ConstantHeavyTailMemory(median_mb=350.0, sigma=0.25), 40, 600, 0.5)
    add("rseqc_inferexperiment", ConstantHeavyTailMemory(median_mb=200.0, sigma=0.2), 40, 500, 0.5)
    add("preseq_lcextrap", ConstantHeavyTailMemory(median_mb=520.0, sigma=0.35), 35, 700, 0.5)
    add("deseq2_qc", PolynomialMemory(coef=0.01, exponent=1.4, intercept_mb=850.0), 35, 300, 0.5)
    add("tximport", PolynomialMemory(coef=0.3, exponent=1.12, intercept_mb=550.0, noise_frac=0.0, noise_mb=20.0), 35, 300, 0.4)
    add("gtf_filter", ConstantHeavyTailMemory(median_mb=180.0, sigma=0.15), 35, 200, 0.3)
    add("bbsplit", SublinearMemory(coef=90.0, exponent=0.5, intercept_mb=4500.0, noise_frac=0.0, noise_mb=90.0), 35, 1200, 0.5)
    add("multiqc", SublinearMemory(coef=4.5, exponent=0.75, intercept_mb=620.0, noise_frac=0.0, noise_mb=25.0), 35, 300, 0.4)
    return WorkflowSpec("rnaseq", t, dag=None)


def _mag_spec() -> WorkflowSpec:
    """Metagenome assembly: 8 types, 5760 instances; Prokka has 1171 (Fig. 12)."""
    t = [
        TaskTypeSpec("fastqc_raw", SublinearMemory(coef=12.0, exponent=0.55, intercept_mb=230.0, noise_frac=0.0, noise_mb=12.0),
                     900, input_median_mb=2200, input_sigma=0.6,
                     runtime=_rt(0.02, 0.008, cpu=110, io_read=1.2)),
        TaskTypeSpec("fastp", LinearMemory(slope=0.12, intercept_mb=420.0, noise_frac=0.0, noise_mb=18.0),
                     900, input_median_mb=2200, input_sigma=0.6,
                     runtime=_rt(0.025, 0.012, cpu=260, io_read=1.5, io_write=1.2)),
        TaskTypeSpec("bowtie2_removal", LinearMemory(slope=1.1, intercept_mb=3400.0, noise_frac=0.0, noise_mb=110.0),
                     900, input_median_mb=1900, input_sigma=0.55,
                     runtime=_rt(0.05, 0.03, cpu=700, io_read=1.6)),
        TaskTypeSpec("megahit", PolynomialMemory(coef=0.004, exponent=1.6, intercept_mb=5200.0, noise_frac=0.0, noise_mb=150.0),
                     450, input_median_mb=2400, input_sigma=0.45, input_max_mb=6144.0,
                     runtime=_rt(0.15, 0.08, cpu=1000, io_read=2.0, io_write=2.5)),
        TaskTypeSpec("metabat2", SublinearMemory(coef=60.0, exponent=0.6, intercept_mb=1100.0, noise_frac=0.0, noise_mb=45.0),
                     450, input_median_mb=1500, input_sigma=0.5,
                     runtime=_rt(0.06, 0.03, cpu=300)),
        # Fig. 12: 1171 Prokka instances. Mildly super-linear with a
        # genuine noise floor, so the relative error starts high while
        # the nonlinear models warm up and declines visibly over the
        # campaign (the paper shows ~10.5% -> ~8%).
        TaskTypeSpec("Prokka", PolynomialMemory(coef=0.18, exponent=1.5, intercept_mb=800.0, noise_frac=0.07),
                     1171, input_median_mb=450, input_sigma=0.75,
                     runtime=_rt(0.04, 0.02, cpu=350, io_write=1.5)),
        TaskTypeSpec("quast", ConstantHeavyTailMemory(median_mb=700.0, sigma=0.25),
                     450, input_median_mb=500, input_sigma=0.5,
                     runtime=_rt(0.015, 0.006, cpu=120)),
        TaskTypeSpec("bin_summary", SublinearMemory(coef=15.0, exponent=0.5, intercept_mb=280.0, noise_frac=0.0, noise_mb=10.0),
                     539, input_median_mb=300, input_sigma=0.4,
                     runtime=_rt(0.01, 0.004, cpu=100)),
    ]
    return WorkflowSpec("mag", t, dag=None)


def _iwd_spec() -> WorkflowSpec:
    """Remote-sensing hydrology (images -> graphs): 5 types, 1660 instances.

    Tiny, fast tasks — the smallest wastage numbers in Table II by three
    orders of magnitude.  One heavy-tailed type keeps conservative
    baselines (node-max retries) expensive relative to the presets.
    """
    t = [
        # Fig. 1: "Preprocessing" sits in the 2-4.5 GB band.
        TaskTypeSpec("Preprocessing", ConstantHeavyTailMemory(median_mb=3000.0, sigma=0.12, cap_mb=4800.0),
                     400, input_median_mb=120, input_sigma=0.4,
                     runtime=_rt(0.004, 0.003, cpu=160, jitter=0.15)),
        TaskTypeSpec("EdgeDetection", LinearMemory(slope=2.5, intercept_mb=350.0, noise_frac=0.05),
                     400, input_median_mb=90, input_sigma=0.4,
                     runtime=_rt(0.003, 0.002, cpu=220, jitter=0.15)),
        TaskTypeSpec("GraphConstruction", PolynomialMemory(coef=0.9, exponent=1.45, intercept_mb=260.0),
                     400, input_median_mb=70, input_sigma=0.4,
                     runtime=_rt(0.003, 0.002, cpu=140, jitter=0.15)),
        TaskTypeSpec("GraphAnalysis", ConstantHeavyTailMemory(median_mb=480.0, sigma=0.6, cap_mb=6000.0),
                     300, input_median_mb=60, input_sigma=0.4,
                     runtime=_rt(0.004, 0.002, cpu=130, jitter=0.15)),
        TaskTypeSpec("Postprocessing", SublinearMemory(coef=14.0, exponent=0.5, intercept_mb=140.0),
                     160, input_median_mb=50, input_sigma=0.4,
                     runtime=_rt(0.002, 0.001, cpu=110, jitter=0.15)),
    ]
    return WorkflowSpec("iwd", t, dag=None)


_BUILDERS = {
    "eager": _eager_spec,
    "methylseq": _methylseq_spec,
    "chipseq": _chipseq_spec,
    "rnaseq": _rnaseq_spec,
    "mag": _mag_spec,
    "iwd": _iwd_spec,
}


def build_workflow_spec(name: str) -> WorkflowSpec:
    """Return the :class:`WorkflowSpec` for one of the six paper workflows."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown workflow {name!r}; choose from {WORKFLOW_NAMES}"
        ) from None


def build_workflow_trace(
    name: str, seed: int = 0, scale: float = 1.0
) -> WorkflowTrace:
    """Generate a trace for one paper workflow.

    ``scale`` < 1 subsamples each task type proportionally — the benchmark
    harness uses this to keep full-grid runs fast while preserving the
    per-type input distributions.
    """
    trace = generate_trace(build_workflow_spec(name), seed=seed)
    if scale != 1.0:
        trace = trace.subsample(scale, seed=seed + 1)
    return trace


def build_all_traces(seed: int = 0, scale: float = 1.0) -> dict[str, WorkflowTrace]:
    """Traces for all six workflows, keyed by workflow name."""
    return {
        name: build_workflow_trace(name, seed=seed, scale=scale)
        for name in WORKFLOW_NAMES
    }
