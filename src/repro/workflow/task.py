"""Task-type and task-instance data model.

Terminology follows the paper: a workflow consists of black-box task
types ``B`` (templates wrapping analysis tools) and physical task
instances ``T`` with concrete inputs.  A :class:`WorkflowTrace` is the
recorded execution of all instances of one workflow — the unit the
online simulator replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dag -> task)
    from repro.workflow.dag import WorkflowDAG

__all__ = ["TaskType", "TaskInstance", "WorkflowTrace"]


@dataclass(frozen=True)
class TaskType:
    """A workflow task template (paper: black-box task type ``b``).

    Attributes
    ----------
    name:
        Tool name, e.g. ``"MarkDuplicates"``.
    workflow:
        Name of the owning workflow, e.g. ``"rnaseq"``.
    preset_memory_mb:
        The user/developer-provided memory estimate for this task type —
        the "usually conservative" default the Workflow-Presets baseline
        allocates and Sizey falls back to for unknown task types.
    """

    name: str
    workflow: str
    preset_memory_mb: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task type name must be non-empty")
        if self.preset_memory_mb <= 0:
            raise ValueError(
                f"preset_memory_mb must be positive, got {self.preset_memory_mb}"
            )

    @property
    def key(self) -> str:
        """Globally unique identifier ``workflow/name``."""
        return f"{self.workflow}/{self.name}"


@dataclass(frozen=True)
class TaskInstance:
    """A physical task execution with ground-truth resource usage.

    The trace generator fills in the *true* peak memory and runtime;
    predictors never see those fields before completion — the simulator
    only reveals them via provenance records after each (attempted)
    execution.

    Attributes
    ----------
    task_type:
        The template this instance was created from.
    instance_id:
        Unique per-trace index.
    input_size_mb:
        Total size of the input files — the primary prediction feature
        (paper Fig. 2 relates memory to "input read").
    peak_memory_mb:
        Ground-truth peak memory consumption.
    runtime_hours:
        Ground-truth runtime on an unloaded machine.
    cpu_percent:
        Mean CPU utilisation (can exceed 100 on multi-threaded tools),
        used for the Fig. 7 utilisation plots.
    io_read_mb / io_write_mb:
        I/O volumes, also for Fig. 7.
    machine:
        Name of the machine configuration the task runs on — Sizey keys
        its model pools by (task type, machine) pairs.
    """

    task_type: TaskType
    instance_id: int
    input_size_mb: float
    peak_memory_mb: float
    runtime_hours: float
    cpu_percent: float = 100.0
    io_read_mb: float = 0.0
    io_write_mb: float = 0.0
    machine: str = "default"

    def __post_init__(self) -> None:
        if self.input_size_mb < 0:
            raise ValueError(f"input_size_mb must be >= 0, got {self.input_size_mb}")
        if self.peak_memory_mb <= 0:
            raise ValueError(
                f"peak_memory_mb must be positive, got {self.peak_memory_mb}"
            )
        if self.runtime_hours <= 0:
            raise ValueError(
                f"runtime_hours must be positive, got {self.runtime_hours}"
            )

    @property
    def features(self) -> np.ndarray:
        """Feature vector used by memory predictors (shape ``(1, d)``)."""
        return np.array([[self.input_size_mb]], dtype=np.float64)


@dataclass
class WorkflowTrace:
    """All task instances of one workflow execution, in submission order.

    ``dag`` is the task-type dependency graph the trace was generated
    under (exported by :func:`repro.workflow.generator.generate_trace`),
    making generator and scheduler agree on one dependency source of
    truth.  ``None`` for hand-built or legacy traces — the DAG-aware
    engine then needs an explicit ``dag=`` option.

    ``instance_edges`` optionally records *per-instance* dependencies as
    ``(parent_instance_id, child_instance_id)`` pairs — finer-grained
    than the type-level ``dag``.  Real provenance formats (WfCommons)
    declare dependencies per instance; trace schema v2
    (:mod:`repro.workflow.io`) round-trips them losslessly.
    """

    workflow: str
    instances: list[TaskInstance] = field(default_factory=list)
    dag: "WorkflowDAG | None" = None
    instance_edges: list[tuple[int, int]] | None = None

    def __post_init__(self) -> None:
        dag_nodes = set(self.dag.nodes) if self.dag is not None else None
        for inst in self.instances:
            if inst.task_type.workflow != self.workflow:
                raise ValueError(
                    f"instance {inst.instance_id} belongs to workflow "
                    f"{inst.task_type.workflow!r}, trace is {self.workflow!r}"
                )
            if dag_nodes is not None and inst.task_type.name not in dag_nodes:
                raise ValueError(
                    f"instance {inst.instance_id} has task type "
                    f"{inst.task_type.name!r} which is not a node of the "
                    f"trace's DAG"
                )
        if self.instance_edges is not None:
            ids = {inst.instance_id for inst in self.instances}
            for up, down in self.instance_edges:
                if up not in ids or down not in ids:
                    raise ValueError(
                        f"instance edge ({up}, {down}) references an "
                        f"instance id not present in the trace"
                    )

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[TaskInstance]:
        return iter(self.instances)

    @property
    def task_types(self) -> list[TaskType]:
        """Distinct task types in first-appearance order."""
        seen: dict[str, TaskType] = {}
        for inst in self.instances:
            seen.setdefault(inst.task_type.key, inst.task_type)
        return list(seen.values())

    def instances_of(self, task_type_name: str) -> list[TaskInstance]:
        """All instances whose task-type name equals ``task_type_name``."""
        return [i for i in self.instances if i.task_type.name == task_type_name]

    def stats(self) -> dict[str, float]:
        """Summary statistics used by the Table I regenerator."""
        types = self.task_types
        n_types = len(types)
        per_type = [len(self.instances_of(t.name)) for t in types]
        return {
            "n_task_types": n_types,
            "n_instances": len(self.instances),
            "avg_instances_per_type": (
                float(np.mean(per_type)) if per_type else 0.0
            ),
        }

    def subsample(self, fraction: float, seed: int = 0) -> "WorkflowTrace":
        """Deterministically keep ``fraction`` of each task type's instances.

        Used by the benchmark harness to run scaled-down experiments while
        preserving each task type's input distribution and relative size.
        Order of the surviving instances is preserved.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0:
            return self
        rng = np.random.default_rng(seed)
        keep: set[int] = set()
        for t in self.task_types:
            ids = [i.instance_id for i in self.instances_of(t.name)]
            # Never drop a type entirely: keep at least 2 so online models
            # always get at least one training point before the last query.
            n_keep = max(2, int(round(len(ids) * fraction)))
            n_keep = min(n_keep, len(ids))
            chosen = rng.choice(len(ids), size=n_keep, replace=False)
            keep.update(ids[c] for c in chosen)
        kept = [i for i in self.instances if i.instance_id in keep]
        edges = None
        if self.instance_edges is not None:
            edges = [
                (u, v) for u, v in self.instance_edges
                if u in keep and v in keep
            ]
        return WorkflowTrace(
            self.workflow, kept, dag=self.dag, instance_edges=edges
        )
