"""Robust linear regression (Huber loss via IRLS).

Peak-memory histories occasionally contain wild outliers (a task hitting
swap-adjacent pathological inputs); ordinary least squares lets a single
such point rotate the whole line.  The Huber M-estimator keeps the
efficient quadratic behaviour near the fit while bounding the influence
of outliers, solved here with iteratively reweighted least squares.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_is_fitted,
    check_X_y,
)

__all__ = ["HuberRegressor"]


class HuberRegressor(BaseEstimator, RegressorMixin):
    """Linear model minimising the Huber loss.

    Parameters
    ----------
    delta:
        Transition point between quadratic and linear loss, in units of
        the robust residual scale (MAD); 1.35 gives ~95 % efficiency on
        Gaussian data.
    max_iter, tol:
        IRLS iteration limits.
    fit_intercept:
        Whether to estimate an intercept term.
    """

    def __init__(
        self,
        delta: float = 1.35,
        max_iter: int = 100,
        tol: float = 1e-8,
        fit_intercept: bool = True,
    ) -> None:
        self.delta = delta
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "HuberRegressor":
        if self.delta <= 0:
            raise ValueError(f"delta must be positive, got {self.delta}")
        X, y = check_X_y(X, y)
        design = (
            np.hstack([X, np.ones((X.shape[0], 1))]) if self.fit_intercept else X
        )
        beta, *_ = np.linalg.lstsq(design, y, rcond=None)  # OLS start
        for _ in range(self.max_iter):
            resid = y - design @ beta
            # Robust scale: median absolute deviation (consistent for
            # the Gaussian via the 0.6745 factor).
            mad = np.median(np.abs(resid - np.median(resid))) / 0.6745
            scale = max(mad, 1e-12)
            z = np.abs(resid) / scale
            # Huber weights: 1 inside delta, delta/|z| outside.
            w = np.where(z <= self.delta, 1.0, self.delta / np.maximum(z, 1e-12))
            wd = design * w[:, None]
            gram = wd.T @ design
            try:
                beta_new = np.linalg.solve(gram, wd.T @ y)
            except np.linalg.LinAlgError:  # singular weighted design
                beta_new, *_ = np.linalg.lstsq(wd, w * y, rcond=None)
            if np.max(np.abs(beta_new - beta)) < self.tol:
                beta = beta_new
                break
            beta = beta_new
        if self.fit_intercept:
            self.coef_ = beta[:-1]
            self.intercept_ = float(beta[-1])
        else:
            self.coef_ = beta
            self.intercept_ = 0.0
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ["coef_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_
