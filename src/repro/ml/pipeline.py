"""Transformer/estimator pipelines.

A minimal counterpart of sklearn's ``Pipeline``: a chain of transformers
(objects with ``fit``/``transform``) ending in an estimator.  Sizey's
model slots hand-roll their scaling today; the pipeline exists for users
composing custom model classes (``examples/custom_model.py``) without
re-implementing the plumbing.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, check_is_fitted, clone

__all__ = ["Pipeline", "make_pipeline"]


class Pipeline(BaseEstimator, RegressorMixin):
    """Chain of ``(name, transformer)`` steps ending in an estimator."""

    def __init__(self, steps: Sequence[tuple[str, Any]] = ()) -> None:
        self.steps = list(steps)

    def _validate(self) -> None:
        if not self.steps:
            raise ValueError("pipeline needs at least one step")
        names = [n for n, _ in self.steps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate step names: {names}")
        for name, step in self.steps[:-1]:
            if not hasattr(step, "transform"):
                raise TypeError(
                    f"intermediate step {name!r} must implement transform"
                )
        last = self.steps[-1][1]
        if not hasattr(last, "fit") or not hasattr(last, "predict"):
            raise TypeError("final step must be an estimator (fit/predict)")

    @property
    def named_steps(self) -> dict[str, Any]:
        return dict(self.steps)

    def fit(self, X, y) -> "Pipeline":
        self._validate()
        self.steps_ = [(name, clone(step)) for name, step in self.steps]
        data = np.asarray(X, dtype=np.float64)
        for _, step in self.steps_[:-1]:
            data = step.fit(data).transform(data)
        self.steps_[-1][1].fit(data, y)
        return self

    def _transform_through(self, X) -> np.ndarray:
        check_is_fitted(self, ["steps_"])
        data = np.asarray(X, dtype=np.float64)
        for _, step in self.steps_[:-1]:
            data = step.transform(data)
        return data

    def predict(self, X) -> np.ndarray:
        return self.steps_[-1][1].predict(self._transform_through(X))

    def partial_fit(self, X, y) -> "Pipeline":
        """Incremental update: every step must support ``partial_fit``."""
        if not hasattr(self, "steps_"):
            self._validate()
            self.steps_ = [(name, clone(step)) for name, step in self.steps]
        data = np.asarray(X, dtype=np.float64)
        for name, step in self.steps_[:-1]:
            if not hasattr(step, "partial_fit"):
                raise TypeError(f"step {name!r} does not support partial_fit")
            step.partial_fit(data)
            data = step.transform(data)
        final = self.steps_[-1][1]
        if not hasattr(final, "partial_fit"):
            raise TypeError("final estimator does not support partial_fit")
        final.partial_fit(data, y)
        return self


def make_pipeline(*steps: Any) -> Pipeline:
    """Build a pipeline with auto-generated step names."""
    return Pipeline(
        [(f"step{i}_{type(s).__name__.lower()}", s) for i, s in enumerate(steps)]
    )
