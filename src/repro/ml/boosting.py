"""Gradient-boosted regression trees.

Not used by the paper's four-model pool, but provided as an additional
model class for Sizey's extendable interface (see
:mod:`repro.core.models` and ``examples/custom_model.py``): boosting
often dominates random forests on the small, low-dimensional tabular
histories that workflow provenance produces.

Standard least-squares gradient boosting: each stage fits a shallow
CART tree to the current residuals; predictions accumulate with a
learning-rate shrinkage.  Optional Huber loss makes the ensemble robust
to the occasional wild peak-memory outlier.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_is_fitted,
    check_X_y,
)
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(BaseEstimator, RegressorMixin):
    """Stage-wise additive regression with CART base learners.

    Parameters
    ----------
    n_estimators:
        Number of boosting stages.
    learning_rate:
        Shrinkage applied to each stage's contribution.
    max_depth:
        Depth of the base trees (shallow trees regularise).
    min_samples_leaf:
        Passed through to the base trees.
    loss:
        ``"squared"`` (default) or ``"huber"``.
    huber_delta_quantile:
        For the Huber loss: the residual-magnitude quantile used as the
        transition point delta at each stage.
    subsample:
        Fraction of samples drawn (without replacement) per stage;
        values < 1 give stochastic gradient boosting.
    random_state:
        Seed for subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        loss: str = "squared",
        huber_delta_quantile: float = 0.9,
        subsample: float = 1.0,
        random_state: int | None = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.loss = loss
        self.huber_delta_quantile = huber_delta_quantile
        self.subsample = subsample
        self.random_state = random_state

    def _negative_gradient(self, residual: np.ndarray) -> np.ndarray:
        if self.loss == "squared":
            return residual
        # Huber: clip the gradient beyond delta.
        delta = np.quantile(np.abs(residual), self.huber_delta_quantile)
        if delta <= 0.0:
            return residual
        return np.clip(residual, -delta, delta)

    def fit(self, X, y) -> "GradientBoostingRegressor":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError(
                f"learning_rate must be in (0, 1], got {self.learning_rate}"
            )
        if self.loss not in ("squared", "huber"):
            raise ValueError(f"unknown loss {self.loss!r}")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {self.subsample}")
        X, y = check_X_y(X, y)
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]

        self.init_ = float(np.mean(y))
        current = np.full(n, self.init_)
        self.estimators_: list[DecisionTreeRegressor] = []
        self.train_score_: list[float] = []
        n_sub = max(1, int(round(self.subsample * n)))
        for stage in range(self.n_estimators):
            residual = y - current
            target = self._negative_gradient(residual)
            if self.subsample < 1.0:
                idx = rng.choice(n, size=n_sub, replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            ).fit(X[idx], target[idx])
            update = tree.predict(X)
            current = current + self.learning_rate * update
            self.estimators_.append(tree)
            self.train_score_.append(float(np.mean((y - current) ** 2)))
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (for early-stop
        diagnostics)."""
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out = out + self.learning_rate * tree.predict(X)
            yield out.copy()
