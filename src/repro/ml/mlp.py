"""Multi-layer perceptron regressor.

The model class Sizey uses "to accurately model more complex, nonlinear
relationships, such as memory usage that grows as the square of the
amount of input data" (paper §II-B).  In the paper's Fig. 11 the MLP is
the most frequently selected class (42.7 % of predictions).

Implementation notes
--------------------
- Dense feed-forward network, squared loss, Adam optimiser.
- ``fit`` trains from a fresh initialisation with mini-batches, early
  stopping on training-loss plateau.
- ``partial_fit`` performs a small number of Adam steps on the given
  batch from the *current* weights — this is the "lightweight ... online
  learning step" of the paper's Phase 3.
- All tensor work is vectorised float64 NumPy; weights are stored as
  lists of (W, b) per layer.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["MLPRegressor"]

_ACTIVATIONS = ("relu", "tanh", "identity", "logistic")


def _act(name: str, z: np.ndarray) -> np.ndarray:
    if name == "relu":
        return np.maximum(z, 0.0)
    if name == "tanh":
        return np.tanh(z)
    if name == "logistic":
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
    return z


def _act_grad(name: str, a: np.ndarray) -> np.ndarray:
    """Derivative expressed in terms of the activation output ``a``."""
    if name == "relu":
        return (a > 0.0).astype(np.float64)
    if name == "tanh":
        return 1.0 - a * a
    if name == "logistic":
        return a * (1.0 - a)
    return np.ones_like(a)


class MLPRegressor(BaseEstimator, RegressorMixin):
    """Feed-forward neural network for regression, trained with Adam.

    Parameters
    ----------
    hidden_layer_sizes:
        Width of each hidden layer, e.g. ``(32, 16)``.
    activation:
        ``"relu"`` (default), ``"tanh"``, ``"logistic"`` or ``"identity"``.
    alpha:
        L2 penalty on the weights.
    learning_rate_init:
        Adam step size.
    batch_size:
        Mini-batch size (clipped to the dataset size).
    max_iter:
        Maximum epochs for ``fit``.
    tol, n_iter_no_change:
        Early stopping: stop when the epoch loss fails to improve by
        ``tol`` for ``n_iter_no_change`` consecutive epochs.
    partial_fit_steps:
        Number of Adam steps one ``partial_fit`` call performs.
    random_state:
        Seed for weight init and batch shuffling.
    """

    def __init__(
        self,
        hidden_layer_sizes: tuple[int, ...] = (32,),
        activation: str = "relu",
        alpha: float = 1e-4,
        learning_rate_init: float = 1e-3,
        batch_size: int = 32,
        max_iter: int = 300,
        tol: float = 1e-5,
        n_iter_no_change: int = 10,
        partial_fit_steps: int = 20,
        random_state: int | None = 0,
    ) -> None:
        self.hidden_layer_sizes = hidden_layer_sizes
        self.activation = activation
        self.alpha = alpha
        self.learning_rate_init = learning_rate_init
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.tol = tol
        self.n_iter_no_change = n_iter_no_change
        self.partial_fit_steps = partial_fit_steps
        self.random_state = random_state

    # ------------------------------------------------------------------
    # initialisation
    # ------------------------------------------------------------------
    def _init_net(self, n_features: int, rng: np.random.Generator) -> None:
        if self.activation not in _ACTIVATIONS:
            raise ValueError(
                f"activation must be one of {_ACTIVATIONS}, got {self.activation!r}"
            )
        sizes = [n_features, *self.hidden_layer_sizes, 1]
        if any(s < 1 for s in sizes):
            raise ValueError(f"invalid layer sizes {sizes}")
        self.coefs_: list[np.ndarray] = []
        self.intercepts_: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # Glorot-uniform initialisation.
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self.coefs_.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self.intercepts_.append(np.zeros(fan_out))
        # Adam state.
        self._m = [np.zeros_like(w) for w in self.coefs_] + [
            np.zeros_like(b) for b in self.intercepts_
        ]
        self._v = [np.zeros_like(w) for w in self.coefs_] + [
            np.zeros_like(b) for b in self.intercepts_
        ]
        self._adam_t = 0
        self.n_features_in_ = n_features

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def _forward(self, X: np.ndarray) -> list[np.ndarray]:
        """Return activations per layer; last entry is the linear output."""
        acts = [X]
        a = X
        last = len(self.coefs_) - 1
        for li, (W, b) in enumerate(zip(self.coefs_, self.intercepts_)):
            z = a @ W + b
            a = z if li == last else _act(self.activation, z)
            acts.append(a)
        return acts

    def _backward(
        self, acts: list[np.ndarray], y: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        n = y.shape[0]
        grads_w: list[np.ndarray] = [np.empty(0)] * len(self.coefs_)
        grads_b: list[np.ndarray] = [np.empty(0)] * len(self.intercepts_)
        # d(MSE)/d(output) with the 1/2 absorbed into the 2/n factor.
        delta = (acts[-1].reshape(-1) - y).reshape(-1, 1) * (2.0 / n)
        for li in range(len(self.coefs_) - 1, -1, -1):
            grads_w[li] = acts[li].T @ delta + self.alpha * self.coefs_[li]
            grads_b[li] = delta.sum(axis=0)
            if li > 0:
                delta = (delta @ self.coefs_[li].T) * _act_grad(
                    self.activation, acts[li]
                )
        return grads_w, grads_b

    def _adam_step(
        self, grads_w: list[np.ndarray], grads_b: list[np.ndarray]
    ) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam_t += 1
        t = self._adam_t
        params = self.coefs_ + self.intercepts_
        grads = grads_w + grads_b
        lr = self.learning_rate_init
        for i, (p, g) in enumerate(zip(params, grads)):
            self._m[i] = beta1 * self._m[i] + (1 - beta1) * g
            self._v[i] = beta2 * self._v[i] + (1 - beta2) * (g * g)
            m_hat = self._m[i] / (1 - beta1**t)
            v_hat = self._v[i] / (1 - beta2**t)
            p -= lr * m_hat / (np.sqrt(v_hat) + eps)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def fit(self, X, y) -> "MLPRegressor":
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self._init_net(X.shape[1], rng)
        n = X.shape[0]
        batch = max(1, min(self.batch_size, n))
        best_loss = np.inf
        stale = 0
        self.loss_curve_: list[float] = []
        for _ in range(self.max_iter):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                acts = self._forward(X[idx])
                gw, gb = self._backward(acts, y[idx])
                self._adam_step(gw, gb)
            pred = self._forward(X)[-1].reshape(-1)
            loss = float(np.mean((pred - y) ** 2))
            self.loss_curve_.append(loss)
            if loss < best_loss - self.tol:
                best_loss = loss
                stale = 0
            else:
                stale += 1
                if stale >= self.n_iter_no_change:
                    break
        self.n_iter_ = len(self.loss_curve_)
        return self

    def partial_fit(self, X, y) -> "MLPRegressor":
        """Warm-start update: a few Adam steps on the given batch."""
        X, y = check_X_y(X, y)
        if not hasattr(self, "coefs_"):
            rng = check_random_state(self.random_state)
            self._init_net(X.shape[1], rng)
        elif X.shape[1] != self.n_features_in_:
            raise ValueError("feature dimension changed between updates")
        for _ in range(max(1, self.partial_fit_steps)):
            acts = self._forward(X)
            gw, gb = self._backward(acts, y)
            self._adam_step(gw, gb)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ["coefs_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return self._forward(X)[-1].reshape(-1)
