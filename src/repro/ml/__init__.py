"""A from-scratch NumPy machine-learning substrate.

scikit-learn is unavailable in this environment, so this package provides
the estimator families the Sizey paper relies on, implemented directly on
NumPy/SciPy with a scikit-learn-compatible estimator contract:

- :mod:`repro.ml.linear` -- ordinary least squares, ridge, and pinball-loss
  quantile regression (the Witt-Wastage baseline needs quantile lines).
- :mod:`repro.ml.sgd` -- incrementally trainable linear regression
  (``partial_fit``), used by Sizey's incremental-update mode.
- :mod:`repro.ml.neighbors` -- k-nearest-neighbours regression.
- :mod:`repro.ml.tree` / :mod:`repro.ml.forest` -- CART regression trees
  and bagged random forests.
- :mod:`repro.ml.mlp` -- a multi-layer perceptron regressor trained with
  Adam, supporting warm-started incremental updates.
- :mod:`repro.ml.preprocessing` -- feature scalers.
- :mod:`repro.ml.metrics` -- regression metrics (MAE, MSE, MAPE, R2, ...).
- :mod:`repro.ml.model_selection` -- K-fold cross-validation and grid
  search used for Sizey's hyper-parameter optimisation.

All estimators follow the familiar ``fit(X, y)`` / ``predict(X)`` protocol,
support ``get_params`` / ``set_params`` / :func:`repro.ml.base.clone`, and
take explicit ``random_state`` seeds (no global RNG state).
"""

from repro.ml.base import BaseEstimator, NotFittedError, RegressorMixin, clone
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression, QuantileRegressor, RidgeRegression
from repro.ml.mlp import MLPRegressor
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.preprocessing import MinMaxScaler, RobustScaler, StandardScaler
from repro.ml.sgd import SGDRegressor
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "RegressorMixin",
    "NotFittedError",
    "clone",
    "LinearRegression",
    "RidgeRegression",
    "QuantileRegressor",
    "SGDRegressor",
    "KNeighborsRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "MLPRegressor",
    "StandardScaler",
    "MinMaxScaler",
    "RobustScaler",
]
