"""Regression metrics used across the Sizey reproduction.

All metrics are vectorised, allocate no intermediate Python objects, and
accept plain array-likes.  They are the measuring instruments both for the
ML substrate's own tests and for the paper's evaluation (relative
prediction error in Fig. 12, accuracy score Eq. 1, wastage accounting).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_percentage_error",
    "median_absolute_error",
    "r2_score",
    "pinball_loss",
    "relative_error",
    "under_prediction_rate",
]


def _pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    yt = np.asarray(y_true, dtype=np.float64).reshape(-1)
    yp = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    if yt.shape != yp.shape:
        raise ValueError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    if yt.size == 0:
        raise ValueError("metrics need at least one sample")
    return yt, yp


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error ``mean(|y - yhat|)``."""
    yt, yp = _pair(y_true, y_pred)
    return float(np.mean(np.abs(yt - yp)))


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error ``mean((y - yhat)^2)``."""
    yt, yp = _pair(y_true, y_pred)
    d = yt - yp
    return float(np.mean(d * d))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Square root of :func:`mean_squared_error`."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_percentage_error(y_true, y_pred) -> float:
    """MAPE with the conventional guard against division by zero.

    Zero targets contribute ``|y - yhat| / eps`` as in scikit-learn, which
    keeps the metric finite while still penalising errors on zero targets
    heavily.
    """
    yt, yp = _pair(y_true, y_pred)
    denom = np.maximum(np.abs(yt), np.finfo(np.float64).eps)
    return float(np.mean(np.abs(yt - yp) / denom))


def median_absolute_error(y_true, y_pred) -> float:
    """Median of absolute errors; robust to outliers."""
    yt, yp = _pair(y_true, y_pred)
    return float(np.median(np.abs(yt - yp)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    Returns 0.0 for a constant target predicted exactly and a negative
    value when the model is worse than predicting the mean; mirrors the
    scikit-learn convention.
    """
    yt, yp = _pair(y_true, y_pred)
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - np.mean(yt)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def pinball_loss(y_true, y_pred, quantile: float) -> float:
    """Quantile (pinball) loss for quantile regression.

    ``quantile`` must lie strictly in (0, 1).  Minimising this loss yields
    the conditional ``quantile`` of the target, which is what the
    Witt-Wastage baseline's quantile regression lines optimise.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    yt, yp = _pair(y_true, y_pred)
    diff = yt - yp
    return float(np.mean(np.maximum(quantile * diff, (quantile - 1.0) * diff)))


def relative_error(y_true, y_pred) -> np.ndarray:
    """Per-sample relative error ``|y - yhat| / y`` (paper Fig. 12).

    Targets must be strictly positive (peak memory always is).
    """
    yt, yp = _pair(y_true, y_pred)
    if np.any(yt <= 0):
        raise ValueError("relative_error requires strictly positive targets")
    return np.abs(yt - yp) / yt


def under_prediction_rate(y_true, y_pred) -> float:
    """Fraction of samples where the prediction is below the target.

    An underprediction of peak memory is the failure-triggering event in
    the paper's execution model (assumption A3).
    """
    yt, yp = _pair(y_true, y_pred)
    return float(np.mean(yp < yt))
