"""CART regression trees.

The building block for :class:`repro.ml.forest.RandomForestRegressor`,
one of Sizey's four model classes ("makes our method more resistant to
overfitting, especially when there are not many historical task
executions", paper §II-B).

The implementation is a standard variance-reduction CART grower.  Split
search is fully vectorised per (node, feature): candidate thresholds are
midpoints between consecutive sorted unique values, and the sum of child
variances is computed with cumulative sums in O(n) per feature, no Python
inner loop — the hot path the HPC guide tells us to vectorise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    """A tree node; leaves carry a value, internal nodes a split."""

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left < 0


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_idx: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    """Return (feature, threshold, score_gain) of the best split.

    ``score_gain`` is the reduction in total squared error; returns
    feature == -1 when no valid split exists.
    """
    n = y.shape[0]
    total_sq = float(y @ y)
    total_sum = float(y.sum())
    parent_sse = total_sq - total_sum**2 / n

    best_feat, best_thr, best_gain = -1, 0.0, 0.0
    for f in feature_idx:
        col = X[:, f]
        order = np.argsort(col, kind="stable")
        xs = col[order]
        ys = y[order]
        # Candidate split positions: between distinct consecutive values,
        # respecting min_samples_leaf on both sides.
        csum = np.cumsum(ys)
        csq = np.cumsum(ys * ys)
        pos = np.arange(1, n)  # left child size at candidate i
        valid = (xs[1:] != xs[:-1]) & (pos >= min_samples_leaf) & (
            n - pos >= min_samples_leaf
        )
        if not np.any(valid):
            continue
        left_n = pos[valid].astype(np.float64)
        right_n = n - left_n
        left_sum = csum[:-1][valid]
        left_sq = csq[:-1][valid]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        sse = (
            left_sq
            - left_sum**2 / left_n
            + right_sq
            - right_sum**2 / right_n
        )
        i = int(np.argmin(sse))
        gain = parent_sse - float(sse[i])
        if gain > best_gain:
            where = np.flatnonzero(valid)[i]
            best_feat = int(f)
            best_thr = float(0.5 * (xs[where] + xs[where + 1]))
            best_gain = gain
    return best_feat, best_thr, best_gain


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART regression tree minimising squared error.

    Parameters
    ----------
    max_depth:
        Maximum depth (``None`` = grow until pure / size limits).
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples in each child.
    max_features:
        Features examined per split: ``None`` (all), ``"sqrt"``,
        ``"log2"``, an int, or a float fraction.  Randomised selection is
        what decorrelates trees inside the random forest.
    random_state:
        Seed for the feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | None = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def _n_features_to_use(self, d: int) -> int:
        mf = self.max_features
        if mf is None:
            return d
        if isinstance(mf, str):
            if mf == "sqrt":
                return max(1, int(np.sqrt(d)))
            if mf == "log2":
                return max(1, int(np.log2(d)) if d > 1 else 1)
            raise ValueError(f"unknown max_features {mf!r}")
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError(f"max_features fraction must be in (0,1], got {mf}")
            return max(1, int(mf * d))
        if isinstance(mf, int):
            if not 1 <= mf <= d:
                raise ValueError(f"max_features must be in [1, {d}], got {mf}")
            return mf
        raise ValueError(f"invalid max_features {mf!r}")

    def fit(self, X, y) -> "DecisionTreeRegressor":
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError("max_depth must be >= 1 or None")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        d = X.shape[1]
        k = self._n_features_to_use(d)

        nodes: list[_Node] = []

        def grow(sample_idx: np.ndarray, depth: int) -> int:
            node_id = len(nodes)
            ys = y[sample_idx]
            node = _Node(value=float(ys.mean()), n_samples=sample_idx.shape[0])
            nodes.append(node)
            if (
                sample_idx.shape[0] < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.all(ys == ys[0])
            ):
                return node_id
            feats = (
                np.arange(d)
                if k == d
                else rng.choice(d, size=k, replace=False)
            )
            f, thr, gain = _best_split(
                X[sample_idx], ys, feats, self.min_samples_leaf
            )
            if f < 0 or gain <= 0.0:
                return node_id
            mask = X[sample_idx, f] <= thr
            node.feature = f
            node.threshold = thr
            node.left = grow(sample_idx[mask], depth + 1)
            node.right = grow(sample_idx[~mask], depth + 1)
            return node_id

        grow(np.arange(X.shape[0]), 0)
        self.nodes_ = nodes
        self.n_features_in_ = d
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ["nodes_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        nodes = self.nodes_
        out = np.empty(X.shape[0], dtype=np.float64)
        # Iterative descent; trees from workflow histories are shallow so
        # this loop is cheap, and level-order vectorisation would not pay
        # for itself at these sizes (profile before optimising).
        for i in range(X.shape[0]):
            nid = 0
            node = nodes[0]
            while not node.is_leaf:
                nid = node.left if X[i, node.feature] <= node.threshold else node.right
                node = nodes[nid]
            out[i] = node.value
        return out

    @property
    def depth_(self) -> int:
        """Depth of the fitted tree (root = depth 0)."""
        check_is_fitted(self, ["nodes_"])

        def walk(nid: int) -> int:
            node = self.nodes_[nid]
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(0)

    @property
    def n_leaves_(self) -> int:
        """Number of leaves of the fitted tree."""
        check_is_fitted(self, ["nodes_"])
        return sum(1 for n in self.nodes_ if n.is_leaf)
