"""Random forest regression: bagged CART trees with feature subsampling.

One of Sizey's four model classes.  The forest averages bootstrap-trained
trees; per-tree feature subsampling (``max_features="sqrt"`` by default
here, matching the regression convention of 1.0 in sklearn being common
too — we expose it) decorrelates the ensemble.

Trees are independent, so fitting can optionally fan out over a thread
pool: each tree's hot loops are NumPy reductions that release the GIL,
mirroring the paper's "trains a set of diverse machine learning models in
parallel".
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor(BaseEstimator, RegressorMixin):
    """Bootstrap-aggregated regression trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Passed through to each :class:`DecisionTreeRegressor`.
    bootstrap:
        Sample the training set with replacement per tree (classic
        bagging).  When false, every tree sees the full data and only
        feature subsampling decorrelates them.
    oob_score:
        When true (and bootstrapping), compute the out-of-bag R^2 after
        fitting, stored as ``oob_score_``.
    n_jobs:
        Thread-pool width for fitting; ``1`` fits serially.
    random_state:
        Seed for bootstrap and per-tree feature sampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = 1.0,
        bootstrap: bool = True,
        oob_score: bool = False,
        n_jobs: int = 1,
        random_state: int | None = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.n_jobs = n_jobs
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestRegressor":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        seeds = rng.integers(0, 2**31 - 1, size=self.n_estimators)
        sample_sets: list[np.ndarray] = []
        for s in range(self.n_estimators):
            if self.bootstrap:
                tree_rng = np.random.default_rng(int(seeds[s]))
                sample_sets.append(tree_rng.integers(0, n, size=n))
            else:
                sample_sets.append(np.arange(n))

        def fit_one(s: int) -> DecisionTreeRegressor:
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(seeds[s]),
            )
            idx = sample_sets[s]
            return tree.fit(X[idx], y[idx])

        if self.n_jobs == 1 or self.n_estimators == 1:
            self.estimators_ = [fit_one(s) for s in range(self.n_estimators)]
        else:
            with ThreadPoolExecutor(max_workers=self.n_jobs) as pool:
                self.estimators_ = list(pool.map(fit_one, range(self.n_estimators)))

        self.n_features_in_ = X.shape[1]
        if self.oob_score and self.bootstrap:
            self._compute_oob(X, y, sample_sets)
        return self

    def _compute_oob(
        self, X: np.ndarray, y: np.ndarray, sample_sets: list[np.ndarray]
    ) -> None:
        from repro.ml.metrics import r2_score

        n = X.shape[0]
        preds = np.zeros(n)
        counts = np.zeros(n)
        for tree, idx in zip(self.estimators_, sample_sets):
            mask = np.ones(n, dtype=bool)
            mask[idx] = False
            if not mask.any():
                continue
            preds[mask] += tree.predict(X[mask])
            counts[mask] += 1
        covered = counts > 0
        if covered.sum() < 2:
            self.oob_score_ = float("nan")
            return
        self.oob_score_ = r2_score(y[covered], preds[covered] / counts[covered])

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        out = np.zeros(X.shape[0], dtype=np.float64)
        for tree in self.estimators_:
            out += tree.predict(X)
        out /= len(self.estimators_)
        return out
