"""Model selection: splits, K-fold cross-validation, grid search.

Sizey performs "hyperparameter optimization" during full retraining and
"caches the best hyperparameters over the workflow execution" in the
incremental variant (paper §III-A / §III-D).  :class:`GridSearchCV` here
supports both: ``fit`` finds the best parameter combination by K-fold
cross-validated error, and the winning combination is exposed as
``best_params_`` for the pool's hyper-parameter cache.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    check_random_state,
    check_X_y,
    clone,
)
from repro.ml.metrics import mean_squared_error

__all__ = [
    "train_test_split",
    "KFold",
    "ParameterGrid",
    "cross_val_score",
    "GridSearchCV",
]


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.25,
    shuffle: bool = True,
    random_state: int | None = 0,
):
    """Split arrays into train and test subsets.

    Returns ``X_train, X_test, y_train, y_test``.  ``test_size`` is a
    fraction in (0, 1); at least one sample lands on each side.
    """
    X, y = check_X_y(X, y)
    n = X.shape[0]
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    n_test = min(max(1, int(round(n * test_size))), n - 1)
    idx = np.arange(n)
    if shuffle:
        idx = check_random_state(random_state).permutation(n)
    test_idx = idx[:n_test]
    train_idx = idx[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = False,
        random_state: int | None = 0,
    ) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValueError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        idx = np.arange(n)
        if self.shuffle:
            idx = check_random_state(self.random_state).permutation(n)
        fold_sizes = np.full(self.n_splits, n // self.n_splits)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = idx[start : start + size]
            train = np.concatenate([idx[:start], idx[start + size :]])
            yield train, test
            start += size


class ParameterGrid:
    """Iterate over the cartesian product of a parameter grid.

    ``grid`` maps parameter names to candidate value lists; iteration
    yields dicts in a deterministic order (sorted keys, row-major).
    """

    def __init__(self, grid: Mapping[str, Sequence[Any]]) -> None:
        if not grid:
            self._keys: list[str] = []
            self._values: list[Sequence[Any]] = []
            return
        for key, vals in grid.items():
            if isinstance(vals, str) or not isinstance(vals, Sequence):
                raise ValueError(
                    f"grid values must be sequences; {key!r} has {vals!r}"
                )
            if len(vals) == 0:
                raise ValueError(f"grid for {key!r} is empty")
        self._keys = sorted(grid)
        self._values = [list(grid[k]) for k in self._keys]

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if not self._keys:
            yield {}
            return
        for combo in itertools.product(*self._values):
            yield dict(zip(self._keys, combo))

    def __len__(self) -> int:
        if not self._keys:
            return 1
        out = 1
        for v in self._values:
            out *= len(v)
        return out


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    *,
    cv: KFold | int = 3,
    scoring: Callable[[np.ndarray, np.ndarray], float] = mean_squared_error,
) -> np.ndarray:
    """Per-fold scores of ``estimator`` (lower = better for error metrics)."""
    X, y = check_X_y(X, y)
    folds = KFold(cv) if isinstance(cv, int) else cv
    scores = []
    for train, test in folds.split(X):
        model = clone(estimator)
        model.fit(X[train], y[train])
        scores.append(scoring(y[test], model.predict(X[test])))
    return np.asarray(scores, dtype=np.float64)


class GridSearchCV(BaseEstimator):
    """Exhaustive search over a parameter grid with K-fold validation.

    The scoring function is an *error* (lower is better), defaulting to
    MSE.  After ``fit`` the search exposes ``best_params_``,
    ``best_score_``, ``best_estimator_`` (refitted on all data), and
    ``cv_results_`` (params + mean score per candidate).

    When the data are too small to split (fewer samples than folds), the
    search degrades gracefully to in-sample scoring — essential for
    online use where the first few observations must still produce a
    model.
    """

    def __init__(
        self,
        estimator: BaseEstimator = None,  # type: ignore[assignment]
        param_grid: Mapping[str, Sequence[Any]] = None,  # type: ignore[assignment]
        cv: int = 3,
        scoring: Callable[[np.ndarray, np.ndarray], float] = mean_squared_error,
    ) -> None:
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scoring = scoring

    def fit(self, X, y) -> "GridSearchCV":
        if self.estimator is None:
            raise ValueError("estimator must be provided")
        X, y = check_X_y(X, y)
        grid = ParameterGrid(self.param_grid or {})
        n = X.shape[0]
        results: list[dict[str, Any]] = []
        best_score = np.inf
        best_params: dict[str, Any] = {}
        for params in grid:
            if n >= self.cv and n >= 2 * self.cv:
                scores = cross_val_score(
                    clone(self.estimator, overrides=params),
                    X,
                    y,
                    cv=KFold(self.cv),
                    scoring=self.scoring,
                )
                mean_score = float(scores.mean())
            else:
                # Degenerate small-sample path: in-sample error.
                model = clone(self.estimator, overrides=params)
                model.fit(X, y)
                mean_score = float(self.scoring(y, model.predict(X)))
            results.append({"params": params, "mean_score": mean_score})
            if mean_score < best_score:
                best_score = mean_score
                best_params = params
        self.cv_results_ = results
        self.best_params_ = best_params
        self.best_score_ = best_score
        self.best_estimator_ = clone(self.estimator, overrides=best_params).fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        from repro.ml.base import check_is_fitted

        check_is_fitted(self, ["best_estimator_"])
        return self.best_estimator_.predict(X)
