"""Incrementally trainable linear regression.

Sizey's incremental-update mode (paper §III-D, Fig. 9) performs a
"lightweight — and thus fast — online learning step" after each task
completion instead of a full retrain.  For the linear model class this is
implemented two ways:

- :class:`SGDRegressor`: mini-batch stochastic gradient descent on the
  squared loss with optional L2 penalty and an inverse-scaling learning
  rate, mirroring scikit-learn's ``SGDRegressor``.
- :class:`RecursiveLeastSquares`: exact online least squares via the
  Sherman-Morrison rank-1 update, so each ``partial_fit`` costs O(d^2)
  and the coefficients equal a batch ridge fit at every step.  This is
  the preferred incremental linear model in the pool because it has no
  learning-rate hyper-parameter to tune online.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["SGDRegressor", "RecursiveLeastSquares"]


class SGDRegressor(BaseEstimator, RegressorMixin):
    """Linear regression fitted with stochastic gradient descent.

    Supports the incremental ``partial_fit`` protocol; ``fit`` performs
    ``max_iter`` epochs over the data in shuffled order.
    """

    def __init__(
        self,
        learning_rate: float = 0.01,
        power_t: float = 0.25,
        alpha: float = 1e-4,
        max_iter: int = 100,
        tol: float = 1e-6,
        shuffle: bool = True,
        random_state: int | None = 0,
    ) -> None:
        self.learning_rate = learning_rate
        self.power_t = power_t
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.shuffle = shuffle
        self.random_state = random_state

    def _ensure_state(self, n_features: int) -> None:
        if not hasattr(self, "coef_"):
            self.coef_ = np.zeros(n_features, dtype=np.float64)
            self.intercept_ = 0.0
            self.t_ = 0
            self.n_features_in_ = n_features
        elif self.n_features_in_ != n_features:
            raise ValueError(
                f"partial_fit got {n_features} features, state has "
                f"{self.n_features_in_}"
            )

    def _step(self, x: np.ndarray, y: float) -> None:
        self.t_ += 1
        eta = self.learning_rate / (self.t_**self.power_t)
        pred = float(x @ self.coef_) + self.intercept_
        grad = pred - y
        self.coef_ *= 1.0 - eta * self.alpha
        self.coef_ -= eta * grad * x
        self.intercept_ -= eta * grad

    def partial_fit(self, X, y) -> "SGDRegressor":
        X, y = check_X_y(X, y)
        self._ensure_state(X.shape[1])
        for i in range(X.shape[0]):
            self._step(X[i], float(y[i]))
        return self

    def fit(self, X, y) -> "SGDRegressor":
        X, y = check_X_y(X, y)
        # Reset state: fit() always trains from scratch.
        for attr in ("coef_", "intercept_", "t_", "n_features_in_"):
            if hasattr(self, attr):
                delattr(self, attr)
        self._ensure_state(X.shape[1])
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        prev_loss = np.inf
        for _ in range(self.max_iter):
            order = rng.permutation(n) if self.shuffle else np.arange(n)
            for i in order:
                self._step(X[i], float(y[i]))
            resid = X @ self.coef_ + self.intercept_ - y
            loss = float(np.mean(resid * resid))
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ["coef_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_


class RecursiveLeastSquares(BaseEstimator, RegressorMixin):
    """Exact online ridge regression via Sherman-Morrison updates.

    Maintains ``P = (X'X + lambda I)^-1`` and updates it per sample in
    O(d^2); after any sequence of ``partial_fit`` calls the coefficients
    are identical (up to floating point) to a batch ridge fit on all data
    seen so far.  ``forgetting`` < 1 exponentially discounts old samples,
    useful when a task's memory behaviour drifts during a campaign.
    """

    def __init__(
        self,
        ridge: float = 1.0,
        forgetting: float = 1.0,
        fit_intercept: bool = True,
    ) -> None:
        self.ridge = ridge
        self.forgetting = forgetting
        self.fit_intercept = fit_intercept

    def _augment(self, X: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            return np.hstack([X, np.ones((X.shape[0], 1))])
        return X

    def _ensure_state(self, d_aug: int) -> None:
        if not hasattr(self, "P_"):
            if self.ridge <= 0:
                raise ValueError(f"ridge must be positive, got {self.ridge}")
            if not 0.0 < self.forgetting <= 1.0:
                raise ValueError(
                    f"forgetting must be in (0, 1], got {self.forgetting}"
                )
            self.P_ = np.eye(d_aug) / self.ridge
            self.w_ = np.zeros(d_aug)
            self.n_samples_seen_ = 0
        elif self.w_.shape[0] != d_aug:
            raise ValueError("feature dimension changed between updates")

    def partial_fit(self, X, y) -> "RecursiveLeastSquares":
        X, y = check_X_y(X, y)
        Xa = self._augment(X)
        self._ensure_state(Xa.shape[1])
        lam = self.forgetting
        for i in range(Xa.shape[0]):
            x = Xa[i]
            px = self.P_ @ x
            denom = lam + float(x @ px)
            k = px / denom
            err = float(y[i]) - float(x @ self.w_)
            self.w_ = self.w_ + k * err
            # P <- (P - k x' P) / lambda ; keep symmetric to fight drift.
            self.P_ = (self.P_ - np.outer(k, px)) / lam
            self.P_ = 0.5 * (self.P_ + self.P_.T)
            self.n_samples_seen_ += 1
        self._publish()
        return self

    def fit(self, X, y) -> "RecursiveLeastSquares":
        for attr in ("P_", "w_", "n_samples_seen_", "coef_", "intercept_"):
            if hasattr(self, attr):
                delattr(self, attr)
        return self.partial_fit(X, y)

    def _publish(self) -> None:
        if self.fit_intercept:
            self.coef_ = self.w_[:-1].copy()
            self.intercept_ = float(self.w_[-1])
        else:
            self.coef_ = self.w_.copy()
            self.intercept_ = 0.0
        self.n_features_in_ = self.coef_.shape[0]

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ["coef_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_
