"""Estimator contract for the :mod:`repro.ml` substrate.

The contract intentionally mirrors scikit-learn's so that Sizey's model
pool (:mod:`repro.core.pool`) is generic over model classes and users can
plug in their own regressors ("easily extendable interface", paper §I).

An estimator is any class that

- declares all hyper-parameters as keyword arguments of ``__init__`` and
  stores them verbatim on ``self`` (no transformation in the constructor),
- learns state in ``fit`` and stores it in attributes with a trailing
  underscore (``coef_``, ``tree_``, ...),
- predicts with ``predict`` after being fitted.

This allows :func:`clone` to create unfitted copies by re-reading the
constructor parameters, and :func:`check_is_fitted` to detect fitted state
without any registry.
"""

from __future__ import annotations

import inspect
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = [
    "BaseEstimator",
    "RegressorMixin",
    "NotFittedError",
    "clone",
    "check_array",
    "check_X_y",
    "check_is_fitted",
    "check_random_state",
    "as_float_array",
]


class NotFittedError(RuntimeError):
    """Raised when ``predict`` (or similar) is called before ``fit``."""


def check_random_state(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed,
    or an existing generator (returned unchanged so callers can share a
    stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_float_array(a: Any) -> np.ndarray:
    """Convert ``a`` to a contiguous float64 array without copying when possible."""
    arr = np.ascontiguousarray(a, dtype=np.float64)
    return arr


def check_array(
    X: Any,
    *,
    ensure_2d: bool = True,
    allow_empty: bool = False,
    name: str = "X",
) -> np.ndarray:
    """Validate an input array: numeric, finite, correctly shaped.

    Parameters
    ----------
    X:
        Array-like input.
    ensure_2d:
        If true, a 1-D input is rejected (callers must reshape explicitly;
        silent promotion hides bugs in feature plumbing).
    allow_empty:
        Whether zero-sample inputs are accepted.
    name:
        Name used in error messages.
    """
    arr = np.asarray(X, dtype=np.float64)
    if ensure_2d:
        if arr.ndim == 1:
            raise ValueError(
                f"{name} must be 2-dimensional; got a 1-D array of shape "
                f"{arr.shape}. Reshape with X.reshape(-1, 1) for a single feature."
            )
        if arr.ndim != 2:
            raise ValueError(f"{name} must be 2-dimensional; got ndim={arr.ndim}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} is empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / target vector pair of matching length."""
    X = check_array(X)
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        y = y.reshape(-1)
    if not np.all(np.isfinite(y)):
        raise ValueError("y contains NaN or infinite values")
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y have inconsistent lengths: {X.shape[0]} != {y.shape[0]}"
        )
    return X, np.ascontiguousarray(y)


def check_is_fitted(estimator: Any, attributes: Iterable[str] | None = None) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` looks fitted.

    Fitted state is detected via trailing-underscore attributes, or the
    explicit ``attributes`` list when provided.
    """
    if attributes is not None:
        missing = [a for a in attributes if not hasattr(estimator, a)]
        if missing:
            raise NotFittedError(
                f"{type(estimator).__name__} is not fitted (missing {missing}); "
                "call fit() first"
            )
        return
    fitted = [
        k
        for k in vars(estimator)
        if k.endswith("_") and not k.startswith("_") and not k.endswith("__")
    ]
    if not fitted:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted; call fit() first"
        )


class BaseEstimator:
    """Base class providing parameter introspection and cloning."""

    @classmethod
    def _get_param_names(cls) -> list[str]:
        init = cls.__init__
        if init is object.__init__:
            return []
        sig = inspect.signature(init)
        names = []
        for name, param in sig.parameters.items():
            if name == "self":
                continue
            if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                raise TypeError(
                    f"{cls.__name__}.__init__ must declare explicit keyword "
                    "parameters (no *args/**kwargs) to support get_params"
                )
            names.append(name)
        return sorted(names)

    def get_params(self) -> dict[str, Any]:
        """Return hyper-parameters as a dict (constructor arguments only)."""
        return {name: getattr(self, name) for name in self._get_param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters; unknown names raise ``ValueError``."""
        valid = set(self._get_param_names())
        for key, value in params.items():
            if key not in valid:
                raise ValueError(
                    f"Invalid parameter {key!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, key, value)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator, *, overrides: Mapping[str, Any] | None = None):
    """Return an unfitted copy of ``estimator`` with the same hyper-parameters.

    ``overrides`` optionally replaces individual parameters in the copy,
    which is what grid search uses to instantiate candidates.
    """
    params = estimator.get_params()
    if overrides:
        unknown = set(overrides) - set(params)
        if unknown:
            raise ValueError(f"Unknown override parameters: {sorted(unknown)}")
        params.update(overrides)
    return type(estimator)(**params)


class RegressorMixin:
    """Mixin adding an R^2 ``score`` method to regressors."""

    def score(self, X: Any, y: Any) -> float:
        """Coefficient of determination R^2 of ``predict(X)`` against ``y``."""
        from repro.ml.metrics import r2_score

        X, y = check_X_y(X, y)
        return r2_score(y, self.predict(X))
