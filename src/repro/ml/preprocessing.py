"""Feature scalers.

Sizey's MLP and KNN models are scale-sensitive, so the model pool wraps
them with a scaler fitted online.  All scalers support ``partial_fit`` so
the incremental-update mode (paper §III-D) never re-reads history.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array, check_is_fitted

__all__ = ["StandardScaler", "MinMaxScaler", "RobustScaler"]


class StandardScaler(BaseEstimator):
    """Standardise features to zero mean and unit variance.

    Uses Welford/Chan parallel moments for ``partial_fit`` so online
    updates are O(d) per batch and numerically stable.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X) -> "StandardScaler":
        X = check_array(X)
        self.n_samples_seen_ = X.shape[0]
        self.mean_ = X.mean(axis=0)
        self.var_ = X.var(axis=0)
        self.scale_ = self._compute_scale()
        return self

    def partial_fit(self, X) -> "StandardScaler":
        X = check_array(X)
        if not hasattr(self, "n_samples_seen_"):
            return self.fit(X)
        n_a = self.n_samples_seen_
        n_b = X.shape[0]
        mean_b = X.mean(axis=0)
        var_b = X.var(axis=0)
        delta = mean_b - self.mean_
        n = n_a + n_b
        # Chan et al. parallel combination of means and variances.
        self.mean_ = self.mean_ + delta * (n_b / n)
        m_a = self.var_ * n_a
        m_b = var_b * n_b
        m2 = m_a + m_b + delta**2 * (n_a * n_b / n)
        self.var_ = m2 / n
        self.n_samples_seen_ = n
        self.scale_ = self._compute_scale()
        return self

    def _compute_scale(self) -> np.ndarray:
        std = np.sqrt(self.var_)
        # Constant features scale to 1.0 so transform is a no-op on them.
        return np.where(std > 0.0, std, 1.0)

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, ["mean_", "scale_"])
        X = check_array(X)
        out = X
        if self.with_mean:
            out = out - self.mean_
        if self.with_std:
            out = out / self.scale_
        return out

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        check_is_fitted(self, ["mean_", "scale_"])
        X = check_array(X)
        out = X
        if self.with_std:
            out = out * self.scale_
        if self.with_mean:
            out = out + self.mean_
        return out


class MinMaxScaler(BaseEstimator):
    """Scale features to a fixed range (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        self.feature_range = feature_range

    def fit(self, X) -> "MinMaxScaler":
        lo, hi = self.feature_range
        if lo >= hi:
            raise ValueError(f"invalid feature_range {self.feature_range}")
        X = check_array(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        self._update_scale()
        return self

    def partial_fit(self, X) -> "MinMaxScaler":
        X = check_array(X)
        if not hasattr(self, "data_min_"):
            return self.fit(X)
        self.data_min_ = np.minimum(self.data_min_, X.min(axis=0))
        self.data_max_ = np.maximum(self.data_max_, X.max(axis=0))
        self._update_scale()
        return self

    def _update_scale(self) -> None:
        lo, hi = self.feature_range
        rng = self.data_max_ - self.data_min_
        rng = np.where(rng > 0.0, rng, 1.0)
        self.scale_ = (hi - lo) / rng
        self.min_ = lo - self.data_min_ * self.scale_

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, ["scale_", "min_"])
        X = check_array(X)
        return X * self.scale_ + self.min_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        check_is_fitted(self, ["scale_", "min_"])
        X = check_array(X)
        return (X - self.min_) / self.scale_


class RobustScaler(BaseEstimator):
    """Scale using the median and inter-quartile range.

    Robust to the heavy-tailed peak-memory outliers common in workflow
    traces (Fig. 1 shows long upper tails for several task types).
    """

    def __init__(self, quantile_range: tuple[float, float] = (25.0, 75.0)) -> None:
        self.quantile_range = quantile_range

    def fit(self, X) -> "RobustScaler":
        q_lo, q_hi = self.quantile_range
        if not 0 <= q_lo < q_hi <= 100:
            raise ValueError(f"invalid quantile_range {self.quantile_range}")
        X = check_array(X)
        self.center_ = np.median(X, axis=0)
        lo = np.percentile(X, q_lo, axis=0)
        hi = np.percentile(X, q_hi, axis=0)
        iqr = hi - lo
        self.scale_ = np.where(iqr > 0.0, iqr, 1.0)
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, ["center_", "scale_"])
        X = check_array(X)
        return (X - self.center_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        check_is_fitted(self, ["center_", "scale_"])
        X = check_array(X)
        return X * self.scale_ + self.center_
