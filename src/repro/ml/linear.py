"""Linear models: ordinary least squares, ridge, and quantile regression.

The paper observes that many workflow tasks have a linear relationship
between input size and peak memory (Fig. 2, MarkDuplicates), which is why
a linear model is one of Sizey's four model classes.  Quantile regression
(pinball loss) is required by the Witt-Wastage baseline, which fits a set
of quantile regression lines and keeps the one with the least historical
wastage.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_is_fitted,
    check_X_y,
)

__all__ = ["LinearRegression", "RidgeRegression", "QuantileRegressor"]


def _add_intercept(X: np.ndarray) -> np.ndarray:
    return np.hstack([X, np.ones((X.shape[0], 1), dtype=np.float64)])


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares via :func:`numpy.linalg.lstsq`.

    ``lstsq`` (SVD-based) handles rank-deficient design matrices, which
    occur online whenever all observed inputs are identical — common in
    the first few task executions of a workflow.
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "LinearRegression":
        X, y = check_X_y(X, y)
        design = _add_intercept(X) if self.fit_intercept else X
        beta, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.coef_ = beta[:-1]
            self.intercept_ = float(beta[-1])
        else:
            self.coef_ = beta
            self.intercept_ = 0.0
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ["coef_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_


class RidgeRegression(BaseEstimator, RegressorMixin):
    """L2-regularised least squares solved via the normal equations.

    The ridge penalty stabilises the online fits when the provenance
    history is tiny (one or two points), where plain OLS extrapolates
    wildly — exactly the "large estimation outliers ... during the early
    training stages" the paper's efficiency score guards against.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "RidgeRegression":
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        X, y = check_X_y(X, y)
        n, d = X.shape
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(d)
            y_mean = 0.0
            Xc, yc = X, y
        # Normal equations with Tikhonov damping; solve is O(d^3) with d
        # tiny (a handful of task features), so this is the fast path.
        gram = Xc.T @ Xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        self.n_features_in_ = d
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ["coef_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_


class QuantileRegressor(BaseEstimator, RegressorMixin):
    """Linear quantile regression minimising the pinball loss.

    Solved as a linear program in the standard formulation::

        min  q * sum(u) + (1 - q) * sum(v)
        s.t. y - X beta = u - v,   u, v >= 0

    using :func:`scipy.optimize.linprog` (HiGHS).  For ``quantile=0.5``
    this is least-absolute-deviation regression.
    """

    def __init__(self, quantile: float = 0.5, fit_intercept: bool = True) -> None:
        self.quantile = quantile
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "QuantileRegressor":
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {self.quantile}")
        X, y = check_X_y(X, y)
        design = _add_intercept(X) if self.fit_intercept else X
        n, d = design.shape
        # Variables: [beta (free, d), u (n), v (n)]
        c = np.concatenate(
            [
                np.zeros(d),
                np.full(n, self.quantile),
                np.full(n, 1.0 - self.quantile),
            ]
        )
        a_eq = np.hstack([design, np.eye(n), -np.eye(n)])
        bounds = [(None, None)] * d + [(0.0, None)] * (2 * n)
        res = optimize.linprog(
            c, A_eq=a_eq, b_eq=y, bounds=bounds, method="highs"
        )
        if not res.success:  # pragma: no cover - HiGHS is robust on these LPs
            raise RuntimeError(f"quantile regression LP failed: {res.message}")
        beta = res.x[:d]
        if self.fit_intercept:
            self.coef_ = beta[:-1]
            self.intercept_ = float(beta[-1])
        else:
            self.coef_ = beta
            self.intercept_ = 0.0
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ["coef_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_
