"""k-nearest-neighbours regression.

The paper motivates KNN as the model class that lets "historical
observations similar to the task currently estimated ... influence the
resource prediction" (§II-B).  Workflow histories are small (tens to a
few thousand points, few features), so brute-force distance computation
— one vectorised matrix operation per query batch — beats tree indexes;
this matches the HPC guide's "vectorise, avoid Python loops" advice.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_is_fitted,
    check_X_y,
)

__all__ = ["KNeighborsRegressor"]


def _pairwise_distances(A: np.ndarray, B: np.ndarray, p: float) -> np.ndarray:
    """Minkowski distance matrix between rows of ``A`` (queries) and ``B``."""
    if p == 2.0:
        # ||a-b||^2 = ||a||^2 - 2 a.b + ||b||^2 ; clip tiny negatives from
        # cancellation before sqrt.
        sq = (
            np.sum(A * A, axis=1)[:, None]
            - 2.0 * (A @ B.T)
            + np.sum(B * B, axis=1)[None, :]
        )
        return np.sqrt(np.maximum(sq, 0.0))
    if p == 1.0:
        return np.abs(A[:, None, :] - B[None, :, :]).sum(axis=2)
    d = np.abs(A[:, None, :] - B[None, :, :]) ** p
    return d.sum(axis=2) ** (1.0 / p)


class KNeighborsRegressor(BaseEstimator, RegressorMixin):
    """Regression by (weighted) averaging of the k nearest training targets.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours; silently clipped to the training-set size at
        predict time so the model stays usable during the first online
        steps when history is shorter than ``k``.
    weights:
        ``"uniform"`` averages neighbours equally; ``"distance"`` weights
        by inverse distance (exact matches dominate, as in scikit-learn).
    p:
        Minkowski exponent (1 = Manhattan, 2 = Euclidean).
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "uniform",
        p: float = 2.0,
    ) -> None:
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.p = p

    def fit(self, X, y) -> "KNeighborsRegressor":
        if self.n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {self.n_neighbors}")
        if self.weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights {self.weights!r}")
        if self.p <= 0:
            raise ValueError(f"p must be positive, got {self.p}")
        X, y = check_X_y(X, y)
        # KNN is a lazy learner; fitting just stores (a copy of) the data.
        self.X_train_ = X.copy()
        self.y_train_ = y.copy()
        self.n_features_in_ = X.shape[1]
        return self

    def partial_fit(self, X, y) -> "KNeighborsRegressor":
        """Append new samples to the stored training set (online mode)."""
        if not hasattr(self, "X_train_"):
            return self.fit(X, y)
        X, y = check_X_y(X, y)
        if X.shape[1] != self.n_features_in_:
            raise ValueError("feature dimension changed between updates")
        self.X_train_ = np.vstack([self.X_train_, X])
        self.y_train_ = np.concatenate([self.y_train_, y])
        return self

    def kneighbors(self, X, n_neighbors: int | None = None):
        """Return (distances, indices) of the nearest training samples."""
        check_is_fitted(self, ["X_train_"])
        X = check_array(X)
        k = n_neighbors if n_neighbors is not None else self.n_neighbors
        k = min(k, self.X_train_.shape[0])
        dist = _pairwise_distances(X, self.X_train_, self.p)
        # argpartition gives the k smallest in O(n); sort only those k.
        idx = np.argpartition(dist, kth=k - 1, axis=1)[:, :k]
        row = np.arange(X.shape[0])[:, None]
        d_k = dist[row, idx]
        order = np.argsort(d_k, axis=1, kind="stable")
        return d_k[row, order], idx[row, order]

    def predict(self, X) -> np.ndarray:
        dist, idx = self.kneighbors(X)
        targets = self.y_train_[idx]
        if self.weights == "uniform":
            return targets.mean(axis=1)
        # Inverse-distance weighting; rows containing an exact match
        # average the exact matches only (scikit-learn convention).
        with np.errstate(divide="ignore"):
            w = 1.0 / dist
        exact = dist == 0.0
        has_exact = exact.any(axis=1)
        w[has_exact] = exact[has_exact].astype(np.float64)
        return (w * targets).sum(axis=1) / w.sum(axis=1)
