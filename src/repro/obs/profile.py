"""Kernel phase profiler: lap timers and per-phase accounting.

The profiler answers one question about the simulation kernel: where
does the event loop spend its wall time?  It partitions the kernel's
lifecycle into named phases (heap churn, arrivals, sizing waves,
placement scans, dispatch bookkeeping, completion/kill handling,
collector callbacks, outage management, finalization) and charges every
interval of wall time to exactly one phase, so per-phase totals sum to
~100% of the instrumented loop's wall time.

Design notes:

- :class:`PhaseTimer` is *lap-based*, not stack-based: ``lap(phase)``
  charges the time since the previous lap to ``phase`` and restarts the
  clock.  This makes instrumentation a straight-line sequence of calls
  between existing statements — no try/finally, no context-manager
  overhead on the hot path — and guarantees the intervals tile the
  timeline exactly.
- The kernel keeps profiling zero-overhead-when-off by branching once
  per ``run()`` into a mirrored, instrumented copy of the loop; the
  disabled path never even looks at the timer (see
  ``SimulationKernel._loop`` vs ``_loop_profiled``).
- :class:`KernelProfile` is a plain mergeable value object so sharded
  runs (``run_sharded``) can sum per-shard profiles into one.
- Checkpoint-safe: pickling a :class:`PhaseTimer` drops the in-flight
  lap origin, so a resumed run simply starts a fresh lap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["PHASE_ORDER", "KernelProfile", "PhaseStat", "PhaseTimer", "profile_to_dict"]

# Canonical display order for kernel phases.  Unknown phases sort after
# these, alphabetically.
PHASE_ORDER = (
    "seed",
    "heap",
    "wave",
    "arrival",
    "size",
    "place",
    "dispatch",
    "success",
    "kill",
    "outage",
    "collect",
    "finalize",
)


@dataclass
class PhaseStat:
    """Accumulated wall time and call count for one kernel phase."""

    calls: int = 0
    seconds: float = 0.0

    def merge(self, other: "PhaseStat") -> None:
        self.calls += other.calls
        self.seconds += other.seconds


@dataclass
class KernelProfile:
    """Per-phase wall-time accounting for one (or many merged) kernel runs.

    ``wall_seconds`` is the total wall time of the instrumented region
    (kernel ``run()``), while the phase stats partition the portion of
    it the timer observed; the two agree to within timer granularity.
    ``n_events`` counts heap events popped, so ``events_per_sec`` is
    directly comparable with the BENCH kernel-throughput metrics.
    """

    phases: dict[str, PhaseStat] = field(default_factory=dict)
    n_events: int = 0
    wall_seconds: float = 0.0
    n_runs: int = 1

    def stat(self, phase: str) -> PhaseStat:
        found = self.phases.get(phase)
        if found is None:
            found = self.phases[phase] = PhaseStat()
        return found

    @property
    def total_phase_seconds(self) -> float:
        return sum(stat.seconds for stat in self.phases.values())

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.n_events / self.wall_seconds

    def merge(self, other: "KernelProfile") -> None:
        for name, stat in other.phases.items():
            self.stat(name).merge(stat)
        self.n_events += other.n_events
        self.wall_seconds += other.wall_seconds
        self.n_runs += other.n_runs

    def sorted_phases(self) -> list[tuple[str, PhaseStat]]:
        rank = {name: i for i, name in enumerate(PHASE_ORDER)}
        fallback = len(PHASE_ORDER)
        return sorted(
            self.phases.items(),
            key=lambda item: (rank.get(item[0], fallback), item[0]),
        )

    def to_dict(self) -> dict:
        return profile_to_dict(self)

    def render_rows(self) -> list[dict]:
        """Table rows for CLI display: phase, calls, seconds, % of wall."""
        wall = self.wall_seconds
        rows = []
        for name, stat in self.sorted_phases():
            share = stat.seconds / wall if wall > 0.0 else 0.0
            rows.append(
                {
                    "phase": name,
                    "calls": stat.calls,
                    "seconds": stat.seconds,
                    "share": share,
                }
            )
        return rows


def profile_to_dict(profile: KernelProfile) -> dict:
    """Serialize a profile for ``--json`` output and CI assertions."""
    return {
        "phases": {
            name: {"calls": stat.calls, "seconds": stat.seconds}
            for name, stat in profile.sorted_phases()
        },
        "n_events": profile.n_events,
        "n_runs": profile.n_runs,
        "wall_seconds": profile.wall_seconds,
        "phase_seconds": profile.total_phase_seconds,
        "events_per_sec": profile.events_per_sec,
    }


class PhaseTimer:
    """Lap-based interval timer writing into a :class:`KernelProfile`.

    ``lap(phase)`` charges the interval since the previous ``start()``
    or ``lap()`` to ``phase``.  Consecutive laps therefore tile the
    instrumented region with no gaps or double counting.
    """

    __slots__ = ("profile", "_clock", "_last", "_run_started")

    def __init__(self, profile: KernelProfile, clock=time.perf_counter):
        self.profile = profile
        self._clock = clock
        self._last: float | None = None
        self._run_started: float | None = None

    def start(self) -> None:
        """Begin (or resume) an instrumented region."""
        now = self._clock()
        self._last = now
        if self._run_started is None:
            self._run_started = now

    def lap(self, phase: str) -> None:
        """Charge time since the previous lap to ``phase``."""
        now = self._clock()
        last = self._last
        self._last = now
        stat = self.profile.stat(phase)
        stat.calls += 1
        if last is not None:
            stat.seconds += now - last

    def stop(self) -> None:
        """End the instrumented region, folding it into ``wall_seconds``."""
        now = self._clock()
        if self._run_started is not None:
            self.profile.wall_seconds += now - self._run_started
        self._run_started = None
        self._last = None

    def __getstate__(self):
        # In-flight lap origins are wall-clock instants from a previous
        # process; a resumed run must start a fresh lap instead of
        # charging the downtime to a phase.
        return {"profile": self.profile}

    def __setstate__(self, state):
        self.profile = state["profile"]
        self._clock = time.perf_counter
        self._last = None
        self._run_started = None
