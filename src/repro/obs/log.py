"""Structured run logging on stdlib ``logging``.

All repro loggers live under the ``"repro"`` namespace and are silent
by default (the root ``repro`` logger gets a ``NullHandler``), so
importing the library never writes to stderr.  The CLI opts in with
``--log-level`` / ``--log-json`` via :func:`configure_logging`.

Context fields — ``run_id``, ``tenant``, ``shard`` — are carried in a
:mod:`contextvars` variable, so they survive thread hand-offs in the
serve executor and can be bound once around a whole run::

    log = get_logger(__name__)
    with log_context(run_id="grid-17", shard=3):
        log.info("kernel run finished", extra={"n_events": 12345})

With ``--log-json`` every record renders as one JSON object per line
(``ts``, ``level``, ``logger``, ``msg``, context fields, and any
``extra=`` keys); without it, a human-readable line with ``key=value``
suffixes.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import time

__all__ = [
    "CONTEXT_FIELDS",
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "log_context",
]

#: Context fields merged into every record (when bound).
CONTEXT_FIELDS = ("run_id", "tenant", "shard")

#: Attributes present on every vanilla LogRecord — anything else on a
#: record was supplied via ``extra=`` and belongs in the payload.
_RESERVED = set(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

_context: contextvars.ContextVar[dict] = contextvars.ContextVar(
    "repro_log_context", default={}
)


@contextlib.contextmanager
def log_context(**fields):
    """Bind context fields onto every record emitted inside the block."""
    merged = {**_context.get(), **fields}
    token = _context.set(merged)
    try:
        yield
    finally:
        _context.reset(token)


class ContextFilter(logging.Filter):
    """Stamp the bound context fields onto each record."""

    def filter(self, record: logging.LogRecord) -> bool:
        for key, value in _context.get().items():
            if not hasattr(record, key):
                setattr(record, key, value)
        return True


def _extra_fields(record: logging.LogRecord) -> dict:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RESERVED and not key.startswith("_")
    }


class JsonFormatter(logging.Formatter):
    """One JSON object per line; ``extra=`` keys become payload fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload.update(_extra_fields(record))
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TextFormatter(logging.Formatter):
    """Human-readable line with ``key=value`` suffixes for extras."""

    default_msec_format = "%s.%03d"

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{self.formatTime(record)} {record.levelname.lower():7s} "
            f"{record.name}: {record.getMessage()}"
        )
        extras = _extra_fields(record)
        if extras:
            suffix = " ".join(f"{k}={v}" for k, v in extras.items())
            base = f"{base} [{suffix}]"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base

    def converter(self, timestamp):  # local time is fine for a CLI tool
        return time.localtime(timestamp)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (idempotent)."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure_logging(
    level: str | int = "warning",
    json_mode: bool = False,
    stream=None,
) -> logging.Logger:
    """Install a handler on the root ``repro`` logger (replacing ours).

    Called by the CLI from ``--log-level`` / ``--log-json``; safe to
    call repeatedly (tests reconfigure freely).  Returns the root
    ``repro`` logger.
    """
    root = logging.getLogger("repro")
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter() if json_mode else TextFormatter())
    handler.addFilter(ContextFilter())
    for old in list(root.handlers):
        root.removeHandler(old)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


# Library default: silent unless configured.
logging.getLogger("repro").addHandler(logging.NullHandler())
