"""Chrome ``trace_event`` export for kernel runs.

:class:`TraceCollector` is an ordinary composable
:class:`~repro.sim.kernel.collectors.MetricsCollector`: it observes a
run through the standard callbacks and writes a Chrome trace JSON file
(``{"traceEvents": [...]}``) in :meth:`contribute`.  Load the file in
``about:tracing`` or https://ui.perfetto.dev.

Track layout:

- one *process* per cluster node (``pid = node_id``), named
  ``node<id>`` via ``M`` metadata events;
- within a node, *thread* 0 is the outage lane and threads 1..k are
  task occupancy lanes — concurrent attempts on the same node get
  distinct lanes, so occupancy reads like a Gantt chart;
- every attempt is a ``ph="X"`` complete event spanning its occupied
  interval, categorized ``success`` / ``kill`` / ``preempt``;
- kills, resizes (re-dispatch after a kill), and preemptions add
  ``ph="i"`` instant markers on the same lane;
- a synthetic *cluster* process (``pid = CLUSTER_PID``) carries a
  ``ph="C"`` ``queue_depth`` counter updated on every ready/dispatch
  transition.

Timestamps are microseconds of simulated time (1 simulated hour =
3.6e9 µs), so the viewer's clock reads as real cluster time.

For million-task runs pass ``limit=N`` to keep only the most recent
``N`` events in a bounded ring buffer (metadata is exempt, so node
names always survive eviction).
"""

from __future__ import annotations

import json
from collections import deque
from heapq import heappop, heappush

from repro.sim.kernel.collectors import BaseCollector

__all__ = ["CLUSTER_PID", "US_PER_HOUR", "TraceCollector"]

#: Simulated hours → trace microseconds.
US_PER_HOUR = 3_600_000_000.0
#: Synthetic pid for cluster-wide tracks (queue depth).
CLUSTER_PID = 1_000_000
#: Reserved tid for outage spans on each node process.
OUTAGE_TID = 0

_CAT_COLOR = {
    "success": "good",
    "kill": "terrible",
    "preempt": "bad",
}


class TraceCollector(BaseCollector):
    """Collect kernel lifecycle events as Chrome ``trace_event`` JSON.

    Parameters
    ----------
    path:
        Output file written when the run finishes (``contribute``).
        ``None`` keeps the events in memory only (useful in tests via
        :meth:`trace_events`).
    limit:
        Optional ring-buffer bound on the number of retained
        (non-metadata) events; the oldest events are evicted first.
    """

    def __init__(self, path: str | None = None, limit: int | None = None):
        if limit is not None and limit <= 0:
            raise ValueError(f"trace limit must be positive, got {limit}")
        self.path = str(path) if path is not None else None
        self.limit = limit
        self._events: deque = deque(maxlen=limit)
        self._meta: list[dict] = []
        # Per-node occupancy lanes: free lane numbers (min-heap) and the
        # next never-used lane; a state's lane is held from dispatch to
        # release so concurrent attempts never share a track.
        self._free_lanes: dict[int, list[int]] = {}
        self._next_lane: dict[int, int] = {}
        self._lane_of: dict[int, tuple[int, int]] = {}  # id(state) -> (pid, tid)
        # on_release stashes the span; the immediately-following outcome
        # callback (success/failure/preempt) emits it with its category.
        self._pending: dict[int, tuple[int, int, float, float]] = {}
        self._outage_start: dict[int, float] = {}
        self._queue_depth = 0

    # ------------------------------------------------------------------
    # kernel callbacks
    # ------------------------------------------------------------------
    def on_run_start(self, manager) -> None:
        self._meta = [
            self._process_meta(CLUSTER_PID, "cluster"),
        ]
        for node in manager.nodes:
            self._meta.append(
                self._process_meta(node.node_id, f"node{node.node_id}")
            )
        self._counter(0.0)

    def on_ready(self, state, now) -> None:
        self._queue_depth += 1
        self._counter(now)

    def on_dispatch(self, state, now, node, wait_hours) -> None:
        self._queue_depth -= 1
        self._counter(now)
        lane = self._acquire_lane(node.node_id)
        self._lane_of[id(state)] = (node.node_id, lane)
        if state.attempt > 1:
            self._instant(
                "resize",
                now,
                node.node_id,
                lane,
                {
                    "instance_id": state.inst.instance_id,
                    "attempt": state.attempt,
                    "allocated_mb": state.running[2],
                },
            )

    def on_release(self, state, now, node, allocated_mb, occupied_hours) -> None:
        key = id(state)
        pid, lane = self._lane_of.pop(key, (node.node_id, 0))
        self._release_lane(pid, lane)
        stale = self._pending.pop(key, None)
        if stale is not None:  # pragma: no cover - defensive
            self._span(state, "attempt", *stale)
        self._pending[key] = (pid, lane, now - occupied_hours, occupied_hours)

    def on_task_success(self, state, now, allocated_mb) -> None:
        self._finish_span(state, "success")

    def on_task_failure(self, state, now, allocated_mb, occupied_hours) -> None:
        pid, lane, start, _ = self._pending.get(
            id(state), (0, 0, now - occupied_hours, occupied_hours)
        )
        self._finish_span(state, "kill")
        self._instant(
            "kill",
            now,
            pid,
            lane,
            {
                "instance_id": state.inst.instance_id,
                "attempt": state.attempt,
                "allocated_mb": allocated_mb,
                "peak_memory_mb": state.inst.peak_memory_mb,
            },
        )

    def on_preempt(self, state, now) -> None:
        pid, lane, _, _ = self._pending.get(id(state), (0, 0, now, 0.0))
        self._finish_span(state, "preempt")
        self._instant(
            "preempt",
            now,
            pid,
            lane,
            {"instance_id": state.inst.instance_id},
        )

    def on_outage(self, node_id, now, active) -> None:
        if active:
            self._outage_start[node_id] = now
        else:
            start = self._outage_start.pop(node_id, now)
            self._events.append(
                {
                    "name": "outage",
                    "cat": "outage",
                    "ph": "X",
                    "ts": start * US_PER_HOUR,
                    "dur": (now - start) * US_PER_HOUR,
                    "pid": node_id,
                    "tid": OUTAGE_TID,
                    "cname": "grey",
                }
            )

    def contribute(self, result) -> None:
        if self.path is not None:
            with open(self.path, "w") as fh:
                json.dump(self.trace_json(), fh)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def trace_events(self) -> list[dict]:
        """All retained events, metadata first (the on-disk order)."""
        return [*self._meta, *self._events]

    def trace_json(self) -> dict:
        return {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {"tool": "repro", "time_unit": "1 hour = 3.6e9 us"},
        }

    # ------------------------------------------------------------------
    # event builders
    # ------------------------------------------------------------------
    def _finish_span(self, state, cat: str) -> None:
        pending = self._pending.pop(id(state), None)
        if pending is None:  # pragma: no cover - defensive
            return
        self._span(state, cat, *pending)

    def _span(
        self, state, cat: str, pid: int, tid: int, start: float, dur: float
    ) -> None:
        inst = state.inst
        event = {
            "name": inst.task_type.name,
            "cat": cat,
            "ph": "X",
            "ts": start * US_PER_HOUR,
            "dur": dur * US_PER_HOUR,
            "pid": pid,
            "tid": tid,
            "args": {
                "instance_id": inst.instance_id,
                "attempt": state.attempt,
                "peak_memory_mb": inst.peak_memory_mb,
            },
        }
        color = _CAT_COLOR.get(cat)
        if color is not None:
            event["cname"] = color
        self._events.append(event)

    def _instant(
        self, name: str, now: float, pid: int, tid: int, args: dict
    ) -> None:
        self._events.append(
            {
                "name": name,
                "cat": name,
                "ph": "i",
                "s": "t",
                "ts": now * US_PER_HOUR,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )

    def _counter(self, now: float) -> None:
        self._events.append(
            {
                "name": "queue_depth",
                "ph": "C",
                "ts": now * US_PER_HOUR,
                "pid": CLUSTER_PID,
                "args": {"tasks": self._queue_depth},
            }
        )

    @staticmethod
    def _process_meta(pid: int, name: str) -> dict:
        return {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": name},
        }

    # ------------------------------------------------------------------
    # lane bookkeeping
    # ------------------------------------------------------------------
    def _acquire_lane(self, node_id: int) -> int:
        free = self._free_lanes.get(node_id)
        if free:
            return heappop(free)
        lane = self._next_lane.get(node_id, OUTAGE_TID + 1)
        self._next_lane[node_id] = lane + 1
        return lane

    def _release_lane(self, node_id: int, lane: int) -> None:
        if lane == OUTAGE_TID:  # pragma: no cover - defensive
            return
        heappush(self._free_lanes.setdefault(node_id, []), lane)
