"""Prometheus-style serve metrics: latency histograms + text exposition.

Two halves:

- :class:`LatencyHistogram` — fixed log-spaced buckets
  (:data:`LATENCY_BUCKETS_S`, seconds) with exact cumulative counts for
  the Prometheus exposition, plus a deterministic
  :class:`~repro.sim.sketches.QuantileSketch` feeding the p50/p95/p99
  millisecond quantiles reported in the JSON ``/metrics`` payload and
  the loadgen report.  Mergeable, so per-worker histograms can be
  summed.
- :func:`render_prometheus` — renders the server's ``/metrics`` JSON
  payload as the Prometheus text exposition format
  (``text/plain; version=0.0.4``), served behind
  ``GET /metrics?format=prometheus``.

Both sides of the dual-format endpoint read the *same* snapshot, so a
scrape and a JSON poll can never disagree about a counter.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.sim.sketches import QuantileSketch

__all__ = [
    "LATENCY_BUCKETS_S",
    "LatencyHistogram",
    "render_prometheus",
    "escape_label",
]

#: Shared latency bucket upper bounds in seconds (plus an implicit
#: +Inf).  Log-spaced 0.5 ms – 2.5 s: model-pool predictions sit in the
#: low milliseconds, cold-tenant creation and big observe batches in the
#: tens-to-hundreds.  Serve and loadgen report the same buckets.
LATENCY_BUCKETS_S = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

_MS_QUANTILES = ((0.5, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms"))


class LatencyHistogram:
    """Cumulative-bucket latency histogram over :data:`LATENCY_BUCKETS_S`.

    ``observe`` takes seconds.  Not thread-safe on its own — the serve
    layer updates it under the owning session's lock.
    """

    __slots__ = ("counts", "count", "sum_s", "sketch")

    def __init__(self) -> None:
        # counts[i] is the number of observations in bucket i (bounded
        # above by LATENCY_BUCKETS_S[i]); the final slot is +Inf.
        self.counts = [0] * (len(LATENCY_BUCKETS_S) + 1)
        self.count = 0
        self.sum_s = 0.0
        self.sketch = QuantileSketch()

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.counts[bisect_left(LATENCY_BUCKETS_S, seconds)] += 1
        self.count += 1
        self.sum_s += seconds
        self.sketch.add(seconds * 1000.0)

    def merge(self, other: "LatencyHistogram") -> None:
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum_s += other.sum_s
        self.sketch.merge(other.sketch)

    def cumulative_buckets(self) -> list[tuple[float | None, int]]:
        """``(le_seconds, cumulative_count)`` pairs; ``None`` is +Inf."""
        out: list[tuple[float | None, int]] = []
        running = 0
        for bound, n in zip(LATENCY_BUCKETS_S, self.counts):
            running += n
            out.append((bound, running))
        out.append((None, running + self.counts[-1]))
        return out

    def snapshot(self) -> dict:
        """JSON-facing view: buckets, totals, and millisecond quantiles."""
        snap = {
            "count": self.count,
            "sum_s": self.sum_s,
            "mean_ms": (
                self.sum_s / self.count * 1000.0 if self.count else 0.0
            ),
            "buckets": [
                [bound, cum] for bound, cum in self.cumulative_buckets()
            ],
        }
        for q, key in _MS_QUANTILES:
            snap[key] = float(self.sketch.quantile(q)) if self.count else 0.0
        return snap


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _fmt(value) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def header(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: dict | None, value) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{escape_label(val)}"' for key, val in labels.items()
            )
            self.lines.append(f"{name}{{{rendered}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(payload: dict) -> str:
    """Render the ``/metrics`` JSON payload as Prometheus text exposition.

    Deterministic: endpoints and tenants are emitted in sorted order,
    histogram ops in (predict, observe) order.
    """
    w = _Writer()
    server = payload.get("server", {})
    registry = payload.get("registry", {})
    tenants = registry.get("tenants", {})

    w.header(
        "repro_serve_uptime_seconds", "gauge", "Seconds since server start."
    )
    w.sample("repro_serve_uptime_seconds", None, server.get("uptime_s", 0.0))

    w.header(
        "repro_serve_requests_total",
        "counter",
        "Requests dispatched, by endpoint.",
    )
    for endpoint in sorted(server.get("requests", {})):
        w.sample(
            "repro_serve_requests_total",
            {"endpoint": endpoint},
            server["requests"][endpoint],
        )

    w.header(
        "repro_serve_errors_total",
        "counter",
        "Requests answered with status >= 400.",
    )
    w.sample("repro_serve_errors_total", None, server.get("errors", 0))

    w.header("repro_serve_tenants", "gauge", "Resident tenant sessions.")
    w.sample("repro_serve_tenants", None, registry.get("n_tenants", 0))

    w.header(
        "repro_serve_tenant_evictions_total",
        "counter",
        "Tenant sessions evicted by the LRU capacity bound.",
    )
    w.sample(
        "repro_serve_tenant_evictions_total",
        None,
        registry.get("evictions", 0),
    )

    w.header(
        "repro_serve_predictions_total",
        "counter",
        "Task sizings served, by tenant.",
    )
    for name in sorted(tenants):
        w.sample(
            "repro_serve_predictions_total",
            {"tenant": name},
            tenants[name].get("n_predictions", 0),
        )

    w.header(
        "repro_serve_observations_total",
        "counter",
        "Peak-memory observations ingested, by tenant.",
    )
    for name in sorted(tenants):
        w.sample(
            "repro_serve_observations_total",
            {"tenant": name},
            tenants[name].get("n_observations", 0),
        )

    w.header(
        "repro_serve_preset_fallbacks_total",
        "counter",
        "Predictions answered by the user preset, by tenant.",
    )
    for name in sorted(tenants):
        w.sample(
            "repro_serve_preset_fallbacks_total",
            {"tenant": name},
            tenants[name].get("preset_fallbacks", 0),
        )

    w.header(
        "repro_serve_wastage_gbh",
        "gauge",
        "Accumulated memory wastage (GB*h), by tenant.",
    )
    for name in sorted(tenants):
        w.sample(
            "repro_serve_wastage_gbh",
            {"tenant": name},
            tenants[name].get("wastage", {}).get("total_gbh", 0.0),
        )

    w.header(
        "repro_serve_latency_seconds",
        "histogram",
        "Request handling latency, by tenant and operation.",
    )
    for name in sorted(tenants):
        latency = tenants[name].get("latency", {})
        for op in ("predict", "observe"):
            hist = latency.get(op)
            if hist is None:
                continue
            labels = {"tenant": name, "op": op}
            for bound, cum in hist.get("buckets", []):
                le = "+Inf" if bound is None else _fmt(bound)
                w.sample(
                    "repro_serve_latency_seconds_bucket",
                    {**labels, "le": le},
                    cum,
                )
            w.sample(
                "repro_serve_latency_seconds_sum",
                labels,
                hist.get("sum_s", 0.0),
            )
            w.sample(
                "repro_serve_latency_seconds_count",
                labels,
                hist.get("count", 0),
            )
    return w.text()
