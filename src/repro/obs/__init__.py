"""Observability: kernel phase profiling, trace export, logs, metrics.

The ``repro.obs`` package is the always-available, zero-overhead-when-off
observability layer spanning the simulation kernel, the serve subsystem,
and the CLI:

- :mod:`repro.obs.profile` — the kernel **phase profiler**: a
  :class:`~repro.obs.profile.PhaseTimer` seam around the kernel's
  size→place→run→kill/resize lifecycle, accumulating per-phase
  wall-time / call-count counters into a
  :class:`~repro.obs.profile.KernelProfile` attached to
  :class:`~repro.sim.results.SimulationResult` (and merged across
  shards).  Enable with ``profile=True`` on the kernel / backend /
  ``OnlineSimulator`` or via ``repro profile`` on the CLI.
- :mod:`repro.obs.trace` — a composable
  :class:`~repro.obs.trace.TraceCollector` emitting Chrome
  ``trace_event`` JSON (load it in ``about:tracing`` or
  https://ui.perfetto.dev) with per-node tracks for task occupancy,
  kills, resizes, outages, and a cluster-wide queue-depth counter.
  ``repro simulate --trace out.json`` on the CLI.
- :mod:`repro.obs.log` — structured run logging on stdlib ``logging``:
  a JSON formatter, ``run_id`` / ``tenant`` / ``shard`` context fields
  via :func:`~repro.obs.log.log_context`, and the ``--log-level`` /
  ``--log-json`` CLI flags.
- :mod:`repro.obs.metrics` — Prometheus-style serve metrics: fixed
  log-spaced latency histograms
  (:class:`~repro.obs.metrics.LatencyHistogram`) backed by the
  deterministic :class:`~repro.sim.sketches.QuantileSketch`, and the
  text exposition renderer behind ``GET /metrics?format=prometheus``.

Everything here is measurement: enabling any of it never changes
simulation results (pinned bit-for-bit by the golden regression tests).
"""

from __future__ import annotations

__all__ = [
    "KernelProfile",
    "PhaseTimer",
    "TraceCollector",
    "LatencyHistogram",
    "configure_logging",
    "get_logger",
    "log_context",
]


def __getattr__(name: str):
    # Lazy re-exports: the kernel imports repro.obs.profile on its hot
    # construction path, and must not drag in the trace/metrics modules
    # (and their collector/sketch imports) with it.
    if name in ("KernelProfile", "PhaseTimer"):
        from repro.obs import profile

        return getattr(profile, name)
    if name == "TraceCollector":
        from repro.obs.trace import TraceCollector

        return TraceCollector
    if name == "LatencyHistogram":
        from repro.obs.metrics import LatencyHistogram

        return LatencyHistogram
    if name in ("configure_logging", "get_logger", "log_context"):
        from repro.obs import log

        return getattr(log, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
