"""The simulation-backend seam: protocol, registry, shared helpers.

A backend owns the execution semantics of one trace replay — how tasks
move through time and occupy the cluster — while the predictor contract,
wastage accounting, and result schema stay identical across backends.
Two implementations ship:

- :class:`~repro.sim.backends.replay.ReplayBackend` (``"replay"``): the
  paper's serialized per-task loop, bit-for-bit faithful to the original
  engine.
- :class:`~repro.sim.backends.event.EventDrivenBackend` (``"event"``): a
  discrete-event engine where tasks concurrently occupy nodes, exposing
  queueing wait, makespan, and per-node utilization.

Third-party backends register via :func:`register_backend` and are then
addressable by name from :class:`~repro.sim.engine.OnlineSimulator`,
``run_grid``, and the CLI.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.cluster.manager import ResourceManager
from repro.sim.errors import UnschedulableTaskError
from repro.sim.interface import MemoryPredictor
from repro.sim.results import SimulationResult
from repro.workflow.task import TaskInstance, WorkflowTrace

__all__ = [
    "SimulatorBackend",
    "register_backend",
    "backend_names",
    "resolve_backend",
    "clamp_allocation_checked",
    "MAX_ATTEMPTS",
]

#: Hard cap on attempts per task; doubling from 1 MB exceeds any node
#: capacity well before this, so hitting it indicates a predictor bug
#: (genuinely impossible tasks are caught earlier and raise the typed
#: :class:`UnschedulableTaskError` instead).
MAX_ATTEMPTS = 30


@runtime_checkable
class SimulatorBackend(Protocol):
    """What :class:`~repro.sim.engine.OnlineSimulator` delegates to.

    A backend replays ``trace`` against ``predictor`` on ``manager``
    under the given ``time_to_failure`` and returns a fully populated
    :class:`~repro.sim.results.SimulationResult`.  Implementations must
    call the predictor's ``begin_trace``/``end_trace`` lifecycle hooks
    and reset the manager's bookkeeping at the start of each run.
    """

    #: Registry / CLI name of the backend.
    name: str

    def run(
        self,
        trace: WorkflowTrace,
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
    ) -> SimulationResult:
        ...


_REGISTRY: dict[str, Callable[[], SimulatorBackend]] = {}


def register_backend(name: str, factory: Callable[[], SimulatorBackend]) -> None:
    """Make ``factory()`` addressable as ``backend=name`` everywhere."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def backend_names() -> tuple[str, ...]:
    """Registered backend names (CLI choices), in registration order."""
    return tuple(_REGISTRY)


def resolve_backend(backend: str | SimulatorBackend) -> SimulatorBackend:
    """Turn a registry name or a ready-made backend into an instance."""
    if isinstance(backend, str):
        try:
            return _REGISTRY[backend]()
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"registered: {sorted(_REGISTRY)}"
            ) from None
    if not isinstance(backend, SimulatorBackend):
        raise TypeError(
            f"backend must be a name or SimulatorBackend, got {type(backend)!r}"
        )
    return backend


def clamp_allocation_checked(
    manager: ResourceManager, inst: TaskInstance, request_mb: float
) -> float:
    """Clamp a request to the largest node's capacity, rejecting
    impossible tasks.

    A task whose *true* peak exceeds the capacity of the largest node
    that could ever host it can never succeed no matter how the retry
    policy grows the allocation; detecting that at clamp time turns a
    futile doubling loop into an immediate, typed
    :class:`UnschedulableTaskError`.  On a heterogeneous cluster the
    bound is the *largest* node — a task too big for the small nodes but
    fitting the big ones is schedulable.
    """
    if inst.peak_memory_mb > manager.max_allocation_mb:
        raise UnschedulableTaskError(
            task_type=inst.task_type.key,
            instance_id=inst.instance_id,
            peak_memory_mb=inst.peak_memory_mb,
            capacity_mb=manager.max_allocation_mb,
        )
    return manager.clamp_allocation(request_mb)
