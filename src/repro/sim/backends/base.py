"""The simulation-backend seam: protocol, registry, shared helpers.

A backend owns the execution semantics of one trace replay — how tasks
move through time and occupy the cluster — while the predictor contract,
wastage accounting, and result schema stay identical across backends.
Two implementations ship:

- :class:`~repro.sim.backends.replay.ReplayBackend` (``"replay"``): the
  paper's serialized per-task loop, bit-for-bit faithful to the original
  engine.
- :class:`~repro.sim.backends.event.EventDrivenBackend` (``"event"``): a
  discrete-event engine where tasks concurrently occupy nodes, exposing
  queueing wait, makespan, and per-node utilization.

Third-party backends register via :func:`register_backend` and are then
addressable by name from :class:`~repro.sim.engine.OnlineSimulator`,
``run_grid``, and the CLI.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.cluster.manager import ResourceManager
from repro.sim.errors import UnschedulableTaskError
from repro.sim.interface import MemoryPredictor
from repro.sim.results import ClusterMetrics, SimulationResult
from repro.workflow.task import TaskInstance, WorkflowTrace

__all__ = [
    "SimulatorBackend",
    "register_backend",
    "backend_names",
    "resolve_backend",
    "clamp_allocation_checked",
    "build_cluster_metrics",
    "size_first_attempts",
    "MAX_ATTEMPTS",
]

#: Hard cap on attempts per task; doubling from 1 MB exceeds any node
#: capacity well before this, so hitting it indicates a predictor bug
#: (genuinely impossible tasks are caught earlier and raise the typed
#: :class:`UnschedulableTaskError` instead).
MAX_ATTEMPTS = 30


@runtime_checkable
class SimulatorBackend(Protocol):
    """What :class:`~repro.sim.engine.OnlineSimulator` delegates to.

    A backend replays a workload against ``predictor`` on ``manager``
    under the given ``time_to_failure`` and returns a fully populated
    :class:`~repro.sim.results.SimulationResult`.  ``workload`` is
    anything :func:`~repro.workload.base.as_source` accepts — a
    :class:`~repro.workload.base.WorkloadSource`, a materialized
    :class:`~repro.workflow.task.WorkflowTrace`, or a workload spec
    string — and implementations pull tasks from it lazily.
    Implementations must call the predictor's
    ``begin_trace``/``end_trace`` lifecycle hooks and reset the
    manager's bookkeeping at the start of each run.
    """

    #: Registry / CLI name of the backend.
    name: str

    def run(
        self,
        workload: "object | WorkflowTrace",
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
    ) -> SimulationResult:
        ...


_REGISTRY: dict[str, Callable[[], SimulatorBackend]] = {}


def register_backend(name: str, factory: Callable[[], SimulatorBackend]) -> None:
    """Make ``factory()`` addressable as ``backend=name`` everywhere."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def backend_names() -> tuple[str, ...]:
    """Registered backend names (CLI choices), in registration order."""
    return tuple(_REGISTRY)


def resolve_backend(backend: str | SimulatorBackend) -> SimulatorBackend:
    """Turn a registry name or a ready-made backend into an instance."""
    if isinstance(backend, str):
        try:
            return _REGISTRY[backend]()
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"registered: {sorted(_REGISTRY)}"
            ) from None
    if not isinstance(backend, SimulatorBackend):
        raise TypeError(
            f"backend must be a name or SimulatorBackend, got {type(backend)!r}"
        )
    return backend


def clamp_allocation_checked(
    manager: ResourceManager, inst: TaskInstance, request_mb: float
) -> float:
    """Clamp a request to the largest node's capacity, rejecting
    impossible tasks.

    A task whose *true* peak exceeds the capacity of the largest node
    that could ever host it can never succeed no matter how the retry
    policy grows the allocation; detecting that at clamp time turns a
    futile doubling loop into an immediate, typed
    :class:`UnschedulableTaskError`.  On a heterogeneous cluster the
    bound is the *largest* node — a task too big for the small nodes but
    fitting the big ones is schedulable.
    """
    if inst.peak_memory_mb > manager.max_allocation_mb:
        raise UnschedulableTaskError(
            task_type=inst.task_type.key,
            instance_id=inst.instance_id,
            peak_memory_mb=inst.peak_memory_mb,
            capacity_mb=manager.max_allocation_mb,
        )
    return manager.clamp_allocation(request_mb)


def size_first_attempts(
    predictor: MemoryPredictor, manager: ResourceManager, states
) -> None:
    """Size a wave of unsized task states with one ``predict_batch``.

    ``states`` is any sequence of state objects exposing
    ``submission``/``inst``/``allocation``/``first_allocation`` — the
    simulation kernel calls this for every dispatch wave, so every mode
    (flat and DAG alike) gets the vectorized one-query-per-model-slot
    path.
    """
    allocations = predictor.predict_batch([st.submission for st in states])
    # Inlined clamp_allocation_checked: this loop runs once per task on
    # the kernel's sizing hot path, and the two calls per state were
    # measurable.  Semantics are identical — same bound, same typed
    # error for impossible tasks.
    cap = manager._max_allocation_mb
    for st, allocation in zip(states, allocations):
        inst = st.inst
        if inst.peak_memory_mb > cap:
            raise UnschedulableTaskError(
                task_type=inst.task_type.key,
                instance_id=inst.instance_id,
                peak_memory_mb=inst.peak_memory_mb,
                capacity_mb=cap,
            )
        allocation = float(allocation)
        if allocation < 1.0:
            allocation = 1.0
        if allocation > cap:
            allocation = cap
        st.allocation = allocation
        st.first_allocation = allocation


def build_cluster_metrics(
    manager: ResourceManager,
    makespan: float,
    queue_waits: list[float],
    busy_mbh: dict[int, float],
    timelines: dict[int, list[tuple[float, float]]],
) -> ClusterMetrics:
    """Assemble :class:`ClusterMetrics` from an event engine's ledgers.

    Used by the kernel's
    :class:`~repro.sim.kernel.collectors.ClusterMetricsCollector`, so
    every mode reports utilization with the same convention: each
    node's busy memory-hours divided by *that node's* capacity times the
    makespan — on a heterogeneous cluster a shared denominator would let
    a small node report < 100% while fully busy (or a big node > 100%).
    """
    mb_per_gb = 1024.0
    busy_gbh = {n: v / mb_per_gb for n, v in busy_mbh.items()}
    capacity_gb = {
        n: mb / mb_per_gb for n, mb in manager.node_capacities_mb().items()
    }
    utilization = {
        n: (v / (capacity_gb[n] * makespan) if makespan > 0 else 0.0)
        for n, v in busy_gbh.items()
    }
    return ClusterMetrics(
        makespan_hours=makespan,
        total_queue_wait_hours=float(sum(queue_waits)),
        mean_queue_wait_hours=(
            float(sum(queue_waits) / len(queue_waits)) if queue_waits else 0.0
        ),
        max_queue_wait_hours=(
            float(max(queue_waits)) if queue_waits else 0.0
        ),
        node_busy_memory_gbh=busy_gbh,
        node_utilization=utilization,
        node_timelines=timelines,
        node_capacity_gb=capacity_gb,
    )
