"""The serialized replay backend — the paper's original semantics.

Replays a workflow trace in submission order against one predictor, one
task at a time:

1. Build the predictor-visible :class:`TaskSubmission` (Phase 1).
2. Ask the predictor for an allocation (Phase 2).
3. Execute under strict limits (assumption A3) with the configured
   time-to-failure; on failure, record wastage, inform the predictor,
   get a retry allocation, repeat.
4. On success, record wastage and feed the completion record back for
   online learning (Phase 3).

The retry loop is owned by the simulator so all methods are charged
identically for failures.  This loop is the seed engine's, extracted
verbatim: for a fixed trace and predictor it reproduces the original
``SimulationResult`` exactly (same wastage, failures, prediction logs).
"""

from __future__ import annotations

from repro.cluster.accounting import WastageLedger
from repro.cluster.manager import ResourceManager
from repro.provenance.records import TaskRecord
from repro.sim.backends.base import MAX_ATTEMPTS, clamp_allocation_checked
from repro.sim.interface import MemoryPredictor, TaskSubmission, TraceContext
from repro.sim.results import PredictionLog, SimulationResult
from repro.workflow.task import WorkflowTrace
from repro.workload.base import WorkloadSource, as_source

__all__ = ["ReplayBackend"]


class ReplayBackend:
    """One-task-at-a-time replay (paper fidelity; no concurrency).

    Parameters
    ----------
    doubling_factor:
        Escalation floor when a predictor's retry proposal does not grow
        (paper §II-E: "continuously doubled").  The default of 2.0 keeps
        the seed loop bit-for-bit identical; it is configurable so the
        replay and event backends can share one factor and stay
        attempt-for-attempt identical.
    """

    name = "replay"

    def __init__(self, doubling_factor: float = 2.0) -> None:
        if doubling_factor <= 1.0:
            raise ValueError(
                f"doubling_factor must exceed 1, got {doubling_factor}"
            )
        self.doubling_factor = doubling_factor

    def run(
        self,
        workload: "WorkloadSource | WorkflowTrace | str",
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
    ) -> SimulationResult:
        source = as_source(workload)
        manager.release_all()
        predictor.begin_trace(
            TraceContext(
                workflow=source.workflow,
                # Streaming sources cannot know their length without
                # exhausting themselves; -1 tells the predictor the
                # count is unknown (this loop is one-task-at-a-time, so
                # it never needs to materialize the stream).
                n_tasks=-1 if source.n_tasks is None else source.n_tasks,
                time_to_failure=time_to_failure,
                backend=self.name,
            )
        )
        ledger = WastageLedger()
        logs: list[PredictionLog] = []

        for timestamp, inst in enumerate(source.iter_tasks()):
            submission = TaskSubmission.from_instance(inst, timestamp)
            allocation = clamp_allocation_checked(
                manager, inst, float(predictor.predict(submission))
            )
            first_allocation = allocation
            attempt = 1
            while True:
                if attempt > MAX_ATTEMPTS:
                    raise RuntimeError(
                        f"task {inst.instance_id} ({inst.task_type.key}) did "
                        f"not finish within {MAX_ATTEMPTS} attempts; "
                        f"last allocation {allocation:.0f} MB, "
                        f"peak {inst.peak_memory_mb:.0f} MB"
                    )
                verdict = manager.execute_attempt(
                    allocated_mb=allocation,
                    true_peak_mb=inst.peak_memory_mb,
                    runtime_hours=inst.runtime_hours,
                    time_to_failure=time_to_failure,
                )
                if verdict.success:
                    ledger.record_success(
                        task_type=inst.task_type.name,
                        workflow=inst.task_type.workflow,
                        instance_id=inst.instance_id,
                        attempt=attempt,
                        allocated_mb=verdict.allocated_mb,
                        peak_memory_mb=inst.peak_memory_mb,
                        runtime_hours=inst.runtime_hours,
                    )
                    predictor.observe(
                        TaskRecord(
                            task_type=inst.task_type.name,
                            workflow=inst.task_type.workflow,
                            machine=inst.machine,
                            timestamp=timestamp,
                            input_size_mb=inst.input_size_mb,
                            peak_memory_mb=inst.peak_memory_mb,
                            runtime_hours=inst.runtime_hours,
                            success=True,
                            attempt=attempt,
                            allocated_mb=verdict.allocated_mb,
                            instance_id=inst.instance_id,
                        )
                    )
                    break

                ledger.record_failure(
                    task_type=inst.task_type.name,
                    workflow=inst.task_type.workflow,
                    instance_id=inst.instance_id,
                    attempt=attempt,
                    allocated_mb=verdict.allocated_mb,
                    peak_memory_mb=inst.peak_memory_mb,
                    time_to_failure_hours=verdict.occupied_hours,
                )
                # The failure record's "peak" is the exceeded limit — a
                # lower bound, flagged via success=False.
                predictor.observe(
                    TaskRecord(
                        task_type=inst.task_type.name,
                        workflow=inst.task_type.workflow,
                        machine=inst.machine,
                        timestamp=timestamp,
                        input_size_mb=inst.input_size_mb,
                        peak_memory_mb=verdict.allocated_mb,
                        runtime_hours=verdict.occupied_hours,
                        success=False,
                        attempt=attempt,
                        allocated_mb=verdict.allocated_mb,
                        instance_id=inst.instance_id,
                    )
                )
                next_allocation = float(
                    predictor.on_failure(submission, verdict.allocated_mb, attempt)
                )
                # Retries must strictly grow or the loop cannot terminate;
                # a non-growing proposal falls back to the doubling factor.
                if next_allocation <= verdict.allocated_mb:
                    next_allocation = verdict.allocated_mb * self.doubling_factor
                allocation = clamp_allocation_checked(
                    manager, inst, next_allocation
                )
                attempt += 1

            logs.append(
                PredictionLog(
                    instance_id=inst.instance_id,
                    task_type=inst.task_type.name,
                    workflow=inst.task_type.workflow,
                    timestamp=timestamp,
                    input_size_mb=inst.input_size_mb,
                    true_peak_mb=inst.peak_memory_mb,
                    true_runtime_hours=inst.runtime_hours,
                    first_allocation_mb=first_allocation,
                    final_allocation_mb=allocation,
                    n_attempts=attempt,
                )
            )

        predictor.end_trace()
        return SimulationResult(
            workflow=source.workflow,
            method=predictor.name,
            time_to_failure=time_to_failure,
            ledger=ledger,
            predictions=logs,
        )
