"""Pluggable simulation backends.

- :mod:`repro.sim.backends.base` -- the :class:`SimulatorBackend`
  protocol, the backend registry, and shared helpers (attempt cap,
  checked allocation clamping).
- :mod:`repro.sim.backends.replay` -- the paper's serialized per-task
  replay loop (``backend="replay"``, the default).
- :mod:`repro.sim.backends.event` -- the flat-stream driver over the
  unified simulation kernel (:mod:`repro.sim.kernel`): real node
  concurrency, FCFS queueing, cluster metrics, and node-drain
  scenarios (``backend="event"``).
"""

from repro.sim.backends.base import (
    SimulatorBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.sim.backends.event import EventDrivenBackend
from repro.sim.backends.replay import ReplayBackend

register_backend("replay", ReplayBackend)
register_backend("event", EventDrivenBackend)

__all__ = [
    "SimulatorBackend",
    "ReplayBackend",
    "EventDrivenBackend",
    "register_backend",
    "backend_names",
    "resolve_backend",
]
