"""Flat-stream event backend: a thin driver over the simulation kernel.

The replay backend executes one task at a time, which makes
cluster-level quantities — queueing delay, makespan, node utilization —
unobservable.  This backend runs the same predictor contract through the
unified discrete-event kernel (:mod:`repro.sim.kernel`) instead:

- every task *arrives* at the time assigned by a pluggable
  :class:`~repro.sim.arrivals.ArrivalModel` — a fixed inter-arrival
  gap (the default of 0 models a batch submission of the whole trace),
  a Poisson process, or bursty scatter-gather submissions, with all
  stochastic draws taken from the backend's seeded RNG;
- arrived tasks wait in a FCFS queue ordered by submission index;
- the kernel's scheduling pass sizes each dispatch wave via
  :meth:`~repro.sim.interface.MemoryPredictor.predict_batch` (in chunks
  of ``prediction_chunk``), places onto
  :class:`~repro.cluster.manager.ResourceManager` nodes via the
  manager's placement policy, kills under-allocated tasks at
  ``time_to_failure`` of their runtime, and re-queues them re-sized
  with the doubling-factor escalation floor;
- :class:`~repro.sim.kernel.collectors.ClusterMetricsCollector` records
  every dispatch's queue wait, per-node allocation timelines, and the
  makespan into :class:`~repro.sim.results.ClusterMetrics`;
- scheduled node drains (``node_outage="start:duration:node"``) pause
  placement on a node and preempt its running tasks — a kernel-level
  scenario shared verbatim with the DAG engine.

Wastage accounting is attempt-for-attempt identical to the replay
backend; for a predictor that does not learn online the two backends
produce the same ledger totals, while the event backend additionally
reports the cluster-level metrics.

All of the execution semantics live in
:class:`~repro.sim.kernel.core.SimulationKernel`; this module only
contributes the *flat* notion of arrival and priority via
:class:`FlatStreamDriver`.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import Iterable, Sequence

import numpy as np

from repro.cluster.manager import ResourceManager
from repro.sim.arrivals import (
    ArrivalModel,
    FixedArrivals,
    iter_arrival_times,
    parse_arrival,
)
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.sim.kernel.collectors import ClusterMetricsCollector
from repro.sim.kernel.core import SimulationKernel, TaskState
from repro.sim.kernel.events import ARRIVAL
from repro.sim.kernel.outage import NodeOutage, parse_node_outages
from repro.sim.results import SimulationResult
from repro.workflow.task import WorkflowTrace
from repro.workload.base import WorkloadSource

__all__ = ["EventDrivenBackend", "FlatStreamDriver"]


class _FlatQueue:
    """FCFS ready queue ordered by submission index.

    Besides the main heap, a plain append-list tracks queued states that
    still need sizing, consumed through a cursor — O(1) per push and per
    pop, no heap sift at all.  The list *is* index-sorted because of two
    kernel invariants: states enter the queue unsized only on arrival
    (kill/preempt requeues are always already sized), and flat arrivals
    are handled in strictly increasing submission-index order (the event
    calendar pops same-time arrivals in schedule order).  Every state
    :meth:`unsized` returns is sized immediately by the caller, so
    consumed entries never come back; an entry whose state was sized as
    part of an earlier wave is simply skipped.  The consumed prefix is
    compacted once it dominates the list, keeping memory O(pending).
    """

    __slots__ = ("_heap", "_unsized", "_upos", "order")

    def __init__(self) -> None:
        self._heap: list[tuple[int, TaskState]] = []
        self._unsized: list[TaskState] = []
        self._upos = 0
        #: Kernel-internal contract (shared with ``_DagQueue``): the live
        #: heap list itself.  Entries sort FCFS and end with the state,
        #: so the kernel peeks ``order[0][-1]`` and pops with ``heappop``
        #: instead of calling :meth:`head`/:meth:`pop` per dispatch.
        self.order = self._heap

    def push(self, state: TaskState) -> None:
        heapq.heappush(self._heap, (state.index, state))
        if state.allocation is None:
            self._unsized.append(state)

    def head(self) -> TaskState:
        return self._heap[0][1]

    def pop(self) -> TaskState:
        return heapq.heappop(self._heap)[1]

    def unsized(self, limit: int) -> list[TaskState]:
        wave: list[TaskState] = []
        index = self._unsized
        pos = self._upos
        n = len(index)
        while pos < n and len(wave) < limit:
            state = index[pos]
            pos += 1
            if state.allocation is None:
                wave.append(state)
        if pos > 512 and pos * 2 > n:
            del index[:pos]
            pos = 0
        self._upos = pos
        return wave

    def requeue(self, state: TaskState) -> None:
        # A re-queued task re-enters at its original priority.
        self.push(state)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class FlatStreamDriver:
    """Kernel driver for a flat, pre-ordered task stream.

    Nothing is released on success — the stream has no dependencies,
    only submission times.  The schedule comes from the arrival model's
    vectorized ``sample(n, rng)`` for sized sources and the
    draw-for-draw-identical ``times(rng)`` iterator for unsized
    (streaming) ones — the same schedule either way, so trace files and
    streams replay identically.

    **Scheduled arrivals** (sized sources, PR 10): the whole (sharded)
    arrival timetable is bulk-loaded into the event calendar's columnar
    scheduled lane at seed time — no payloads, no per-event heap sift —
    and the task states themselves are prebuilt in blocks of
    :data:`_BLOCK` as arrivals drain, assembled straight from the
    workload iterator with ``object.__new__`` + direct slot stores.
    Each popped arrival takes the next prebuilt state; stream order *is*
    schedule order, which is what the old one-pending-arrival lazy
    machinery relied on anyway.  A custom arrival model whose sampled
    times are not non-decreasing (violating the
    :class:`~repro.sim.arrivals.ArrivalModel` contract) is caught by
    ``schedule_batch``'s validation and falls back to eager per-event
    pushes through the dynamic lane, which re-sorts them.

    Sharding (``shard`` of ``shards``, sized sources only): only tasks
    whose global submission index is congruent to ``shard`` are
    materialized — every kept task has exactly the arrival time and
    index it has in the unsharded run.
    """

    #: Flat streams have no dependency graph: success never releases new
    #: work, so the kernel skips the per-success driver call entirely.
    releases_on_success = False

    #: Kernel contract: a payload-less (scheduled-lane) arrival may be
    #: inlined by the loop as ``_block`` pop (refilling via
    #: :meth:`_refill`) + arrival/queued stamp + FCFS-heap push +
    #: ``queue._unsized`` append — the exact body of
    #: :meth:`on_arrival`.  A subclass that overrides :meth:`on_arrival`
    #: or swaps the queue type must reset this to ``False``.
    inline_arrival = True

    #: Task states prebuilt per refill of the scheduled-arrival path.
    _BLOCK = 256

    def __init__(
        self,
        arrival: ArrivalModel,
        seed: int,
        *,
        shard: int = 0,
        shards: int = 1,
    ) -> None:
        if shards < 1 or not 0 <= shard < shards:
            raise ValueError(
                f"shard must satisfy 0 <= shard < shards, got "
                f"shard={shard} shards={shards}"
            )
        self.arrival = arrival
        self.rng_seed = seed
        self.shard = shard
        self.shards = shards
        self.queue = _FlatQueue()
        self.n_tasks = 0
        #: Shard-local count of tasks pulled from the source so far
        #: (including those still waiting in ``_block``).
        self._consumed = 0
        #: Prebuilt task states in *reverse* schedule order (pop() takes
        #: the next arrival); refilled from the source in _BLOCK chunks.
        self._block: list[TaskState] = []
        #: Live shard-sliced task iterator; never pickled — rebuilt
        #: deterministically from ``_consumed`` after a resume.
        self._tasks: "Iterable | None" = None
        self._kernel: SimulationKernel | None = None

    def seed(self, kernel: SimulationKernel) -> None:
        source = kernel.source
        n = source.n_tasks
        if n is not None:
            self._kernel = kernel
            self.n_tasks = len(range(self.shard, n, self.shards))
            # One vectorized draw for the full schedule (n floats, not n
            # events) so sharded and resumed runs all see the exact
            # arrival times of the unsharded run.
            rng = np.random.default_rng(self.rng_seed)
            schedule = np.ascontiguousarray(
                self.arrival.sample(n, rng), dtype=np.float64
            )
            try:
                kernel.events.schedule_batch(
                    schedule[self.shard :: self.shards], ARRIVAL
                )
            except ValueError:
                # Contract-violating custom model (unsorted times):
                # push each arrival through the dynamic lane instead,
                # whose heap restores the time order.
                times = schedule.tolist()
                events = kernel.events
                shard, shards = self.shard, self.shards
                for k, inst in enumerate(source.iter_tasks()):
                    if k % shards != shard:
                        continue
                    state = TaskState(
                        inst=inst,
                        submission=TaskSubmission.from_instance(inst, k),
                        index=k,
                        arrival=times[k],
                    )
                    events.push(state.arrival, ARRIVAL, state)
                self._consumed = self.n_tasks
            return
        if self.shards != 1:
            raise ValueError(
                "sharded flat runs require a sized workload source "
                f"(source {source.name!r} does not report n_tasks)"
            )
        rng = np.random.default_rng(self.rng_seed)
        try:
            times = iter_arrival_times(self.arrival, rng)
            tasks = source.iter_tasks()
        except ValueError:
            # The model cannot stream: materialize to learn the
            # count, then schedule exactly as the sized path would.
            materialized = list(source.iter_tasks())
            times = iter(self.arrival.sample(len(materialized), rng))
            tasks = iter(materialized)
        count = 0
        for timestamp, (inst, arrival_time) in enumerate(zip(tasks, times)):
            state = TaskState(
                inst=inst,
                submission=TaskSubmission.from_instance(inst, timestamp),
                index=timestamp,
                arrival=float(arrival_time),
            )
            kernel.events.push(state.arrival, ARRIVAL, state)
            count += 1
        self.n_tasks = count

    # ------------------------------------------------------------------
    # batched state assembly (sized sources, scheduled arrivals)
    # ------------------------------------------------------------------
    def _refill(self) -> None:
        """Prebuild the next block of task states from the source.

        One ``islice`` drain per block instead of one generator resume
        per arrival; submission/state assembly bypasses the dataclass
        constructors with ``object.__new__`` + direct slot stores (all
        non-identity fields are defaults).  ``arrival`` is stamped when
        the scheduled event pops — the popped timestamp *is* this
        task's sampled arrival time.
        """
        it = self._tasks
        if it is None:
            assert self._kernel is not None
            it = self._tasks = islice(
                self._kernel.source.iter_tasks(),
                self.shard + self._consumed * self.shards,
                None,
                self.shards,
            )
        index = self.shard + self._consumed * self.shards
        shards = self.shards
        new = object.__new__
        block: list[TaskState] = []
        append = block.append
        for inst in islice(it, self._BLOCK):
            task_type = inst.task_type
            sub = new(TaskSubmission)
            # Direct __dict__ bind: one dict build instead of
            # build-then-merge (frozen dataclass, no slots).
            sub.__dict__.update(
                task_type=task_type.name,
                workflow=task_type.workflow,
                machine=inst.machine,
                instance_id=inst.instance_id,
                input_size_mb=inst.input_size_mb,
                preset_memory_mb=task_type.preset_memory_mb,
                timestamp=index,
            )
            state = new(TaskState)
            state.inst = inst
            state.submission = sub
            state.index = index
            state.arrival = 0.0
            state.wi = None
            state.allocation = None
            state.first_allocation = None
            state.attempt = 0
            state.queued_at = 0.0
            state.running = None
            state.dispatch_gen = 0
            append(state)
            index += shards
        self._consumed += len(block)
        block.reverse()
        self._block = block

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_tasks"] = None  # live iterator; rebuilt from _consumed
        return state

    def on_arrival(self, payload: object, now: float) -> Iterable[TaskState]:
        if payload is None:
            # Scheduled-lane arrival: take the next prebuilt state.
            block = self._block
            if not block:
                self._refill()
                block = self._block
                if not block:
                    # Source yielded fewer tasks than n_tasks promised —
                    # match the old zip() truncation semantics.
                    return ()
            state = block.pop()
            state.arrival = now
        else:
            state = payload
        # Inlined _FlatQueue.push; fresh arrivals are always unsized and
        # arrive in increasing index order, so the unsized list append
        # keeps it sorted.
        queue = self.queue
        heapq.heappush(queue._heap, (state.index, state))
        queue._unsized.append(state)
        return (state,)

    def on_success(self, state: TaskState, now: float) -> Iterable[TaskState]:
        return ()

    def finish(self, kernel: SimulationKernel) -> None:
        pass


class EventDrivenBackend:
    """Concurrent execution on a shared cluster with FCFS queueing.

    Parameters
    ----------
    arrival_interval_hours:
        Gap between consecutive submissions (back-compat shorthand for
        ``arrival=FixedArrivals(...)``).  0 (default) submits the whole
        trace at once — a batch workload whose concurrency is limited
        purely by cluster memory.  Ignored when ``arrival`` is given.
    prediction_chunk:
        How many queued tasks are sized per ``predict_batch`` call.  The
        scheduler only requests predictions as its dispatch window
        reaches unsized tasks, so tasks deep in the queue are predicted
        *after* earlier completions were observed — preserving online
        learning while still batching model queries.
    arrival:
        Arrival model: a spec string (``"fixed:0.25"``,
        ``"poisson:0.5"``, ``"bursty:8x0.5"``) or an
        :class:`~repro.sim.arrivals.ArrivalModel` instance.
    seed:
        Seed of the backend's private RNG, which drives every stochastic
        arrival draw — a fixed seed makes the whole simulation
        deterministic.
    doubling_factor:
        Escalation floor after a kill: when the predictor's retry
        proposal does not grow, the next allocation is
        ``failed * doubling_factor`` — the same factor
        :class:`~repro.core.failure.FailureHandler` uses, so replay and
        event runs stay attempt-for-attempt identical.
    dag:
        Switches the backend into DAG-aware scheduling
        (:mod:`repro.sched`): tasks are released only when their DAG
        predecessors' instances succeeded.  ``"trace"`` uses the
        :attr:`~repro.workflow.task.WorkflowTrace.dag` exported by the
        trace generator, ``"linear"`` chains task types in
        first-appearance order, or pass a
        :class:`~repro.workflow.dag.WorkflowDAG` directly.  ``None``
        (default) keeps the flat pre-ordered task stream.
    workflow_arrival:
        Multi-workflow injection (implies DAG-aware scheduling, using
        the trace's DAG unless ``dag`` is given): a spec such as ``"4"``,
        ``"4@poisson:2"``, ``"6@bursty:2x0.5@tenants:3"`` or a
        :class:`~repro.sim.arrivals.WorkflowArrivals` — whole workflow
        instances from different tenants contending for one cluster.
    node_outage:
        Scheduled node drain windows — one spec string
        (``"start:duration:node"``), a
        :class:`~repro.sim.kernel.outage.NodeOutage`, or a list of
        either.  Applied identically in flat and DAG modes.
    stream_collectors:
        Streaming-collector mode: collectors keep online aggregates and
        quantile sketches instead of per-task logs, timelines, and
        outcome lists — memory stays bounded at million-task scale.  The
        result carries a ``summary`` (identical to the exact run's) but
        no raw ``predictions`` / ``cluster`` / ``workflows`` sections.
    spill:
        Optional JSONL path; every prediction log is appended there in
        completion order, with or without ``stream_collectors``.
    shard / shards:
        Run only slice ``shard`` of ``shards`` of the workload — flat
        tasks by global submission index, DAG workflow instances by copy
        number — with arrival schedules and ids matching the unsharded
        run.  The sharded grid runner (:mod:`repro.sim.runner`) merges
        the per-shard summaries.
    profile:
        Enable the kernel phase profiler (:mod:`repro.obs.profile`):
        ``result.profile`` carries per-phase wall-time/call counters.
        Measurement only — never changes results.
    trace / trace_limit:
        Write a Chrome ``trace_event`` JSON timeline of the run to the
        ``trace`` path (:class:`~repro.obs.trace.TraceCollector`);
        ``trace_limit`` bounds the retained events with a ring buffer
        for million-task runs.
    """

    name = "event"

    def __init__(
        self,
        arrival_interval_hours: float = 0.0,
        prediction_chunk: int = 32,
        arrival: str | ArrivalModel | None = None,
        seed: int = 0,
        doubling_factor: float = 2.0,
        dag: object | None = None,
        workflow_arrival: object | None = None,
        node_outage: str | NodeOutage | Sequence[str | NodeOutage] | None = None,
        stream_collectors: bool = False,
        spill: str | None = None,
        shard: int = 0,
        shards: int = 1,
        profile: bool = False,
        trace: str | None = None,
        trace_limit: int | None = None,
    ) -> None:
        if arrival_interval_hours < 0:
            raise ValueError(
                f"arrival_interval_hours must be >= 0, got {arrival_interval_hours}"
            )
        if prediction_chunk < 1:
            raise ValueError(
                f"prediction_chunk must be >= 1, got {prediction_chunk}"
            )
        if doubling_factor <= 1.0:
            raise ValueError(
                f"doubling_factor must exceed 1, got {doubling_factor}"
            )
        if shards < 1 or not 0 <= shard < shards:
            raise ValueError(
                f"shard must satisfy 0 <= shard < shards, got "
                f"shard={shard} shards={shards}"
            )
        if arrival is None:
            arrival = FixedArrivals(arrival_interval_hours)
        self.arrival = parse_arrival(arrival)
        self.arrival_interval_hours = arrival_interval_hours
        self.prediction_chunk = prediction_chunk
        self.seed = seed
        self.doubling_factor = doubling_factor
        self.stream_collectors = stream_collectors
        self.spill = spill
        self.shard = shard
        self.shards = shards
        self.profile = profile
        self.trace = trace
        self.trace_limit = trace_limit
        self.dag = dag
        if workflow_arrival is not None:
            from repro.sim.arrivals import parse_workflow_arrival

            workflow_arrival = parse_workflow_arrival(workflow_arrival)
        self.workflow_arrival = workflow_arrival
        self.node_outages = parse_node_outages(node_outage)
        if dag is not None or workflow_arrival is not None:
            # DAG scheduling releases tasks as dependencies resolve;
            # a task-level arrival model would be silently ignored, so
            # reject the combination instead of picking a winner.
            trivial_arrival = (
                isinstance(self.arrival, FixedArrivals)
                and self.arrival.interval_hours == 0.0
            )
            if not trivial_arrival:
                raise ValueError(
                    "dag/workflow_arrival replace the per-task arrival "
                    "model; drop arrival/arrival_interval_hours (workflow "
                    "arrivals carry their own fixed/poisson/bursty spec)"
                )

    def with_workflow_options(
        self,
        dag: object | None = None,
        workflow_arrival: object | None = None,
        node_outage: object | None = None,
    ) -> "EventDrivenBackend":
        """A copy of this backend with DAG-scheduling options applied.

        The seam :class:`~repro.sim.engine.OnlineSimulator` and the grid
        runner use to layer ``dag=`` / ``workflow_arrival=`` /
        ``node_outage=`` on top of a backend resolved by name, without
        touching its other settings.
        """
        return EventDrivenBackend(
            arrival_interval_hours=self.arrival_interval_hours,
            prediction_chunk=self.prediction_chunk,
            arrival=self.arrival,
            seed=self.seed,
            doubling_factor=self.doubling_factor,
            dag=dag if dag is not None else self.dag,
            workflow_arrival=(
                workflow_arrival
                if workflow_arrival is not None
                else self.workflow_arrival
            ),
            node_outage=(
                node_outage if node_outage is not None else self.node_outages
            ),
            stream_collectors=self.stream_collectors,
            spill=self.spill,
            shard=self.shard,
            shards=self.shards,
            profile=self.profile,
            trace=self.trace,
            trace_limit=self.trace_limit,
        )

    def with_scale_options(
        self,
        stream_collectors: bool | None = None,
        spill: str | None = None,
        shard: int | None = None,
        shards: int | None = None,
    ) -> "EventDrivenBackend":
        """A copy of this backend with scale-out options applied.

        The seam the grid runner and CLI use to layer
        ``--stream-collectors`` / ``--shards`` onto a backend resolved
        by name, mirroring :meth:`with_workflow_options`.
        """
        return EventDrivenBackend(
            arrival_interval_hours=self.arrival_interval_hours,
            prediction_chunk=self.prediction_chunk,
            arrival=self.arrival,
            seed=self.seed,
            doubling_factor=self.doubling_factor,
            dag=self.dag,
            workflow_arrival=self.workflow_arrival,
            node_outage=self.node_outages,
            stream_collectors=(
                stream_collectors
                if stream_collectors is not None
                else self.stream_collectors
            ),
            spill=spill if spill is not None else self.spill,
            shard=shard if shard is not None else self.shard,
            shards=shards if shards is not None else self.shards,
            profile=self.profile,
            trace=self.trace,
            trace_limit=self.trace_limit,
        )

    def with_obs_options(
        self,
        profile: bool | None = None,
        trace: str | None = None,
        trace_limit: int | None = None,
    ) -> "EventDrivenBackend":
        """A copy of this backend with observability options applied.

        The seam :class:`~repro.sim.engine.OnlineSimulator` and the CLI
        use to layer ``--profile`` / ``--trace`` onto a backend resolved
        by name, mirroring :meth:`with_workflow_options`.
        """
        return EventDrivenBackend(
            arrival_interval_hours=self.arrival_interval_hours,
            prediction_chunk=self.prediction_chunk,
            arrival=self.arrival,
            seed=self.seed,
            doubling_factor=self.doubling_factor,
            dag=self.dag,
            workflow_arrival=self.workflow_arrival,
            node_outage=self.node_outages,
            stream_collectors=self.stream_collectors,
            spill=self.spill,
            shard=self.shard,
            shards=self.shards,
            profile=profile if profile is not None else self.profile,
            trace=trace if trace is not None else self.trace,
            trace_limit=(
                trace_limit if trace_limit is not None else self.trace_limit
            ),
        )

    # ------------------------------------------------------------------
    def build_kernel(
        self,
        workload: "WorkloadSource | WorkflowTrace | str",
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
    ) -> SimulationKernel:
        """Assemble (but do not run) this backend's configured kernel.

        The checkpoint seam: callers that need pause/resume drive the
        returned kernel via
        :func:`repro.sim.kernel.checkpoint.drive_kernel` instead of
        calling :meth:`run`.
        """
        if self.dag is not None or self.workflow_arrival is not None:
            # DAG-aware scheduling plugs its own driver into the same
            # kernel; the flat pre-ordered stream below stays
            # byte-identical without it.
            from repro.sched.engine import build_dag_kernel

            return build_dag_kernel(
                workload,
                predictor,
                manager,
                time_to_failure,
                dag=self.dag,
                workflow_arrival=self.workflow_arrival,
                prediction_chunk=self.prediction_chunk,
                doubling_factor=self.doubling_factor,
                seed=self.seed,
                backend_name=self.name,
                node_outage=self.node_outages,
                stream_collectors=self.stream_collectors,
                spill=self.spill,
                shard=self.shard,
                shards=self.shards,
                profile=self.profile,
                trace=self.trace,
                trace_limit=self.trace_limit,
            )
        collectors: list = [
            ClusterMetricsCollector(stream=self.stream_collectors)
        ]
        if self.trace is not None:
            from repro.obs.trace import TraceCollector

            collectors.append(
                TraceCollector(self.trace, limit=self.trace_limit)
            )
        return SimulationKernel(
            workload,
            predictor,
            manager,
            time_to_failure,
            driver=FlatStreamDriver(
                self.arrival, self.seed, shard=self.shard, shards=self.shards
            ),
            collectors=collectors,
            prediction_chunk=self.prediction_chunk,
            doubling_factor=self.doubling_factor,
            outages=self.node_outages,
            backend_name=self.name,
            stream_collectors=self.stream_collectors,
            spill=self.spill,
            profile=self.profile,
        )

    def run(
        self,
        workload: "WorkloadSource | WorkflowTrace | str",
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
    ) -> SimulationResult:
        result = self.build_kernel(
            workload, predictor, manager, time_to_failure
        ).run()
        assert result is not None
        return result
