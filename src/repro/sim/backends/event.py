"""Discrete-event simulation backend: tasks genuinely overlap on nodes.

The replay backend executes one task at a time, which makes cluster-level
quantities — queueing delay, makespan, node utilization — unobservable.
This backend runs the same predictor contract through a discrete-event
engine instead:

- every task *arrives* at the time assigned by a pluggable
  :class:`~repro.sim.arrivals.ArrivalModel` — a fixed inter-arrival
  gap (the default of 0 models a batch submission of the whole trace),
  a Poisson process, or bursty scatter-gather submissions, with all
  stochastic draws taken from the backend's seeded RNG;
- arrived tasks wait in a FCFS queue ordered by submission index;
- a scheduling pass after each event batch sizes waiting tasks via
  :meth:`~repro.sim.interface.MemoryPredictor.predict_batch` (in chunks
  of ``prediction_chunk``, so later tasks still benefit from online
  learning) and places them onto
  :class:`~repro.cluster.manager.ResourceManager` nodes via the
  manager's :class:`~repro.cluster.policies.PlacementPolicy`
  (first-fit, best-fit, or worst-fit), where they occupy their
  allocation for their whole runtime;
- an under-allocated task is killed at ``time_to_failure`` of its
  runtime, charged to the wastage ledger exactly like in replay mode,
  re-sized via ``on_failure`` (with the configured doubling factor as
  the escalation floor), and re-queued at its original priority;
- every dispatch's queue wait, per-node allocation timelines, and the
  makespan are recorded into
  :class:`~repro.sim.results.ClusterMetrics`, with utilization computed
  against each node's own capacity (heterogeneous clusters differ per
  node).

Wastage accounting is attempt-for-attempt identical to the replay
backend; for a predictor that does not learn online the two backends
produce the same ledger totals, while the event backend additionally
reports the cluster-level metrics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.cluster.accounting import WastageLedger
from repro.cluster.machine import Machine
from repro.cluster.manager import ResourceManager
from repro.provenance.records import TaskRecord
from repro.sim.arrivals import ArrivalModel, FixedArrivals, parse_arrival
from repro.sim.backends.base import MAX_ATTEMPTS, clamp_allocation_checked
from repro.sim.interface import MemoryPredictor, TaskSubmission, TraceContext
from repro.sim.results import ClusterMetrics, PredictionLog, SimulationResult
from repro.workflow.task import TaskInstance, WorkflowTrace

__all__ = ["EventDrivenBackend"]

#: Event kinds, ordered so that completions at time t free their memory
#: before arrivals at t are queued and the scheduling pass runs.
_COMPLETION = 0
_ARRIVAL = 1


@dataclass
class _TaskState:
    """Mutable per-task bookkeeping of the event engine."""

    inst: TaskInstance
    submission: TaskSubmission
    index: int
    arrival: float
    allocation: float | None = None
    first_allocation: float | None = None
    attempt: int = 0
    #: When the task last entered the ready queue (arrival or re-queue
    #: after a kill); every dispatch charges ``now - queued_at`` as wait.
    queued_at: float = 0.0
    #: (node, task_id, allocated_mb, start_time) while executing.
    running: tuple[Machine, int, float, float] | None = None

    def __lt__(self, other: "_TaskState") -> bool:  # heap tie-breaker
        return self.index < other.index


class EventDrivenBackend:
    """Concurrent execution on a shared cluster with FCFS queueing.

    Parameters
    ----------
    arrival_interval_hours:
        Gap between consecutive submissions (back-compat shorthand for
        ``arrival=FixedArrivals(...)``).  0 (default) submits the whole
        trace at once — a batch workload whose concurrency is limited
        purely by cluster memory.  Ignored when ``arrival`` is given.
    prediction_chunk:
        How many queued tasks are sized per ``predict_batch`` call.  The
        scheduler only requests predictions as its dispatch window
        reaches unsized tasks, so tasks deep in the queue are predicted
        *after* earlier completions were observed — preserving online
        learning while still batching model queries.
    arrival:
        Arrival model: a spec string (``"fixed:0.25"``,
        ``"poisson:0.5"``, ``"bursty:8x0.5"``) or an
        :class:`~repro.sim.arrivals.ArrivalModel` instance.
    seed:
        Seed of the backend's private RNG, which drives every stochastic
        arrival draw — a fixed seed makes the whole simulation
        deterministic.
    doubling_factor:
        Escalation floor after a kill: when the predictor's retry
        proposal does not grow, the next allocation is
        ``failed * doubling_factor`` — the same factor
        :class:`~repro.core.failure.FailureHandler` uses, so replay and
        event runs stay attempt-for-attempt identical.
    """

    name = "event"

    def __init__(
        self,
        arrival_interval_hours: float = 0.0,
        prediction_chunk: int = 32,
        arrival: str | ArrivalModel | None = None,
        seed: int = 0,
        doubling_factor: float = 2.0,
    ) -> None:
        if arrival_interval_hours < 0:
            raise ValueError(
                f"arrival_interval_hours must be >= 0, got {arrival_interval_hours}"
            )
        if prediction_chunk < 1:
            raise ValueError(
                f"prediction_chunk must be >= 1, got {prediction_chunk}"
            )
        if doubling_factor <= 1.0:
            raise ValueError(
                f"doubling_factor must exceed 1, got {doubling_factor}"
            )
        if arrival is None:
            arrival = FixedArrivals(arrival_interval_hours)
        self.arrival = parse_arrival(arrival)
        self.arrival_interval_hours = arrival_interval_hours
        self.prediction_chunk = prediction_chunk
        self.seed = seed
        self.doubling_factor = doubling_factor

    # ------------------------------------------------------------------
    def run(
        self,
        trace: WorkflowTrace,
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
    ) -> SimulationResult:
        manager.release_all()
        predictor.begin_trace(
            TraceContext(
                workflow=trace.workflow,
                n_tasks=len(trace),
                time_to_failure=time_to_failure,
                backend=self.name,
            )
        )
        ledger = WastageLedger()
        logs: list[PredictionLog] = []

        rng = np.random.default_rng(self.seed)
        arrival_times = self.arrival.sample(len(trace), rng)
        states = [
            _TaskState(
                inst=inst,
                submission=TaskSubmission.from_instance(inst, timestamp),
                index=timestamp,
                arrival=float(arrival_times[timestamp]),
            )
            for timestamp, inst in enumerate(trace)
        ]

        # Event heap entries: (time, kind, seq, state).  ``seq`` keeps
        # ordering deterministic for identical (time, kind) pairs.
        events: list[tuple[float, int, int, _TaskState]] = []
        seq = 0
        for st in states:
            events.append((st.arrival, _ARRIVAL, seq, st))
            seq += 1
        heapq.heapify(events)

        ready: list[tuple[int, _TaskState]] = []  # heap keyed by index
        queue_waits: list[float] = []
        makespan = 0.0
        busy_mbh = {node.node_id: 0.0 for node in manager.nodes}
        timelines: dict[int, list[tuple[float, float]]] = {
            node.node_id: [(0.0, 0.0)] for node in manager.nodes
        }

        def release(st: _TaskState, now: float) -> tuple[float, float]:
            """Free the task's node slice; returns (allocated, occupied h)."""
            assert st.running is not None
            node, task_id, allocated, start = st.running
            st.running = None
            node.release(task_id)
            occupied = now - start
            busy_mbh[node.node_id] += allocated * occupied
            timelines[node.node_id].append((now, node.allocated_mb))
            return allocated, occupied

        def handle_finish(st: _TaskState, now: float) -> None:
            inst = st.inst
            allocated, _ = release(st, now)
            ledger.record_success(
                task_type=inst.task_type.name,
                workflow=inst.task_type.workflow,
                instance_id=inst.instance_id,
                attempt=st.attempt,
                allocated_mb=allocated,
                peak_memory_mb=inst.peak_memory_mb,
                runtime_hours=inst.runtime_hours,
            )
            predictor.observe(
                TaskRecord(
                    task_type=inst.task_type.name,
                    workflow=inst.task_type.workflow,
                    machine=inst.machine,
                    timestamp=st.index,
                    input_size_mb=inst.input_size_mb,
                    peak_memory_mb=inst.peak_memory_mb,
                    runtime_hours=inst.runtime_hours,
                    success=True,
                    attempt=st.attempt,
                    allocated_mb=allocated,
                    instance_id=inst.instance_id,
                )
            )
            logs.append(
                PredictionLog(
                    instance_id=inst.instance_id,
                    task_type=inst.task_type.name,
                    workflow=inst.task_type.workflow,
                    timestamp=st.index,
                    input_size_mb=inst.input_size_mb,
                    true_peak_mb=inst.peak_memory_mb,
                    true_runtime_hours=inst.runtime_hours,
                    first_allocation_mb=st.first_allocation,
                    final_allocation_mb=st.allocation,
                    n_attempts=st.attempt,
                )
            )

        def handle_kill(st: _TaskState, now: float) -> None:
            inst = st.inst
            allocated, occupied = release(st, now)
            ledger.record_failure(
                task_type=inst.task_type.name,
                workflow=inst.task_type.workflow,
                instance_id=inst.instance_id,
                attempt=st.attempt,
                allocated_mb=allocated,
                peak_memory_mb=inst.peak_memory_mb,
                time_to_failure_hours=occupied,
            )
            # The failure record's "peak" is the exceeded limit — a lower
            # bound, flagged via success=False (same as replay).
            predictor.observe(
                TaskRecord(
                    task_type=inst.task_type.name,
                    workflow=inst.task_type.workflow,
                    machine=inst.machine,
                    timestamp=st.index,
                    input_size_mb=inst.input_size_mb,
                    peak_memory_mb=allocated,
                    runtime_hours=occupied,
                    success=False,
                    attempt=st.attempt,
                    allocated_mb=allocated,
                    instance_id=inst.instance_id,
                )
            )
            next_allocation = float(
                predictor.on_failure(st.submission, allocated, st.attempt)
            )
            # Retries must strictly grow or the task can never finish;
            # the escalation floor is the configured doubling factor
            # (same as the replay path, so attempts stay identical).
            if next_allocation <= allocated:
                next_allocation = allocated * self.doubling_factor
            st.allocation = clamp_allocation_checked(
                manager, inst, next_allocation
            )
            st.queued_at = now
            heapq.heappush(ready, (st.index, st))

        def schedule(now: float) -> None:
            nonlocal seq
            while ready:
                _, head = ready[0]
                if head.allocation is None:
                    self._predict_chunk(predictor, manager, ready)
                node = manager.try_place(head.allocation)
                if node is None:
                    # Strict FCFS: the head blocks until memory frees up.
                    break
                heapq.heappop(ready)
                if head.attempt + 1 > MAX_ATTEMPTS:
                    raise RuntimeError(
                        f"task {head.inst.instance_id} "
                        f"({head.inst.task_type.key}) did not finish within "
                        f"{MAX_ATTEMPTS} attempts; last allocation "
                        f"{head.allocation:.0f} MB, "
                        f"peak {head.inst.peak_memory_mb:.0f} MB"
                    )
                task_id = manager.next_task_id()
                node.allocate(task_id, head.allocation)
                timelines[node.node_id].append((now, node.allocated_mb))
                head.attempt += 1
                # Every dispatch pays its wait — including re-queues
                # after a kill, which otherwise vanish from the totals.
                queue_waits.append(now - head.queued_at)
                head.running = (node, task_id, head.allocation, now)
                success = head.allocation >= head.inst.peak_memory_mb
                duration = (
                    head.inst.runtime_hours
                    if success
                    else head.inst.runtime_hours * time_to_failure
                )
                heapq.heappush(
                    events, (now + duration, _COMPLETION, seq, head)
                )
                seq += 1

        while events:
            now = events[0][0]
            while events and events[0][0] == now:
                _, kind, _, st = heapq.heappop(events)
                if kind == _ARRIVAL:
                    st.queued_at = now
                    heapq.heappush(ready, (st.index, st))
                elif st.running is not None and (
                    st.running[2] >= st.inst.peak_memory_mb
                ):
                    handle_finish(st, now)
                else:
                    handle_kill(st, now)
                makespan = max(makespan, now)
            schedule(now)

        predictor.end_trace()
        logs.sort(key=lambda log: log.timestamp)
        return SimulationResult(
            workflow=trace.workflow,
            method=predictor.name,
            time_to_failure=time_to_failure,
            ledger=ledger,
            predictions=logs,
            cluster=self._cluster_metrics(
                manager, makespan, queue_waits, busy_mbh, timelines
            ),
        )

    # ------------------------------------------------------------------
    def _predict_chunk(
        self,
        predictor: MemoryPredictor,
        manager: ResourceManager,
        ready: list[tuple[int, _TaskState]],
    ) -> None:
        """Size the first ``prediction_chunk`` unsized queued tasks.

        One ``predict_batch`` call covers the chunk; chunking (rather
        than sizing the whole queue up front) keeps predictions close to
        dispatch time so online learning from earlier completions still
        reaches later tasks.
        """
        chunk = heapq.nsmallest(
            self.prediction_chunk,
            (st for _, st in ready if st.allocation is None),
        )
        allocations = predictor.predict_batch([st.submission for st in chunk])
        for st, allocation in zip(chunk, allocations):
            st.allocation = clamp_allocation_checked(
                manager, st.inst, float(allocation)
            )
            st.first_allocation = st.allocation

    @staticmethod
    def _cluster_metrics(
        manager: ResourceManager,
        makespan: float,
        queue_waits: list[float],
        busy_mbh: dict[int, float],
        timelines: dict[int, list[tuple[float, float]]],
    ) -> ClusterMetrics:
        mb_per_gb = 1024.0
        busy_gbh = {n: v / mb_per_gb for n, v in busy_mbh.items()}
        capacity_gb = {
            n: mb / mb_per_gb for n, mb in manager.node_capacities_mb().items()
        }
        # Each node's utilization is measured against its *own* capacity
        # — on a heterogeneous cluster a shared denominator would let a
        # small node report < 100% while fully busy (or a big node
        # report > 100%).
        utilization = {
            n: (v / (capacity_gb[n] * makespan) if makespan > 0 else 0.0)
            for n, v in busy_gbh.items()
        }
        return ClusterMetrics(
            makespan_hours=makespan,
            total_queue_wait_hours=float(sum(queue_waits)),
            mean_queue_wait_hours=(
                float(sum(queue_waits) / len(queue_waits)) if queue_waits else 0.0
            ),
            max_queue_wait_hours=(
                float(max(queue_waits)) if queue_waits else 0.0
            ),
            node_busy_memory_gbh=busy_gbh,
            node_utilization=utilization,
            node_timelines=timelines,
            node_capacity_gb=capacity_gb,
        )
