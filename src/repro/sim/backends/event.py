"""Flat-stream event backend: a thin driver over the simulation kernel.

The replay backend executes one task at a time, which makes
cluster-level quantities — queueing delay, makespan, node utilization —
unobservable.  This backend runs the same predictor contract through the
unified discrete-event kernel (:mod:`repro.sim.kernel`) instead:

- every task *arrives* at the time assigned by a pluggable
  :class:`~repro.sim.arrivals.ArrivalModel` — a fixed inter-arrival
  gap (the default of 0 models a batch submission of the whole trace),
  a Poisson process, or bursty scatter-gather submissions, with all
  stochastic draws taken from the backend's seeded RNG;
- arrived tasks wait in a FCFS queue ordered by submission index;
- the kernel's scheduling pass sizes each dispatch wave via
  :meth:`~repro.sim.interface.MemoryPredictor.predict_batch` (in chunks
  of ``prediction_chunk``), places onto
  :class:`~repro.cluster.manager.ResourceManager` nodes via the
  manager's placement policy, kills under-allocated tasks at
  ``time_to_failure`` of their runtime, and re-queues them re-sized
  with the doubling-factor escalation floor;
- :class:`~repro.sim.kernel.collectors.ClusterMetricsCollector` records
  every dispatch's queue wait, per-node allocation timelines, and the
  makespan into :class:`~repro.sim.results.ClusterMetrics`;
- scheduled node drains (``node_outage="start:duration:node"``) pause
  placement on a node and preempt its running tasks — a kernel-level
  scenario shared verbatim with the DAG engine.

Wastage accounting is attempt-for-attempt identical to the replay
backend; for a predictor that does not learn online the two backends
produce the same ledger totals, while the event backend additionally
reports the cluster-level metrics.

All of the execution semantics live in
:class:`~repro.sim.kernel.core.SimulationKernel`; this module only
contributes the *flat* notion of arrival and priority via
:class:`FlatStreamDriver`.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import Iterable, Sequence

import numpy as np

from repro.cluster.manager import ResourceManager
from repro.sim.arrivals import (
    ArrivalModel,
    FixedArrivals,
    iter_arrival_times,
    parse_arrival,
)
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.sim.kernel.collectors import ClusterMetricsCollector
from repro.sim.kernel.core import SimulationKernel, TaskState
from repro.sim.kernel.events import ARRIVAL
from repro.sim.kernel.outage import NodeOutage, parse_node_outages
from repro.sim.results import SimulationResult
from repro.workflow.task import WorkflowTrace
from repro.workload.base import WorkloadSource

__all__ = ["EventDrivenBackend", "FlatStreamDriver"]


class _FlatQueue:
    """FCFS ready queue ordered by submission index.

    Besides the main heap, a dedicated index heap tracks queued states
    that still need sizing, so :meth:`unsized` pops its wave in O(wave
    log n) instead of scanning the whole queue per sizing call.  The
    index is exact because of two kernel invariants: states enter the
    queue unsized only on arrival (kill/preempt requeues are always
    already sized), and every state :meth:`unsized` returns is sized
    immediately by the caller — so popped index entries never need to
    come back, and an entry whose state was sized as part of an earlier
    wave is simply skipped.
    """

    __slots__ = ("_heap", "_unsized", "order")

    def __init__(self) -> None:
        self._heap: list[tuple[int, TaskState]] = []
        self._unsized: list[tuple[int, TaskState]] = []
        #: Kernel-internal contract (shared with ``_DagQueue``): the live
        #: heap list itself.  Entries sort FCFS and end with the state,
        #: so the kernel peeks ``order[0][-1]`` and pops with ``heappop``
        #: instead of calling :meth:`head`/:meth:`pop` per dispatch.
        self.order = self._heap

    def push(self, state: TaskState) -> None:
        heapq.heappush(self._heap, (state.index, state))
        if state.allocation is None:
            heapq.heappush(self._unsized, (state.index, state))

    def head(self) -> TaskState:
        return self._heap[0][1]

    def pop(self) -> TaskState:
        return heapq.heappop(self._heap)[1]

    def unsized(self, limit: int) -> list[TaskState]:
        wave: list[TaskState] = []
        index = self._unsized
        while index and len(wave) < limit:
            state = heapq.heappop(index)[1]
            if state.allocation is None:
                wave.append(state)
        return wave

    def requeue(self, state: TaskState) -> None:
        # A re-queued task re-enters at its original priority.
        self.push(state)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class FlatStreamDriver:
    """Kernel driver for a flat, pre-ordered task stream.

    Arrival events carry task states; nothing is released on success —
    the stream has no dependencies, only submission times.  Tasks are
    pulled lazily from the kernel's workload source and zipped with the
    arrival model's schedule: a sized source uses the vectorized
    ``sample(n, rng)`` path, an unsized (streaming) source the
    draw-for-draw-identical ``times(rng)`` iterator — the same schedule
    either way, so trace files and streams replay identically.

    **Lazy arrivals** (sized sources): only one pending arrival event
    lives in the heap at a time; each arrival, once popped, pulls the
    next task from the stream and pushes its event.  This is pop-order
    identical to pushing the whole schedule up front — arrival times
    are non-decreasing, so the single pending arrival is always the
    earliest remaining one, and at equal timestamps the event *kind*
    (not push sequence) decides against completions and outages — while
    keeping heap memory O(1) in the trace length.  An unsized source
    cannot pre-commit ``n_tasks``, so it keeps the eager schedule.

    Sharding (``shard`` of ``shards``, sized sources only): the driver
    walks the full stream and schedule but materializes only tasks whose
    global submission index is congruent to ``shard`` — every kept task
    has exactly the arrival time and index it has in the unsharded run.
    """

    #: Flat streams have no dependency graph: success never releases new
    #: work, so the kernel skips the per-success driver call entirely.
    releases_on_success = False

    def __init__(
        self,
        arrival: ArrivalModel,
        seed: int,
        *,
        shard: int = 0,
        shards: int = 1,
    ) -> None:
        if shards < 1 or not 0 <= shard < shards:
            raise ValueError(
                f"shard must satisfy 0 <= shard < shards, got "
                f"shard={shard} shards={shards}"
            )
        self.arrival = arrival
        self.rng_seed = seed
        self.shard = shard
        self.shards = shards
        self.queue = _FlatQueue()
        self.n_tasks = 0
        #: Global submission index of the next stream entry (lazy mode).
        self._cursor = 0
        #: Live ``zip(tasks, times)`` iterator; never pickled — rebuilt
        #: deterministically from ``_cursor`` after a resume.
        self._stream: "Iterable | None" = None
        self._lazy = False
        self._kernel: SimulationKernel | None = None

    def seed(self, kernel: SimulationKernel) -> None:
        source = kernel.source
        n = source.n_tasks
        if n is not None:
            self._lazy = True
            self._kernel = kernel
            self.n_tasks = len(range(self.shard, n, self.shards))
            self._push_next()
            return
        if self.shards != 1:
            raise ValueError(
                "sharded flat runs require a sized workload source "
                f"(source {source.name!r} does not report n_tasks)"
            )
        rng = np.random.default_rng(self.rng_seed)
        try:
            times = iter_arrival_times(self.arrival, rng)
            tasks = source.iter_tasks()
        except ValueError:
            # The model cannot stream: materialize to learn the
            # count, then schedule exactly as the sized path would.
            materialized = list(source.iter_tasks())
            times = iter(self.arrival.sample(len(materialized), rng))
            tasks = iter(materialized)
        count = 0
        for timestamp, (inst, arrival_time) in enumerate(zip(tasks, times)):
            state = TaskState(
                inst=inst,
                submission=TaskSubmission.from_instance(inst, timestamp),
                index=timestamp,
                arrival=float(arrival_time),
            )
            kernel.events.push(state.arrival, ARRIVAL, state)
            count += 1
        self.n_tasks = count

    # ------------------------------------------------------------------
    # lazy stream plumbing (sized sources)
    # ------------------------------------------------------------------
    def _ensure_stream(self) -> None:
        if self._stream is not None:
            return
        assert self._kernel is not None
        source = self._kernel.source
        n = source.n_tasks
        assert n is not None
        # The full schedule is drawn in one vectorized call (n floats,
        # not n events) so lazy, resumed, and sharded runs all see the
        # exact arrival times of the eager unsharded run.
        rng = np.random.default_rng(self.rng_seed)
        schedule = self.arrival.sample(n, rng)
        if hasattr(schedule, "tolist"):
            # Bulk-convert to Python floats once: the per-arrival
            # ``float(np.float64)`` on the hot path was measurable.
            schedule = schedule.tolist()
        stream = zip(source.iter_tasks(), schedule)
        if self._cursor:
            stream = islice(stream, self._cursor, None)
        self._stream = iter(stream)

    def _push_next(self) -> None:
        """Advance to this shard's next task and push its arrival event."""
        if self._stream is None:
            self._ensure_stream()
        while True:
            entry = next(self._stream, None)  # type: ignore[arg-type]
            if entry is None:
                return
            index = self._cursor
            self._cursor += 1
            if index % self.shards != self.shard:
                continue
            inst, arrival_time = entry
            arrival = float(arrival_time)
            # Inlined TaskSubmission.from_instance (one per arrival).
            task_type = inst.task_type
            sub = object.__new__(TaskSubmission)
            sub.__dict__.update(
                task_type=task_type.name,
                workflow=task_type.workflow,
                machine=inst.machine,
                instance_id=inst.instance_id,
                input_size_mb=inst.input_size_mb,
                preset_memory_mb=task_type.preset_memory_mb,
                timestamp=index,
            )
            # Direct slot assignment instead of the dataclass __init__
            # (one TaskState per task; all other fields are defaults).
            state = TaskState.__new__(TaskState)
            state.inst = inst
            state.submission = sub
            state.index = index
            state.arrival = arrival
            state.wi = None
            state.allocation = None
            state.first_allocation = None
            state.attempt = 0
            state.queued_at = 0.0
            state.running = None
            state.dispatch_gen = 0
            # Inlined EventHeap.push — one arrival per task, hot path.
            events = self._kernel.events
            seq = events._seq
            events._seq = seq + 1
            heapq.heappush(events._heap, (arrival, ARRIVAL, seq, state))
            return

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_stream"] = None  # live iterator; rebuilt from _cursor
        return state

    def on_arrival(self, payload: object, now: float) -> Iterable[TaskState]:
        state = payload
        # Inlined _FlatQueue.push; fresh arrivals are always unsized, so
        # the entry goes straight onto both heaps.
        queue = self.queue
        entry = (state.index, state)
        heapq.heappush(queue._heap, entry)
        heapq.heappush(queue._unsized, entry)
        if self._lazy:
            # Inlined :meth:`_push_next` (one call per arrival; the
            # method stays the canonical copy for seeding/resume).
            stream = self._stream
            if stream is None:
                self._ensure_stream()
                stream = self._stream
            while True:
                nxt = next(stream, None)  # type: ignore[arg-type]
                if nxt is None:
                    break
                index = self._cursor
                self._cursor += 1
                if index % self.shards != self.shard:
                    continue
                inst, arrival_time = nxt
                arrival = float(arrival_time)
                task_type = inst.task_type
                sub = object.__new__(TaskSubmission)
                sub.__dict__.update(
                    task_type=task_type.name,
                    workflow=task_type.workflow,
                    machine=inst.machine,
                    instance_id=inst.instance_id,
                    input_size_mb=inst.input_size_mb,
                    preset_memory_mb=task_type.preset_memory_mb,
                    timestamp=index,
                )
                nstate = TaskState.__new__(TaskState)
                nstate.inst = inst
                nstate.submission = sub
                nstate.index = index
                nstate.arrival = arrival
                nstate.wi = None
                nstate.allocation = None
                nstate.first_allocation = None
                nstate.attempt = 0
                nstate.queued_at = 0.0
                nstate.running = None
                nstate.dispatch_gen = 0
                events = self._kernel.events
                seq = events._seq
                events._seq = seq + 1
                heapq.heappush(events._heap, (arrival, ARRIVAL, seq, nstate))
                break
        return (state,)

    def on_success(self, state: TaskState, now: float) -> Iterable[TaskState]:
        return ()

    def finish(self, kernel: SimulationKernel) -> None:
        pass


class EventDrivenBackend:
    """Concurrent execution on a shared cluster with FCFS queueing.

    Parameters
    ----------
    arrival_interval_hours:
        Gap between consecutive submissions (back-compat shorthand for
        ``arrival=FixedArrivals(...)``).  0 (default) submits the whole
        trace at once — a batch workload whose concurrency is limited
        purely by cluster memory.  Ignored when ``arrival`` is given.
    prediction_chunk:
        How many queued tasks are sized per ``predict_batch`` call.  The
        scheduler only requests predictions as its dispatch window
        reaches unsized tasks, so tasks deep in the queue are predicted
        *after* earlier completions were observed — preserving online
        learning while still batching model queries.
    arrival:
        Arrival model: a spec string (``"fixed:0.25"``,
        ``"poisson:0.5"``, ``"bursty:8x0.5"``) or an
        :class:`~repro.sim.arrivals.ArrivalModel` instance.
    seed:
        Seed of the backend's private RNG, which drives every stochastic
        arrival draw — a fixed seed makes the whole simulation
        deterministic.
    doubling_factor:
        Escalation floor after a kill: when the predictor's retry
        proposal does not grow, the next allocation is
        ``failed * doubling_factor`` — the same factor
        :class:`~repro.core.failure.FailureHandler` uses, so replay and
        event runs stay attempt-for-attempt identical.
    dag:
        Switches the backend into DAG-aware scheduling
        (:mod:`repro.sched`): tasks are released only when their DAG
        predecessors' instances succeeded.  ``"trace"`` uses the
        :attr:`~repro.workflow.task.WorkflowTrace.dag` exported by the
        trace generator, ``"linear"`` chains task types in
        first-appearance order, or pass a
        :class:`~repro.workflow.dag.WorkflowDAG` directly.  ``None``
        (default) keeps the flat pre-ordered task stream.
    workflow_arrival:
        Multi-workflow injection (implies DAG-aware scheduling, using
        the trace's DAG unless ``dag`` is given): a spec such as ``"4"``,
        ``"4@poisson:2"``, ``"6@bursty:2x0.5@tenants:3"`` or a
        :class:`~repro.sim.arrivals.WorkflowArrivals` — whole workflow
        instances from different tenants contending for one cluster.
    node_outage:
        Scheduled node drain windows — one spec string
        (``"start:duration:node"``), a
        :class:`~repro.sim.kernel.outage.NodeOutage`, or a list of
        either.  Applied identically in flat and DAG modes.
    stream_collectors:
        Streaming-collector mode: collectors keep online aggregates and
        quantile sketches instead of per-task logs, timelines, and
        outcome lists — memory stays bounded at million-task scale.  The
        result carries a ``summary`` (identical to the exact run's) but
        no raw ``predictions`` / ``cluster`` / ``workflows`` sections.
    spill:
        Optional JSONL path; every prediction log is appended there in
        completion order, with or without ``stream_collectors``.
    shard / shards:
        Run only slice ``shard`` of ``shards`` of the workload — flat
        tasks by global submission index, DAG workflow instances by copy
        number — with arrival schedules and ids matching the unsharded
        run.  The sharded grid runner (:mod:`repro.sim.runner`) merges
        the per-shard summaries.
    profile:
        Enable the kernel phase profiler (:mod:`repro.obs.profile`):
        ``result.profile`` carries per-phase wall-time/call counters.
        Measurement only — never changes results.
    trace / trace_limit:
        Write a Chrome ``trace_event`` JSON timeline of the run to the
        ``trace`` path (:class:`~repro.obs.trace.TraceCollector`);
        ``trace_limit`` bounds the retained events with a ring buffer
        for million-task runs.
    """

    name = "event"

    def __init__(
        self,
        arrival_interval_hours: float = 0.0,
        prediction_chunk: int = 32,
        arrival: str | ArrivalModel | None = None,
        seed: int = 0,
        doubling_factor: float = 2.0,
        dag: object | None = None,
        workflow_arrival: object | None = None,
        node_outage: str | NodeOutage | Sequence[str | NodeOutage] | None = None,
        stream_collectors: bool = False,
        spill: str | None = None,
        shard: int = 0,
        shards: int = 1,
        profile: bool = False,
        trace: str | None = None,
        trace_limit: int | None = None,
    ) -> None:
        if arrival_interval_hours < 0:
            raise ValueError(
                f"arrival_interval_hours must be >= 0, got {arrival_interval_hours}"
            )
        if prediction_chunk < 1:
            raise ValueError(
                f"prediction_chunk must be >= 1, got {prediction_chunk}"
            )
        if doubling_factor <= 1.0:
            raise ValueError(
                f"doubling_factor must exceed 1, got {doubling_factor}"
            )
        if shards < 1 or not 0 <= shard < shards:
            raise ValueError(
                f"shard must satisfy 0 <= shard < shards, got "
                f"shard={shard} shards={shards}"
            )
        if arrival is None:
            arrival = FixedArrivals(arrival_interval_hours)
        self.arrival = parse_arrival(arrival)
        self.arrival_interval_hours = arrival_interval_hours
        self.prediction_chunk = prediction_chunk
        self.seed = seed
        self.doubling_factor = doubling_factor
        self.stream_collectors = stream_collectors
        self.spill = spill
        self.shard = shard
        self.shards = shards
        self.profile = profile
        self.trace = trace
        self.trace_limit = trace_limit
        self.dag = dag
        if workflow_arrival is not None:
            from repro.sim.arrivals import parse_workflow_arrival

            workflow_arrival = parse_workflow_arrival(workflow_arrival)
        self.workflow_arrival = workflow_arrival
        self.node_outages = parse_node_outages(node_outage)
        if dag is not None or workflow_arrival is not None:
            # DAG scheduling releases tasks as dependencies resolve;
            # a task-level arrival model would be silently ignored, so
            # reject the combination instead of picking a winner.
            trivial_arrival = (
                isinstance(self.arrival, FixedArrivals)
                and self.arrival.interval_hours == 0.0
            )
            if not trivial_arrival:
                raise ValueError(
                    "dag/workflow_arrival replace the per-task arrival "
                    "model; drop arrival/arrival_interval_hours (workflow "
                    "arrivals carry their own fixed/poisson/bursty spec)"
                )

    def with_workflow_options(
        self,
        dag: object | None = None,
        workflow_arrival: object | None = None,
        node_outage: object | None = None,
    ) -> "EventDrivenBackend":
        """A copy of this backend with DAG-scheduling options applied.

        The seam :class:`~repro.sim.engine.OnlineSimulator` and the grid
        runner use to layer ``dag=`` / ``workflow_arrival=`` /
        ``node_outage=`` on top of a backend resolved by name, without
        touching its other settings.
        """
        return EventDrivenBackend(
            arrival_interval_hours=self.arrival_interval_hours,
            prediction_chunk=self.prediction_chunk,
            arrival=self.arrival,
            seed=self.seed,
            doubling_factor=self.doubling_factor,
            dag=dag if dag is not None else self.dag,
            workflow_arrival=(
                workflow_arrival
                if workflow_arrival is not None
                else self.workflow_arrival
            ),
            node_outage=(
                node_outage if node_outage is not None else self.node_outages
            ),
            stream_collectors=self.stream_collectors,
            spill=self.spill,
            shard=self.shard,
            shards=self.shards,
            profile=self.profile,
            trace=self.trace,
            trace_limit=self.trace_limit,
        )

    def with_scale_options(
        self,
        stream_collectors: bool | None = None,
        spill: str | None = None,
        shard: int | None = None,
        shards: int | None = None,
    ) -> "EventDrivenBackend":
        """A copy of this backend with scale-out options applied.

        The seam the grid runner and CLI use to layer
        ``--stream-collectors`` / ``--shards`` onto a backend resolved
        by name, mirroring :meth:`with_workflow_options`.
        """
        return EventDrivenBackend(
            arrival_interval_hours=self.arrival_interval_hours,
            prediction_chunk=self.prediction_chunk,
            arrival=self.arrival,
            seed=self.seed,
            doubling_factor=self.doubling_factor,
            dag=self.dag,
            workflow_arrival=self.workflow_arrival,
            node_outage=self.node_outages,
            stream_collectors=(
                stream_collectors
                if stream_collectors is not None
                else self.stream_collectors
            ),
            spill=spill if spill is not None else self.spill,
            shard=shard if shard is not None else self.shard,
            shards=shards if shards is not None else self.shards,
            profile=self.profile,
            trace=self.trace,
            trace_limit=self.trace_limit,
        )

    def with_obs_options(
        self,
        profile: bool | None = None,
        trace: str | None = None,
        trace_limit: int | None = None,
    ) -> "EventDrivenBackend":
        """A copy of this backend with observability options applied.

        The seam :class:`~repro.sim.engine.OnlineSimulator` and the CLI
        use to layer ``--profile`` / ``--trace`` onto a backend resolved
        by name, mirroring :meth:`with_workflow_options`.
        """
        return EventDrivenBackend(
            arrival_interval_hours=self.arrival_interval_hours,
            prediction_chunk=self.prediction_chunk,
            arrival=self.arrival,
            seed=self.seed,
            doubling_factor=self.doubling_factor,
            dag=self.dag,
            workflow_arrival=self.workflow_arrival,
            node_outage=self.node_outages,
            stream_collectors=self.stream_collectors,
            spill=self.spill,
            shard=self.shard,
            shards=self.shards,
            profile=profile if profile is not None else self.profile,
            trace=trace if trace is not None else self.trace,
            trace_limit=(
                trace_limit if trace_limit is not None else self.trace_limit
            ),
        )

    # ------------------------------------------------------------------
    def build_kernel(
        self,
        workload: "WorkloadSource | WorkflowTrace | str",
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
    ) -> SimulationKernel:
        """Assemble (but do not run) this backend's configured kernel.

        The checkpoint seam: callers that need pause/resume drive the
        returned kernel via
        :func:`repro.sim.kernel.checkpoint.drive_kernel` instead of
        calling :meth:`run`.
        """
        if self.dag is not None or self.workflow_arrival is not None:
            # DAG-aware scheduling plugs its own driver into the same
            # kernel; the flat pre-ordered stream below stays
            # byte-identical without it.
            from repro.sched.engine import build_dag_kernel

            return build_dag_kernel(
                workload,
                predictor,
                manager,
                time_to_failure,
                dag=self.dag,
                workflow_arrival=self.workflow_arrival,
                prediction_chunk=self.prediction_chunk,
                doubling_factor=self.doubling_factor,
                seed=self.seed,
                backend_name=self.name,
                node_outage=self.node_outages,
                stream_collectors=self.stream_collectors,
                spill=self.spill,
                shard=self.shard,
                shards=self.shards,
                profile=self.profile,
                trace=self.trace,
                trace_limit=self.trace_limit,
            )
        collectors: list = [
            ClusterMetricsCollector(stream=self.stream_collectors)
        ]
        if self.trace is not None:
            from repro.obs.trace import TraceCollector

            collectors.append(
                TraceCollector(self.trace, limit=self.trace_limit)
            )
        return SimulationKernel(
            workload,
            predictor,
            manager,
            time_to_failure,
            driver=FlatStreamDriver(
                self.arrival, self.seed, shard=self.shard, shards=self.shards
            ),
            collectors=collectors,
            prediction_chunk=self.prediction_chunk,
            doubling_factor=self.doubling_factor,
            outages=self.node_outages,
            backend_name=self.name,
            stream_collectors=self.stream_collectors,
            spill=self.spill,
            profile=self.profile,
        )

    def run(
        self,
        workload: "WorkloadSource | WorkflowTrace | str",
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
    ) -> SimulationResult:
        result = self.build_kernel(
            workload, predictor, manager, time_to_failure
        ).run()
        assert result is not None
        return result
