"""Discrete-event simulation backend: tasks genuinely overlap on nodes.

The replay backend executes one task at a time, which makes cluster-level
quantities — queueing delay, makespan, node utilization — unobservable.
This backend runs the same predictor contract through a discrete-event
engine instead:

- every task *arrives* at the time assigned by a pluggable
  :class:`~repro.sim.arrivals.ArrivalModel` — a fixed inter-arrival
  gap (the default of 0 models a batch submission of the whole trace),
  a Poisson process, or bursty scatter-gather submissions, with all
  stochastic draws taken from the backend's seeded RNG;
- arrived tasks wait in a FCFS queue ordered by submission index;
- a scheduling pass after each event batch sizes waiting tasks via
  :meth:`~repro.sim.interface.MemoryPredictor.predict_batch` (in chunks
  of ``prediction_chunk``, so later tasks still benefit from online
  learning) and places them onto
  :class:`~repro.cluster.manager.ResourceManager` nodes via the
  manager's :class:`~repro.cluster.policies.PlacementPolicy`
  (first-fit, best-fit, or worst-fit), where they occupy their
  allocation for their whole runtime;
- an under-allocated task is killed at ``time_to_failure`` of its
  runtime, charged to the wastage ledger exactly like in replay mode,
  re-sized via ``on_failure`` (with the configured doubling factor as
  the escalation floor), and re-queued at its original priority;
- every dispatch's queue wait, per-node allocation timelines, and the
  makespan are recorded into
  :class:`~repro.sim.results.ClusterMetrics`, with utilization computed
  against each node's own capacity (heterogeneous clusters differ per
  node).

Wastage accounting is attempt-for-attempt identical to the replay
backend; for a predictor that does not learn online the two backends
produce the same ledger totals, while the event backend additionally
reports the cluster-level metrics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.cluster.accounting import WastageLedger
from repro.cluster.machine import Machine
from repro.cluster.manager import ResourceManager
from repro.sim.arrivals import ArrivalModel, FixedArrivals, parse_arrival
from repro.sim.backends.base import (
    MAX_ATTEMPTS,
    build_cluster_metrics,
    commit_failure_and_resize,
    commit_success,
    size_first_attempts,
)
from repro.sim.interface import MemoryPredictor, TaskSubmission, TraceContext
from repro.sim.results import PredictionLog, SimulationResult
from repro.workflow.task import TaskInstance, WorkflowTrace

__all__ = ["EventDrivenBackend"]

#: Event kinds, ordered so that completions at time t free their memory
#: before arrivals at t are queued and the scheduling pass runs.
_COMPLETION = 0
_ARRIVAL = 1


@dataclass
class _TaskState:
    """Mutable per-task bookkeeping of the event engine."""

    inst: TaskInstance
    submission: TaskSubmission
    index: int
    arrival: float
    allocation: float | None = None
    first_allocation: float | None = None
    attempt: int = 0
    #: When the task last entered the ready queue (arrival or re-queue
    #: after a kill); every dispatch charges ``now - queued_at`` as wait.
    queued_at: float = 0.0
    #: (node, task_id, allocated_mb, start_time) while executing.
    running: tuple[Machine, int, float, float] | None = None

    def __lt__(self, other: "_TaskState") -> bool:  # heap tie-breaker
        return self.index < other.index


class EventDrivenBackend:
    """Concurrent execution on a shared cluster with FCFS queueing.

    Parameters
    ----------
    arrival_interval_hours:
        Gap between consecutive submissions (back-compat shorthand for
        ``arrival=FixedArrivals(...)``).  0 (default) submits the whole
        trace at once — a batch workload whose concurrency is limited
        purely by cluster memory.  Ignored when ``arrival`` is given.
    prediction_chunk:
        How many queued tasks are sized per ``predict_batch`` call.  The
        scheduler only requests predictions as its dispatch window
        reaches unsized tasks, so tasks deep in the queue are predicted
        *after* earlier completions were observed — preserving online
        learning while still batching model queries.
    arrival:
        Arrival model: a spec string (``"fixed:0.25"``,
        ``"poisson:0.5"``, ``"bursty:8x0.5"``) or an
        :class:`~repro.sim.arrivals.ArrivalModel` instance.
    seed:
        Seed of the backend's private RNG, which drives every stochastic
        arrival draw — a fixed seed makes the whole simulation
        deterministic.
    doubling_factor:
        Escalation floor after a kill: when the predictor's retry
        proposal does not grow, the next allocation is
        ``failed * doubling_factor`` — the same factor
        :class:`~repro.core.failure.FailureHandler` uses, so replay and
        event runs stay attempt-for-attempt identical.
    dag:
        Switches the backend into DAG-aware scheduling
        (:mod:`repro.sched`): tasks are released only when their DAG
        predecessors' instances succeeded.  ``"trace"`` uses the
        :attr:`~repro.workflow.task.WorkflowTrace.dag` exported by the
        trace generator, ``"linear"`` chains task types in
        first-appearance order, or pass a
        :class:`~repro.workflow.dag.WorkflowDAG` directly.  ``None``
        (default) keeps the flat pre-ordered task stream.
    workflow_arrival:
        Multi-workflow injection (implies DAG-aware scheduling, using
        the trace's DAG unless ``dag`` is given): a spec such as ``"4"``,
        ``"4@poisson:2"``, ``"6@bursty:2x0.5@tenants:3"`` or a
        :class:`~repro.sched.arrivals.WorkflowArrivals` — whole workflow
        instances from different tenants contending for one cluster.
    """

    name = "event"

    def __init__(
        self,
        arrival_interval_hours: float = 0.0,
        prediction_chunk: int = 32,
        arrival: str | ArrivalModel | None = None,
        seed: int = 0,
        doubling_factor: float = 2.0,
        dag: object | None = None,
        workflow_arrival: object | None = None,
    ) -> None:
        if arrival_interval_hours < 0:
            raise ValueError(
                f"arrival_interval_hours must be >= 0, got {arrival_interval_hours}"
            )
        if prediction_chunk < 1:
            raise ValueError(
                f"prediction_chunk must be >= 1, got {prediction_chunk}"
            )
        if doubling_factor <= 1.0:
            raise ValueError(
                f"doubling_factor must exceed 1, got {doubling_factor}"
            )
        if arrival is None:
            arrival = FixedArrivals(arrival_interval_hours)
        self.arrival = parse_arrival(arrival)
        self.arrival_interval_hours = arrival_interval_hours
        self.prediction_chunk = prediction_chunk
        self.seed = seed
        self.doubling_factor = doubling_factor
        self.dag = dag
        if workflow_arrival is not None:
            from repro.sched.arrivals import parse_workflow_arrival

            workflow_arrival = parse_workflow_arrival(workflow_arrival)
        self.workflow_arrival = workflow_arrival
        if dag is not None or workflow_arrival is not None:
            # DAG scheduling releases tasks as dependencies resolve;
            # a task-level arrival model would be silently ignored, so
            # reject the combination instead of picking a winner.
            trivial_arrival = (
                isinstance(self.arrival, FixedArrivals)
                and self.arrival.interval_hours == 0.0
            )
            if not trivial_arrival:
                raise ValueError(
                    "dag/workflow_arrival replace the per-task arrival "
                    "model; drop arrival/arrival_interval_hours (workflow "
                    "arrivals carry their own fixed/poisson/bursty spec)"
                )

    def with_workflow_options(
        self,
        dag: object | None = None,
        workflow_arrival: object | None = None,
    ) -> "EventDrivenBackend":
        """A copy of this backend with DAG-scheduling options applied.

        The seam :class:`~repro.sim.engine.OnlineSimulator` and the grid
        runner use to layer ``dag=`` / ``workflow_arrival=`` on top of a
        backend resolved by name, without touching its other settings.
        """
        return EventDrivenBackend(
            arrival_interval_hours=self.arrival_interval_hours,
            prediction_chunk=self.prediction_chunk,
            arrival=self.arrival,
            seed=self.seed,
            doubling_factor=self.doubling_factor,
            dag=dag if dag is not None else self.dag,
            workflow_arrival=(
                workflow_arrival
                if workflow_arrival is not None
                else self.workflow_arrival
            ),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        trace: WorkflowTrace,
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
    ) -> SimulationResult:
        if self.dag is not None or self.workflow_arrival is not None:
            # DAG-aware scheduling lives in its own subsystem; the flat
            # pre-ordered stream below stays byte-identical without it.
            from repro.sched.engine import run_dag_simulation

            return run_dag_simulation(
                trace,
                predictor,
                manager,
                time_to_failure,
                dag=self.dag,
                workflow_arrival=self.workflow_arrival,
                prediction_chunk=self.prediction_chunk,
                doubling_factor=self.doubling_factor,
                seed=self.seed,
                backend_name=self.name,
            )
        manager.release_all()
        predictor.begin_trace(
            TraceContext(
                workflow=trace.workflow,
                n_tasks=len(trace),
                time_to_failure=time_to_failure,
                backend=self.name,
            )
        )
        ledger = WastageLedger()
        logs: list[PredictionLog] = []

        rng = np.random.default_rng(self.seed)
        arrival_times = self.arrival.sample(len(trace), rng)
        states = [
            _TaskState(
                inst=inst,
                submission=TaskSubmission.from_instance(inst, timestamp),
                index=timestamp,
                arrival=float(arrival_times[timestamp]),
            )
            for timestamp, inst in enumerate(trace)
        ]

        # Event heap entries: (time, kind, seq, state).  ``seq`` keeps
        # ordering deterministic for identical (time, kind) pairs.
        events: list[tuple[float, int, int, _TaskState]] = []
        seq = 0
        for st in states:
            events.append((st.arrival, _ARRIVAL, seq, st))
            seq += 1
        heapq.heapify(events)

        ready: list[tuple[int, _TaskState]] = []  # heap keyed by index
        queue_waits: list[float] = []
        makespan = 0.0
        busy_mbh = {node.node_id: 0.0 for node in manager.nodes}
        timelines: dict[int, list[tuple[float, float]]] = {
            node.node_id: [(0.0, 0.0)] for node in manager.nodes
        }

        def release(st: _TaskState, now: float) -> tuple[float, float]:
            """Free the task's node slice; returns (allocated, occupied h)."""
            assert st.running is not None
            node, task_id, allocated, start = st.running
            st.running = None
            node.release(task_id)
            occupied = now - start
            busy_mbh[node.node_id] += allocated * occupied
            timelines[node.node_id].append((now, node.allocated_mb))
            return allocated, occupied

        def handle_finish(st: _TaskState, now: float) -> None:
            allocated, _ = release(st, now)
            commit_success(
                ledger,
                predictor,
                logs,
                st.inst,
                attempt=st.attempt,
                allocated_mb=allocated,
                timestamp=st.index,
                first_allocation_mb=st.first_allocation,
                final_allocation_mb=st.allocation,
            )

        def handle_kill(st: _TaskState, now: float) -> None:
            allocated, occupied = release(st, now)
            st.allocation = commit_failure_and_resize(
                ledger,
                predictor,
                manager,
                st.inst,
                st.submission,
                attempt=st.attempt,
                allocated_mb=allocated,
                occupied_hours=occupied,
                timestamp=st.index,
                doubling_factor=self.doubling_factor,
            )
            st.queued_at = now
            heapq.heappush(ready, (st.index, st))

        def schedule(now: float) -> None:
            nonlocal seq
            while ready:
                _, head = ready[0]
                if head.allocation is None:
                    self._predict_chunk(predictor, manager, ready)
                node = manager.try_place(head.allocation)
                if node is None:
                    # Strict FCFS: the head blocks until memory frees up.
                    break
                heapq.heappop(ready)
                if head.attempt + 1 > MAX_ATTEMPTS:
                    raise RuntimeError(
                        f"task {head.inst.instance_id} "
                        f"({head.inst.task_type.key}) did not finish within "
                        f"{MAX_ATTEMPTS} attempts; last allocation "
                        f"{head.allocation:.0f} MB, "
                        f"peak {head.inst.peak_memory_mb:.0f} MB"
                    )
                task_id = manager.next_task_id()
                node.allocate(task_id, head.allocation)
                timelines[node.node_id].append((now, node.allocated_mb))
                head.attempt += 1
                # Every dispatch pays its wait — including re-queues
                # after a kill, which otherwise vanish from the totals.
                queue_waits.append(now - head.queued_at)
                head.running = (node, task_id, head.allocation, now)
                success = head.allocation >= head.inst.peak_memory_mb
                duration = (
                    head.inst.runtime_hours
                    if success
                    else head.inst.runtime_hours * time_to_failure
                )
                heapq.heappush(
                    events, (now + duration, _COMPLETION, seq, head)
                )
                seq += 1

        while events:
            now = events[0][0]
            while events and events[0][0] == now:
                _, kind, _, st = heapq.heappop(events)
                if kind == _ARRIVAL:
                    st.queued_at = now
                    heapq.heappush(ready, (st.index, st))
                elif st.running is not None and (
                    st.running[2] >= st.inst.peak_memory_mb
                ):
                    handle_finish(st, now)
                else:
                    handle_kill(st, now)
                makespan = max(makespan, now)
            schedule(now)

        predictor.end_trace()
        logs.sort(key=lambda log: log.timestamp)
        return SimulationResult(
            workflow=trace.workflow,
            method=predictor.name,
            time_to_failure=time_to_failure,
            ledger=ledger,
            predictions=logs,
            cluster=build_cluster_metrics(
                manager, makespan, queue_waits, busy_mbh, timelines
            ),
        )

    # ------------------------------------------------------------------
    def _predict_chunk(
        self,
        predictor: MemoryPredictor,
        manager: ResourceManager,
        ready: list[tuple[int, _TaskState]],
    ) -> None:
        """Size the first ``prediction_chunk`` unsized queued tasks.

        One ``predict_batch`` call covers the chunk; chunking (rather
        than sizing the whole queue up front) keeps predictions close to
        dispatch time so online learning from earlier completions still
        reaches later tasks.
        """
        chunk = heapq.nsmallest(
            self.prediction_chunk,
            (st for _, st in ready if st.allocation is None),
        )
        size_first_attempts(predictor, manager, chunk)

