"""Online aggregates for streaming metrics: quantile sketch + running stats.

Million-task runs cannot keep per-task lists of queue waits, latencies,
or wastage in memory, so the streaming collectors summarize every
distribution with two small objects:

- :class:`QuantileSketch` — a deterministic t-digest-style centroid
  sketch.  Values are buffered and periodically *compressed* into
  weighted centroids whose size is bounded by the usual t-digest scale
  function ``4 n q (1-q) / compression``, so the sketch stays accurate
  in the tails and coarse only in the middle.  Everything is plain
  arithmetic over sorted buffers — no randomness — so the same input
  stream always produces the same centroids, which is what makes
  checkpoint/resume and shard merges reproducible.
- :class:`RunningStat` — exact count / sum / mean / min / max.

Both are **mergeable** (shard results fold into one) and **picklable**
(checkpoints carry them verbatim).  Accuracy: with the default
``compression=512`` the relative quantile error stays well under 1 % on
unimodal distributions of any size — pinned by a regression test against
``np.quantile`` on a mid-size simulation scenario.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["QuantileSketch", "RunningStat", "QUANTILE_POINTS"]

#: Quantiles reported in run summaries, as ``"p50"``-style labels.
QUANTILE_POINTS: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p95", 0.95),
    ("p99", 0.99),
)


class RunningStat:
    """Exact streaming count/sum/min/max/mean; mergeable across shards."""

    __slots__ = ("n", "total", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        self.n += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def merge(self, other: "RunningStat") -> "RunningStat":
        self.n += other.n
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    # RunningStat uses __slots__, so give pickle explicit state.
    def __getstate__(self):
        return (self.n, self.total, self.min, self.max)

    def __setstate__(self, state) -> None:
        self.n, self.total, self.min, self.max = state


class QuantileSketch:
    """Deterministic mergeable t-digest-style quantile sketch.

    ``add`` appends to a buffer; once the buffer fills, buffered points
    and existing centroids are re-sorted and greedily re-clustered, with
    each centroid's weight capped at ``4 n q (1-q) / compression`` (the
    t-digest k1 bound) — small clusters near the tails, larger in the
    middle.  ``quantile`` interpolates linearly between centroid means,
    treating each centroid as centered mass (exact when every point got
    its own centroid, i.e. small streams degrade to exact quantiles).
    """

    __slots__ = ("compression", "_means", "_weights", "_buffer", "_cap", "stat")

    def __init__(self, compression: int = 512) -> None:
        if compression < 16:
            raise ValueError(f"compression must be >= 16, got {compression}")
        self.compression = compression
        self._means: list[float] = []
        self._weights: list[float] = []
        self._buffer: list[float] = []
        self._cap = compression * 2
        self.stat = RunningStat()

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        # Inlined RunningStat.add: the simulation kernel calls this for
        # every completion (wastage + turnaround) and every dispatch
        # (queue wait), so the extra method call was measurable.
        value = float(value)
        stat = self.stat
        stat.n += 1
        stat.total += value
        if value < stat.min:
            stat.min = value
        if value > stat.max:
            stat.max = value
        buffer = self._buffer
        buffer.append(value)
        if len(buffer) >= self._cap:
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        # Bulk add: one stat update for the whole batch (``sum`` with a
        # start value is the same sequential left-fold as repeated
        # ``+=``, so the float total is bit-identical to add() calls),
        # then buffer fills chunked to the exact compress boundaries the
        # per-value path would hit.  _compress() rebinds ``_buffer``, so
        # it is re-fetched after every chunk.
        vals = [float(v) for v in values]
        if not vals:
            return
        stat = self.stat
        stat.n += len(vals)
        stat.total = sum(vals, stat.total)
        lo = min(vals)
        hi = max(vals)
        if lo < stat.min:
            stat.min = lo
        if hi > stat.max:
            stat.max = hi
        cap = self._cap
        pos = 0
        n = len(vals)
        while pos < n:
            buffer = self._buffer
            take = cap - len(buffer)
            buffer.extend(vals[pos : pos + take])
            pos += take
            if len(buffer) >= cap:
                self._compress()

    @property
    def n(self) -> int:
        return self.stat.n

    # ------------------------------------------------------------------
    def _compress(self, force: bool = False) -> None:
        # Fast path: nothing buffered and the centroid list is already a
        # (sorted) product of a previous compression.  ``force`` is for
        # merge(), whose concatenated centroid lists are NOT sorted.
        if not force and not self._buffer and len(self._means) <= self.compression:
            return
        points = sorted(
            [(m, w) for m, w in zip(self._means, self._weights)]
            + [(v, 1.0) for v in self._buffer]
        )
        self._buffer = []
        total = sum(w for _, w in points)
        means: list[float] = []
        weights: list[float] = []
        seen = 0.0  # weight fully committed to finished clusters
        cur_sum = 0.0  # weighted value sum of the open cluster
        cur_w = 0.0
        for mean, weight in points:
            if cur_w > 0.0:
                # Size bound at the open cluster's prospective midpoint.
                q = (seen + (cur_w + weight) / 2.0) / total
                limit = 4.0 * total * q * (1.0 - q) / self.compression
                if cur_w + weight > max(limit, 1.0):
                    means.append(cur_sum / cur_w)
                    weights.append(cur_w)
                    seen += cur_w
                    cur_sum = 0.0
                    cur_w = 0.0
            cur_sum += mean * weight
            cur_w += weight
        if cur_w > 0.0:
            means.append(cur_sum / cur_w)
            weights.append(cur_w)
        self._means = means
        self._weights = weights

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile of everything added so far."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.stat.n == 0:
            return float("nan")
        self._compress()
        means, weights = self._means, self._weights
        if len(means) == 1:
            return means[0]
        total = self.stat.n
        target = q * total
        # Each centroid's mass is centered on its mean: centroid i spans
        # cumulative weight [c_i - w_i/2, c_i + w_i/2).
        cum = 0.0
        prev_mean = self.stat.min
        prev_pos = 0.0
        for mean, weight in zip(means, weights):
            pos = cum + weight / 2.0
            if target < pos:
                span = pos - prev_pos
                if span <= 0.0:
                    return mean
                frac = (target - prev_pos) / span
                return prev_mean + (mean - prev_mean) * frac
            cum += weight
            prev_mean = mean
            prev_pos = pos
        return self.stat.max

    def quantiles(
        self, points: Sequence[tuple[str, float]] = QUANTILE_POINTS
    ) -> dict[str, float]:
        """Labelled quantiles (summary form), e.g. ``{"p50": ..., ...}``."""
        return {label: self.quantile(q) for label, q in points}

    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other``'s mass into this sketch (shard merge)."""
        other._compress()
        self.stat.merge(other.stat)
        self._buffer.extend(other._buffer)
        self._means.extend(other._means)
        self._weights.extend(other._weights)
        self._compress(force=True)
        return self

    # __slots__: explicit pickle state (checkpoints carry sketches).
    def __getstate__(self):
        return (
            self.compression,
            self._means,
            self._weights,
            self._buffer,
            self.stat,
        )

    def __setstate__(self, state) -> None:
        (
            self.compression,
            self._means,
            self._weights,
            self._buffer,
            self.stat,
        ) = state
        self._cap = self.compression * 2
