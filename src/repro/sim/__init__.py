"""Online replay simulator.

The paper evaluates all methods by "simulat[ing] an online environment
where our measured real-world metrics from completed task executions can
be incorporated into the learning process" (§III-A).  This package is
that environment:

- :mod:`repro.sim.interface` -- the predictor contract every method
  (Sizey and all baselines) implements, and the task-submission view
  that hides ground truth from predictors.
- :mod:`repro.sim.engine` -- the replay loop: predict, allocate, execute
  under strict limits, retry on failure, learn online.
- :mod:`repro.sim.results` -- per-run results and aggregation.
- :mod:`repro.sim.runner` -- the (workflow x method) experiment grid with
  optional process parallelism.
"""

from repro.sim.engine import OnlineSimulator
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.sim.results import SimulationResult, aggregate_results
from repro.sim.runner import run_grid

__all__ = [
    "MemoryPredictor",
    "TaskSubmission",
    "OnlineSimulator",
    "SimulationResult",
    "aggregate_results",
    "run_grid",
]
