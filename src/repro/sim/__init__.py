"""Online replay simulator.

The paper evaluates all methods by "simulat[ing] an online environment
where our measured real-world metrics from completed task executions can
be incorporated into the learning process" (§III-A).  This package is
that environment:

- :mod:`repro.sim.interface` -- the predictor contract every method
  (Sizey and all baselines) implements — including the API v2 batch
  prediction and trace-lifecycle hooks — and the task-submission view
  that hides ground truth from predictors.
- :mod:`repro.sim.backends` -- pluggable execution semantics behind the
  :class:`SimulatorBackend` protocol: the paper-faithful serialized
  ``"replay"`` loop and the kernel-driven discrete-``"event"`` engine
  that measures queueing wait, makespan, and node utilization.
- :mod:`repro.sim.kernel` -- the unified discrete-event simulation
  kernel: one clock, typed event heap, and sizing lifecycle shared by
  the flat event backend and the DAG engine, with pluggable
  :class:`~repro.sim.kernel.collectors.MetricsCollector` objects and
  kernel-level node-drain scenarios (:class:`NodeOutage`).
- :mod:`repro.sim.engine` -- the :class:`OnlineSimulator` facade that
  pairs a trace with a cluster and a backend.
- :mod:`repro.sim.results` -- per-run results (plus
  :class:`ClusterMetrics` from the event backend), aggregation, and the
  canonical :func:`result_to_dict` export the golden regression tests
  pin.
- :mod:`repro.sim.runner` -- the (workflow x method) experiment grid with
  optional process parallelism and backend selection.
- :mod:`repro.sim.arrivals` -- every arrival model: per-task (fixed
  interval, Poisson, bursty) and whole-workflow
  (:class:`WorkflowArrivals`), all deterministic under a fixed seed.
- :mod:`repro.sim.errors` -- typed simulator errors such as
  :class:`UnschedulableTaskError`.

The event backend additionally supports DAG-aware multi-workflow
scheduling (``dag=`` / ``workflow_arrival=``), implemented by
:mod:`repro.sched` as a driver over the same kernel, which populates
:class:`WorkflowMetrics` (per-workflow makespan, critical-path lower
bound, stretch) on the result.
"""

from repro.sim.arrivals import (
    ArrivalModel,
    BurstyArrivals,
    FixedArrivals,
    PoissonArrivals,
    WorkflowArrivals,
    parse_arrival,
    parse_workflow_arrival,
)
from repro.sim.backends import (
    EventDrivenBackend,
    ReplayBackend,
    SimulatorBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.sim.engine import OnlineSimulator
from repro.sim.errors import UnschedulableTaskError
from repro.sim.kernel import (
    BaseCollector,
    ClusterMetricsCollector,
    MetricsCollector,
    NodeOutage,
    SimulationKernel,
    WastageCollector,
    WorkflowMetricsCollector,
    parse_node_outage,
)
from repro.sim.interface import MemoryPredictor, TaskSubmission, TraceContext
from repro.sim.results import (
    ClusterMetrics,
    SimulationResult,
    WorkflowInstanceMetrics,
    WorkflowMetrics,
    aggregate_results,
    result_to_dict,
)
from repro.sim.runner import run_cell, run_grid

__all__ = [
    "MemoryPredictor",
    "TaskSubmission",
    "TraceContext",
    "OnlineSimulator",
    "SimulatorBackend",
    "ReplayBackend",
    "EventDrivenBackend",
    "register_backend",
    "backend_names",
    "resolve_backend",
    "SimulationResult",
    "ClusterMetrics",
    "WorkflowInstanceMetrics",
    "WorkflowMetrics",
    "UnschedulableTaskError",
    "aggregate_results",
    "run_cell",
    "run_grid",
    "ArrivalModel",
    "FixedArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "parse_arrival",
    "WorkflowArrivals",
    "parse_workflow_arrival",
    "SimulationKernel",
    "MetricsCollector",
    "BaseCollector",
    "WastageCollector",
    "ClusterMetricsCollector",
    "WorkflowMetricsCollector",
    "NodeOutage",
    "parse_node_outage",
    "result_to_dict",
]
