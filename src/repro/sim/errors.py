"""Typed simulator errors.

:class:`UnschedulableTaskError` subclasses :class:`RuntimeError` so
pre-existing callers that caught the generic retry-exhaustion error keep
working, while new callers can detect the specific failure mode — a task
whose true peak memory exceeds every node's capacity, which no amount of
retry doubling can ever fix.
"""

from __future__ import annotations

__all__ = ["UnschedulableTaskError"]


class UnschedulableTaskError(RuntimeError):
    """A task's true peak memory exceeds every node's capacity.

    Raised at allocation-clamp time (before any futile retry doubling)
    by both simulation backends.  ``capacity_mb`` is the capacity of the
    *largest* node in the cluster — on a heterogeneous cluster, the only
    node type that could ever have hosted the task.  Carries the
    offending task type and its true peak for programmatic inspection.
    """

    def __init__(
        self,
        *,
        task_type: str,
        instance_id: int,
        peak_memory_mb: float,
        capacity_mb: float,
    ) -> None:
        self.task_type = task_type
        self.instance_id = instance_id
        self.peak_memory_mb = peak_memory_mb
        self.capacity_mb = capacity_mb
        super().__init__(
            f"task instance {instance_id} of type {task_type!r} is "
            f"unschedulable: true peak {peak_memory_mb:.0f} MB exceeds "
            f"the largest node capacity {capacity_mb:.0f} MB"
        )
