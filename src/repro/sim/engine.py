"""The online simulator facade.

:class:`OnlineSimulator` pairs a workflow trace with a cluster model and
delegates the actual execution semantics to a pluggable
:class:`~repro.sim.backends.base.SimulatorBackend`:

- ``backend="replay"`` (default) — the paper's serialized per-task
  replay loop, bit-for-bit identical to the original engine.
- ``backend="event"`` — a discrete-event engine where tasks genuinely
  overlap on nodes, adding queueing wait, makespan, and per-node
  utilization to the result.

Any object satisfying the backend protocol can be passed directly, and
new backends registered via
:func:`repro.sim.backends.register_backend` become addressable by name.
"""

from __future__ import annotations

from repro.cluster.manager import ResourceManager
from repro.cluster.policies import PlacementPolicy
from repro.sim.backends import SimulatorBackend, resolve_backend
from repro.sim.backends.base import MAX_ATTEMPTS as _MAX_ATTEMPTS  # noqa: F401
from repro.sim.interface import MemoryPredictor
from repro.sim.results import SimulationResult
from repro.workflow.task import WorkflowTrace
from repro.workload.base import WorkloadSource, as_source

__all__ = ["OnlineSimulator"]


class OnlineSimulator:
    """Replay one workload against one memory predictor.

    Parameters
    ----------
    trace:
        The workload to replay: a materialized
        :class:`~repro.workflow.task.WorkflowTrace` (instances in
        submission order), a :class:`~repro.workload.base.WorkloadSource`,
        or a workload spec string such as ``"synthetic:iwd"`` /
        ``"wfcommons:traces/blast.json"``.  The equivalent keyword
        ``workload=`` reads better when not passing a trace object.
    manager:
        Cluster model; defaults to the paper's 8-node 128 GB cluster.
        Mutually exclusive with ``cluster``.
    time_to_failure:
        Fraction of a task's runtime after which an under-allocated task
        is killed (paper parameter; 1.0 in Fig. 8a, 0.5 in Fig. 8b).
    backend:
        Execution semantics: a registered backend name (``"replay"`` or
        ``"event"``) or a ready-made backend instance.
    cluster:
        Convenience shorthand for ``manager``: a cluster spec string
        such as ``"128g:4,256g:4"`` (see
        :func:`repro.cluster.machine.parse_cluster_spec`).
    placement:
        Node-placement policy for the built manager (``"first-fit"``,
        ``"best-fit"``, ``"worst-fit"``, or a policy instance).  Only
        used when the manager is built here — an explicit ``manager``
        carries its own policy.
    dag:
        Switch to DAG-aware scheduling (event backend only): ``"trace"``
        (the DAG exported on the trace), ``"linear"``, or a
        :class:`~repro.workflow.dag.WorkflowDAG`.  See
        :class:`~repro.sim.backends.event.EventDrivenBackend`.
    workflow_arrival:
        Multi-workflow injection spec (event backend only), e.g.
        ``"4@poisson:2"`` — implies DAG-aware scheduling.
    node_outage:
        Scheduled node drain windows (event backend only, flat or DAG):
        one ``"start:duration:node"`` spec or a list of them — the named
        node stops accepting placements for the window and its running
        tasks are preempted and re-queued.
    stream_collectors:
        Streaming-collector mode (event backend only): bounded-memory
        online aggregates and sketches instead of per-task logs; the
        result carries a ``summary`` but no raw logs.
    spill:
        Optional JSONL path (event backend only): prediction logs are
        appended there in completion order.
    profile:
        Enable the kernel phase profiler (event backend only): the
        result's ``profile`` attribute carries a
        :class:`~repro.obs.profile.KernelProfile` with per-phase
        wall-time/call counters.  Measurement only.
    trace_path / trace_limit:
        Write a Chrome ``trace_event`` JSON timeline of the run to
        ``trace_path`` (event backend only); ``trace_limit`` bounds the
        retained events with a ring buffer.
    """

    def __init__(
        self,
        trace: WorkloadSource | WorkflowTrace | str | None = None,
        manager: ResourceManager | None = None,
        time_to_failure: float = 1.0,
        backend: str | SimulatorBackend = "replay",
        cluster: str | None = None,
        placement: str | PlacementPolicy = "first-fit",
        dag: object | None = None,
        workflow_arrival: object | None = None,
        node_outage: object | None = None,
        workload: WorkloadSource | WorkflowTrace | str | None = None,
        stream_collectors: bool = False,
        spill: str | None = None,
        profile: bool = False,
        trace_path: str | None = None,
        trace_limit: int | None = None,
    ) -> None:
        if not 0.0 < time_to_failure <= 1.0:
            raise ValueError(
                f"time_to_failure must be in (0, 1], got {time_to_failure}"
            )
        if manager is not None and cluster is not None:
            raise ValueError("pass either manager or cluster, not both")
        if (trace is None) == (workload is None):
            raise ValueError(
                "pass exactly one of trace (positional) or workload="
            )
        self.source = as_source(workload if workload is not None else trace)
        if manager is not None:
            self.manager = manager
        elif cluster is not None:
            self.manager = ResourceManager.from_spec(
                cluster, placement=placement
            )
        else:
            self.manager = ResourceManager(placement=placement)
        self.time_to_failure = time_to_failure
        self.backend = resolve_backend(backend)
        if (
            dag is not None
            or workflow_arrival is not None
            or node_outage is not None
        ):
            configure = getattr(self.backend, "with_workflow_options", None)
            if configure is None:
                raise ValueError(
                    f"dag/workflow_arrival/node_outage require a "
                    f"kernel-driven backend (the event backend); got "
                    f"{self.backend.name!r}"
                )
            self.backend = configure(
                dag=dag,
                workflow_arrival=workflow_arrival,
                node_outage=node_outage,
            )
        if stream_collectors or spill is not None:
            scale = getattr(self.backend, "with_scale_options", None)
            if scale is None:
                raise ValueError(
                    f"stream_collectors/spill require a kernel-driven "
                    f"backend (the event backend); got {self.backend.name!r}"
                )
            self.backend = scale(
                stream_collectors=stream_collectors or None, spill=spill
            )
        if profile or trace_path is not None:
            obs = getattr(self.backend, "with_obs_options", None)
            if obs is None:
                raise ValueError(
                    f"profile/trace require a kernel-driven backend "
                    f"(the event backend); got {self.backend.name!r}"
                )
            self.backend = obs(
                profile=profile or None,
                trace=trace_path,
                trace_limit=trace_limit,
            )

    @property
    def trace(self) -> WorkflowTrace:
        """The workload's materialized trace (back-compat accessor)."""
        return self.source.trace()

    def run(
        self,
        predictor: MemoryPredictor,
        *,
        checkpoint: str | None = None,
        checkpoint_every: float | None = None,
        stop_after: float | None = None,
    ) -> SimulationResult | None:
        """Replay the whole workload; returns the filled-in result object.

        The checkpoint keywords (event backend only) drive the run in
        pausable slices via
        :func:`repro.sim.kernel.checkpoint.drive_kernel`: ``checkpoint``
        names the file overwritten at each pause, ``checkpoint_every``
        the slice length in simulation hours, and ``stop_after`` stops
        the run for good at that simulation time — returning ``None``
        with the checkpoint holding the paused state.  Resume with
        :meth:`resume`.
        """
        if checkpoint is None and checkpoint_every is None and stop_after is None:
            return self.backend.run(
                self.source, predictor, self.manager, self.time_to_failure
            )
        build = getattr(self.backend, "build_kernel", None)
        if build is None:
            raise ValueError(
                f"checkpoint/stop_after require a kernel-driven backend "
                f"(the event backend); got {self.backend.name!r}"
            )
        from repro.sim.kernel.checkpoint import drive_kernel

        kernel = build(
            self.source, predictor, self.manager, self.time_to_failure
        )
        return drive_kernel(
            kernel,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            stop_after=stop_after,
        )

    @staticmethod
    def resume(
        path: str,
        *,
        checkpoint: str | None = None,
        checkpoint_every: float | None = None,
        stop_after: float | None = None,
    ) -> SimulationResult | None:
        """Continue a checkpointed run; bit-for-bit equal to uninterrupted.

        ``checkpoint`` defaults to overwriting the file being resumed
        from when slicing is requested via ``checkpoint_every``.
        """
        from repro.sim.kernel.checkpoint import drive_kernel, load_checkpoint

        kernel = load_checkpoint(path)
        if checkpoint is None and checkpoint_every is not None:
            checkpoint = path
        return drive_kernel(
            kernel,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            stop_after=stop_after,
        )
