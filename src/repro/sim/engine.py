"""The online replay loop.

Replays a workflow trace in submission order against one predictor:

1. Build the predictor-visible :class:`TaskSubmission` (Phase 1).
2. Ask the predictor for an allocation (Phase 2).
3. Execute under strict limits (assumption A3) with the configured
   time-to-failure; on failure, record wastage, inform the predictor,
   get a retry allocation, repeat.
4. On success, record wastage and feed the completion record back for
   online learning (Phase 3).

The retry loop is owned by the simulator so all methods are charged
identically for failures.
"""

from __future__ import annotations

from repro.cluster.accounting import WastageLedger
from repro.cluster.manager import ResourceManager
from repro.provenance.records import TaskRecord
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.sim.results import PredictionLog, SimulationResult
from repro.workflow.task import WorkflowTrace

__all__ = ["OnlineSimulator"]

#: Hard cap on attempts per task; doubling from 1 MB exceeds any node
#: capacity well before this, so hitting it indicates a predictor bug.
_MAX_ATTEMPTS = 30


class OnlineSimulator:
    """Replay one workflow trace against one memory predictor.

    Parameters
    ----------
    trace:
        The workflow trace to replay (instances in submission order).
    manager:
        Cluster model; defaults to the paper's 8-node 128 GB cluster.
    time_to_failure:
        Fraction of a task's runtime after which an under-allocated task
        is killed (paper parameter; 1.0 in Fig. 8a, 0.5 in Fig. 8b).
    """

    def __init__(
        self,
        trace: WorkflowTrace,
        manager: ResourceManager | None = None,
        time_to_failure: float = 1.0,
    ) -> None:
        if not 0.0 < time_to_failure <= 1.0:
            raise ValueError(
                f"time_to_failure must be in (0, 1], got {time_to_failure}"
            )
        self.trace = trace
        self.manager = manager if manager is not None else ResourceManager()
        self.time_to_failure = time_to_failure

    def run(self, predictor: MemoryPredictor) -> SimulationResult:
        """Replay the whole trace; returns the filled-in result object."""
        ledger = WastageLedger()
        logs: list[PredictionLog] = []

        for timestamp, inst in enumerate(self.trace):
            submission = TaskSubmission.from_instance(inst, timestamp)
            allocation = self.manager.clamp_allocation(
                float(predictor.predict(submission))
            )
            first_allocation = allocation
            attempt = 1
            while True:
                if attempt > _MAX_ATTEMPTS:
                    raise RuntimeError(
                        f"task {inst.instance_id} ({inst.task_type.key}) did "
                        f"not finish within {_MAX_ATTEMPTS} attempts; "
                        f"last allocation {allocation:.0f} MB, "
                        f"peak {inst.peak_memory_mb:.0f} MB"
                    )
                verdict = self.manager.execute_attempt(
                    allocated_mb=allocation,
                    true_peak_mb=inst.peak_memory_mb,
                    runtime_hours=inst.runtime_hours,
                    time_to_failure=self.time_to_failure,
                )
                if verdict.success:
                    ledger.record_success(
                        task_type=inst.task_type.name,
                        workflow=inst.task_type.workflow,
                        instance_id=inst.instance_id,
                        attempt=attempt,
                        allocated_mb=verdict.allocated_mb,
                        peak_memory_mb=inst.peak_memory_mb,
                        runtime_hours=inst.runtime_hours,
                    )
                    predictor.observe(
                        TaskRecord(
                            task_type=inst.task_type.name,
                            workflow=inst.task_type.workflow,
                            machine=inst.machine,
                            timestamp=timestamp,
                            input_size_mb=inst.input_size_mb,
                            peak_memory_mb=inst.peak_memory_mb,
                            runtime_hours=inst.runtime_hours,
                            success=True,
                            attempt=attempt,
                            allocated_mb=verdict.allocated_mb,
                            instance_id=inst.instance_id,
                        )
                    )
                    break

                ledger.record_failure(
                    task_type=inst.task_type.name,
                    workflow=inst.task_type.workflow,
                    instance_id=inst.instance_id,
                    attempt=attempt,
                    allocated_mb=verdict.allocated_mb,
                    peak_memory_mb=inst.peak_memory_mb,
                    time_to_failure_hours=verdict.occupied_hours,
                )
                # The failure record's "peak" is the exceeded limit — a
                # lower bound, flagged via success=False.
                predictor.observe(
                    TaskRecord(
                        task_type=inst.task_type.name,
                        workflow=inst.task_type.workflow,
                        machine=inst.machine,
                        timestamp=timestamp,
                        input_size_mb=inst.input_size_mb,
                        peak_memory_mb=verdict.allocated_mb,
                        runtime_hours=verdict.occupied_hours,
                        success=False,
                        attempt=attempt,
                        allocated_mb=verdict.allocated_mb,
                        instance_id=inst.instance_id,
                    )
                )
                next_allocation = float(
                    predictor.on_failure(submission, verdict.allocated_mb, attempt)
                )
                # Retries must strictly grow or the loop cannot terminate;
                # a non-growing proposal falls back to doubling.
                if next_allocation <= verdict.allocated_mb:
                    next_allocation = verdict.allocated_mb * 2.0
                allocation = self.manager.clamp_allocation(next_allocation)
                attempt += 1

            logs.append(
                PredictionLog(
                    instance_id=inst.instance_id,
                    task_type=inst.task_type.name,
                    workflow=inst.task_type.workflow,
                    timestamp=timestamp,
                    input_size_mb=inst.input_size_mb,
                    true_peak_mb=inst.peak_memory_mb,
                    true_runtime_hours=inst.runtime_hours,
                    first_allocation_mb=first_allocation,
                    final_allocation_mb=allocation,
                    n_attempts=attempt,
                )
            )

        return SimulationResult(
            workflow=self.trace.workflow,
            method=predictor.name,
            time_to_failure=self.time_to_failure,
            ledger=ledger,
            predictions=logs,
        )
