"""Simulation results and cross-workflow aggregation."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from operator import itemgetter

import numpy as np

from repro.cluster.accounting import WastageLedger
from repro.sim.sketches import QuantileSketch, RunningStat

__all__ = [
    "PredictionLog",
    "LOG_FIELDS",
    "ClusterMetrics",
    "WorkflowInstanceMetrics",
    "WorkflowMetrics",
    "RunSummary",
    "SimulationResult",
    "aggregate_results",
    "merge_summaries",
    "result_to_dict",
    "summary_to_dict",
]


@dataclass(frozen=True)
class PredictionLog:
    """Per-task-instance summary emitted by the simulator."""

    instance_id: int
    task_type: str
    workflow: str
    timestamp: int
    input_size_mb: float
    true_peak_mb: float
    true_runtime_hours: float
    first_allocation_mb: float
    final_allocation_mb: float
    n_attempts: int

    @property
    def failed_attempts(self) -> int:
        return self.n_attempts - 1

    @property
    def first_attempt_over_mb(self) -> float:
        """Over-allocation of the first attempt (negative = underprediction)."""
        return self.first_allocation_mb - self.true_peak_mb


#: :class:`PredictionLog` field names in declaration order — the schema
#: of the compact row tuples collectors buffer during a run (and of the
#: JSONL spill lines) before the dataclass view materializes.
LOG_FIELDS = (
    "instance_id",
    "task_type",
    "workflow",
    "timestamp",
    "input_size_mb",
    "true_peak_mb",
    "true_runtime_hours",
    "first_allocation_mb",
    "final_allocation_mb",
    "n_attempts",
)

_ROW_TIMESTAMP = itemgetter(LOG_FIELDS.index("timestamp"))


@dataclass(frozen=True)
class ClusterMetrics:
    """Cluster-level observables of an event-driven simulation.

    Only the event-driven backend can measure these — they require tasks
    to actually overlap on nodes.  The replay backend leaves
    :attr:`SimulationResult.cluster` as ``None``.

    Attributes
    ----------
    makespan_hours:
        Wall-clock span from the first submission to the last completion.
    total_queue_wait_hours / mean_queue_wait_hours / max_queue_wait_hours:
        Time tasks spent waiting in the ready queue, summed over *every*
        dispatch — a task re-queued after a kill is charged for its
        second wait too, so a busy cluster's retry delays show up here.
    node_busy_memory_gbh:
        Per node, the integral of allocated memory over time (GB·h).
    node_capacity_gb:
        Per node, its own memory capacity in GB — the denominator of the
        utilization below; heterogeneous clusters differ per node.
    node_utilization:
        Per node, busy memory-GBh divided by *that node's*
        capacity * makespan (in [0, 1]; 0 when the makespan is zero).
    node_timelines:
        Per node, the step function of allocated MB over time as
        ``(time_hours, allocated_mb_after_change)`` points.
    """

    makespan_hours: float
    total_queue_wait_hours: float
    mean_queue_wait_hours: float
    max_queue_wait_hours: float
    node_busy_memory_gbh: dict[int, float]
    node_utilization: dict[int, float]
    node_timelines: dict[int, list[tuple[float, float]]]
    node_capacity_gb: dict[int, float] = field(default_factory=dict)

    @property
    def mean_utilization(self) -> float:
        """Cluster-wide mean of the per-node utilization fractions."""
        if not self.node_utilization:
            return 0.0
        return float(np.mean(list(self.node_utilization.values())))


@dataclass(frozen=True)
class WorkflowInstanceMetrics:
    """Workflow-level observables of one submitted workflow instance.

    Only the DAG-aware scheduling engine can measure these — they
    require whole workflows to move through the cluster as units.

    Attributes
    ----------
    key:
        Unique label of the instance, e.g. ``"rnaseq#2"``.
    workflow / tenant:
        Workflow name and owning user.
    submit_time_hours:
        When the whole instance was handed to the scheduler.
    first_dispatch_hours / finish_time_hours:
        First task dispatch and last task completion (absolute times).
    makespan_hours:
        ``finish - submit`` — what the submitting user experiences.
    critical_path_hours:
        Zero-contention, infinite-cluster lower bound on the makespan
        (heaviest DAG path weighing each type by its slowest instance).
    stretch:
        ``makespan / critical_path`` — the user-facing slowdown factor
        from contention, queueing, and sizing failures (>= 1 up to
        floating noise; 1 means the run was as fast as the DAG allows).
    queue_wait_hours:
        Ready-queue wait summed over every dispatch of this instance.
    wastage_gbh:
        Memory wastage attributed to this instance's attempts.
    n_tasks / n_failures:
        Task-instance count and failed-attempt count.
    """

    key: str
    workflow: str
    tenant: str
    submit_time_hours: float
    first_dispatch_hours: float
    finish_time_hours: float
    makespan_hours: float
    critical_path_hours: float
    stretch: float
    queue_wait_hours: float
    wastage_gbh: float
    n_tasks: int
    n_failures: int


@dataclass(frozen=True)
class WorkflowMetrics:
    """Per-workflow-instance metrics of a DAG-aware simulation."""

    instances: list[WorkflowInstanceMetrics]

    @property
    def n_instances(self) -> int:
        return len(self.instances)

    @property
    def mean_makespan_hours(self) -> float:
        if not self.instances:
            return 0.0
        return float(np.mean([w.makespan_hours for w in self.instances]))

    @property
    def max_makespan_hours(self) -> float:
        if not self.instances:
            return 0.0
        return float(max(w.makespan_hours for w in self.instances))

    @property
    def mean_stretch(self) -> float:
        if not self.instances:
            return 0.0
        return float(np.mean([w.stretch for w in self.instances]))

    @property
    def max_stretch(self) -> float:
        if not self.instances:
            return 0.0
        return float(max(w.stretch for w in self.instances))

    @property
    def total_queue_wait_hours(self) -> float:
        return float(sum(w.queue_wait_hours for w in self.instances))

    def by_tenant(self) -> dict[str, list[WorkflowInstanceMetrics]]:
        """Instances grouped by owning tenant, insertion-ordered."""
        out: dict[str, list[WorkflowInstanceMetrics]] = {}
        for w in self.instances:
            out.setdefault(w.tenant, []).append(w)
        return out


@dataclass
class RunSummary:
    """Compact, mergeable summary of one run — no per-task lists.

    Built online by the kernel's collectors (streaming or not, the same
    update sequence) so the numbers are identical whether raw logs were
    kept, spilled to JSONL, or dropped.  Distributions are carried as
    :class:`~repro.sim.sketches.QuantileSketch` /
    :class:`~repro.sim.sketches.RunningStat` objects, which is what
    makes summaries *mergeable* across shards
    (:func:`merge_summaries`) and serializable in checkpoints.  The
    JSON-able view is :func:`summary_to_dict`; two runs are
    summary-identical iff their dicts are equal.
    """

    workflow: str = ""
    method: str = ""
    time_to_failure: float = 1.0
    # -- task/attempt accounting (mirrors the ledger's aggregates) ------
    n_tasks: int = 0
    n_attempts: int = 0
    n_failures: int = 0
    total_wastage_gbh: float = 0.0
    total_runtime_hours: float = 0.0
    wastage_by_task_type: dict[str, float] = field(default_factory=dict)
    failures_by_task_type: dict[str, int] = field(default_factory=dict)
    #: Sum/count of first-attempt allocated/peak ratios over successful
    #: first predictions — the exact over-allocation-ratio mean, online.
    first_ratio_sum: float = 0.0
    first_ratio_n: int = 0
    #: Per-attempt wastage (GBh) distribution.
    wastage_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    #: Arrival-to-success latency (hours) distribution.
    turnaround_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    # -- cluster section (event backend only; n_nodes marks presence) ---
    n_nodes: int | None = None
    makespan_hours: float = 0.0
    queue_wait: RunningStat = field(default_factory=RunningStat)
    queue_wait_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    #: Sum of per-node utilization fractions (divide by n_nodes).
    utilization_sum: float = 0.0
    # -- workflow section (DAG engine only; None marks absence) ---------
    n_workflow_instances: int | None = None
    workflow_makespan: RunningStat = field(default_factory=RunningStat)
    workflow_stretch: RunningStat = field(default_factory=RunningStat)
    workflow_queue_wait_hours: float = 0.0

    @property
    def over_allocation_ratio(self) -> float:
        """Mean allocated/used ratio of successful first attempts."""
        if self.first_ratio_n == 0:
            return float("nan")
        return self.first_ratio_sum / self.first_ratio_n

    @property
    def mean_utilization(self) -> float:
        if not self.n_nodes:
            return 0.0
        return self.utilization_sum / self.n_nodes

    def merge(self, other: "RunSummary") -> "RunSummary":
        """Fold another shard's summary into this one."""
        self.n_tasks += other.n_tasks
        self.n_attempts += other.n_attempts
        self.n_failures += other.n_failures
        self.total_wastage_gbh += other.total_wastage_gbh
        self.total_runtime_hours += other.total_runtime_hours
        for t, w in other.wastage_by_task_type.items():
            self.wastage_by_task_type[t] = (
                self.wastage_by_task_type.get(t, 0.0) + w
            )
        for t, n in other.failures_by_task_type.items():
            self.failures_by_task_type[t] = (
                self.failures_by_task_type.get(t, 0) + n
            )
        self.first_ratio_sum += other.first_ratio_sum
        self.first_ratio_n += other.first_ratio_n
        self.wastage_sketch.merge(other.wastage_sketch)
        self.turnaround_sketch.merge(other.turnaround_sketch)
        if other.n_nodes is not None:
            self.n_nodes = (self.n_nodes or 0) + other.n_nodes
            self.makespan_hours = max(
                self.makespan_hours, other.makespan_hours
            )
            self.queue_wait.merge(other.queue_wait)
            self.queue_wait_sketch.merge(other.queue_wait_sketch)
            self.utilization_sum += other.utilization_sum
        if other.n_workflow_instances is not None:
            self.n_workflow_instances = (
                self.n_workflow_instances or 0
            ) + other.n_workflow_instances
            self.workflow_makespan.merge(other.workflow_makespan)
            self.workflow_stretch.merge(other.workflow_stretch)
            self.workflow_queue_wait_hours += other.workflow_queue_wait_hours
        return self


def merge_summaries(summaries: "list[RunSummary]") -> RunSummary:
    """Merge per-shard summaries into one (shard order = merge order)."""
    if not summaries:
        raise ValueError("no summaries to merge")
    merged = RunSummary(
        workflow=summaries[0].workflow,
        method=summaries[0].method,
        time_to_failure=summaries[0].time_to_failure,
    )
    for s in summaries:
        merged.merge(s)
    return merged


def summary_to_dict(summary: RunSummary) -> dict[str, object]:
    """Canonical JSON-able view of a :class:`RunSummary`.

    Deterministic ordering, floats untouched — resumed-after-interrupt
    runs must produce a dict *equal* to the uninterrupted run's, which
    the checkpoint tests and the CI scale-smoke step assert.
    """
    out: dict[str, object] = {
        "format": "repro-summary",
        "workflow": summary.workflow,
        "method": summary.method,
        "time_to_failure": summary.time_to_failure,
        "tasks": {
            "n_tasks": summary.n_tasks,
            "n_attempts": summary.n_attempts,
            "n_failures": summary.n_failures,
            "total_wastage_gbh": summary.total_wastage_gbh,
            "total_runtime_hours": summary.total_runtime_hours,
            "over_allocation_ratio": (
                None
                if summary.first_ratio_n == 0
                else summary.over_allocation_ratio
            ),
            "wastage_by_task_type": dict(
                sorted(summary.wastage_by_task_type.items())
            ),
            "failures_by_task_type": dict(
                sorted(summary.failures_by_task_type.items())
            ),
            "wastage_quantiles": summary.wastage_sketch.quantiles(),
            "turnaround_quantiles": summary.turnaround_sketch.quantiles(),
        },
        "cluster": None,
        "workflows": None,
    }
    if summary.n_nodes is not None:
        out["cluster"] = {
            "n_nodes": summary.n_nodes,
            "makespan_hours": summary.makespan_hours,
            "n_dispatches": summary.queue_wait.n,
            "total_queue_wait_hours": summary.queue_wait.total,
            "mean_queue_wait_hours": summary.queue_wait.mean,
            "max_queue_wait_hours": (
                summary.queue_wait.max if summary.queue_wait.n else 0.0
            ),
            "queue_wait_quantiles": summary.queue_wait_sketch.quantiles(),
            "mean_utilization": summary.mean_utilization,
        }
    if summary.n_workflow_instances is not None:
        out["workflows"] = {
            "n_instances": summary.n_workflow_instances,
            "mean_makespan_hours": summary.workflow_makespan.mean,
            "max_makespan_hours": (
                summary.workflow_makespan.max
                if summary.workflow_makespan.n
                else 0.0
            ),
            "mean_stretch": summary.workflow_stretch.mean,
            "max_stretch": (
                summary.workflow_stretch.max
                if summary.workflow_stretch.n
                else 0.0
            ),
            "total_queue_wait_hours": summary.workflow_queue_wait_hours,
        }
    return out


class SimulationResult:
    """Everything measured while one method ran one workflow trace.

    Attributes
    ----------
    cluster:
        Cluster-level metrics; filled in by the event-driven backend only.
    workflows:
        Per-workflow-instance metrics; filled in by the DAG-aware
        scheduling engine only (``dag=`` / ``workflow_arrival=``).
    summary:
        Compact mergeable summary; filled in by every kernel run
        (streaming or not).  The only per-task-complete view a
        ``stream_collectors=True`` run carries.
    profile:
        Kernel phase profile (:class:`~repro.obs.profile.KernelProfile`);
        filled in only when the kernel ran with ``profile=True``.  Typed
        loosely to keep the result module free of obs imports.

    ``predictions`` is lazy: the kernel's wastage collector hands over
    compact :data:`LOG_FIELDS`-ordered row tuples, and the sorted
    :class:`PredictionLog` list is built (and cached) on first access —
    so result assembly stays off the simulation's timed path.  Assigning
    a list directly works as before and discards any pending rows.
    """

    def __init__(
        self,
        workflow: str,
        method: str,
        time_to_failure: float,
        ledger: WastageLedger,
        predictions: list[PredictionLog] | None = None,
        cluster: ClusterMetrics | None = None,
        workflows: WorkflowMetrics | None = None,
        summary: RunSummary | None = None,
        profile: "object | None" = None,
    ) -> None:
        self.workflow = workflow
        self.method = method
        self.time_to_failure = time_to_failure
        self.ledger = ledger
        self.cluster = cluster
        self.workflows = workflows
        self.summary = summary
        self.profile = profile
        self._prediction_rows: list[tuple] | None = None
        self._predictions: list[PredictionLog] = (
            list(predictions) if predictions is not None else []
        )

    @property
    def predictions(self) -> list[PredictionLog]:
        rows = self._prediction_rows
        if rows is not None:
            self._prediction_rows = None
            # Stable sort by timestamp — rows arrive in completion
            # order, exactly as the eager path sorted its log objects.
            rows = sorted(rows, key=_ROW_TIMESTAMP)
            new = object.__new__
            logs = self._predictions
            append = logs.append
            for row in rows:
                log = new(PredictionLog)
                # ``__dict__`` fill skips the frozen dataclass's
                # per-field ``object.__setattr__``.
                log.__dict__.update(zip(LOG_FIELDS, row))
                append(log)
        return self._predictions

    @predictions.setter
    def predictions(self, value: list[PredictionLog]) -> None:
        self._prediction_rows = None
        self._predictions = value

    @property
    def total_wastage_gbh(self) -> float:
        return self.ledger.total_wastage_gbh

    @property
    def total_runtime_hours(self) -> float:
        return self.ledger.total_runtime_hours

    @property
    def num_failures(self) -> int:
        return self.ledger.num_failures

    @property
    def num_tasks(self) -> int:
        if not self.predictions and self.summary is not None:
            # Streaming collectors drop the prediction logs; the online
            # summary still knows how many tasks succeeded.
            return self.summary.n_tasks
        return len(self.predictions)

    def failures_by_task_type(self) -> dict[str, int]:
        return self.ledger.failures_by_task_type()

    def wastage_by_task_type(self) -> dict[str, float]:
        return self.ledger.wastage_by_task_type()

    def failure_distribution(self) -> np.ndarray:
        """Failures aggregated by task type (the Fig. 8c box-plot data).

        Includes zero entries for task types that never failed, so the
        distribution is over *all* task types of the workflow.
        """
        types = {p.task_type for p in self.predictions}
        per_type = self.ledger.failures_by_task_type()
        return np.array(
            [per_type.get(t, 0) for t in sorted(types)], dtype=np.int64
        )

    def over_allocation_ratio(self) -> float:
        """Mean allocated/used ratio of successful first attempts."""
        if not self.predictions and self.summary is not None:
            return self.summary.over_allocation_ratio
        ratios = [
            p.first_allocation_mb / p.true_peak_mb
            for p in self.predictions
            if p.first_allocation_mb >= p.true_peak_mb
        ]
        return float(np.mean(ratios)) if ratios else float("nan")


def result_to_dict(result: SimulationResult) -> dict[str, object]:
    """Canonical JSON-able view of a :class:`SimulationResult`.

    Every measured quantity appears, in deterministic order, with floats
    untouched (JSON round-trips Python floats exactly), so two results
    are bit-for-bit identical iff their dicts are equal.  This is what
    the golden regression tests pin across refactors of the simulation
    engines, and a convenient export format generally.
    """
    out: dict[str, object] = {
        "workflow": result.workflow,
        "method": result.method,
        "time_to_failure": result.time_to_failure,
        "attempts": [asdict(o) for o in result.ledger.outcomes],
        "predictions": [asdict(p) for p in result.predictions],
        "cluster": None,
        "workflows": None,
    }
    if result.cluster is not None:
        c = result.cluster
        out["cluster"] = {
            "makespan_hours": c.makespan_hours,
            "total_queue_wait_hours": c.total_queue_wait_hours,
            "mean_queue_wait_hours": c.mean_queue_wait_hours,
            "max_queue_wait_hours": c.max_queue_wait_hours,
            "node_busy_memory_gbh": {
                str(n): v for n, v in sorted(c.node_busy_memory_gbh.items())
            },
            "node_utilization": {
                str(n): v for n, v in sorted(c.node_utilization.items())
            },
            "node_capacity_gb": {
                str(n): v for n, v in sorted(c.node_capacity_gb.items())
            },
            "node_timelines": {
                str(n): [list(point) for point in timeline]
                for n, timeline in sorted(c.node_timelines.items())
            },
        }
    if result.workflows is not None:
        out["workflows"] = [asdict(w) for w in result.workflows.instances]
    return out


def aggregate_results(results: list[SimulationResult]) -> dict[str, object]:
    """Aggregate one method's results over multiple workflows (Fig. 8).

    Returns totals plus the pooled per-task-type failure distribution.
    """
    if not results:
        raise ValueError("no results to aggregate")
    methods = {r.method for r in results}
    if len(methods) != 1:
        raise ValueError(f"cannot aggregate across methods: {sorted(methods)}")
    failure_counts: list[int] = []
    for r in results:
        failure_counts.extend(r.failure_distribution().tolist())
    return {
        "method": results[0].method,
        "total_wastage_gbh": sum(r.total_wastage_gbh for r in results),
        "total_runtime_hours": sum(r.total_runtime_hours for r in results),
        "num_failures": sum(r.num_failures for r in results),
        "num_tasks": sum(r.num_tasks for r in results),
        "per_workflow_wastage": {r.workflow: r.total_wastage_gbh for r in results},
        "failure_distribution": np.asarray(failure_counts, dtype=np.int64),
    }
