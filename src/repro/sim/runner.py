"""Experiment grid runner: (workload x method) cells, optionally parallel.

Each cell is independent — a fresh predictor instance replays one
workload — so the grid fans out over a process pool when asked.
Predictors are supplied as zero-argument factories (not instances) so
every cell starts untrained and the work ships to workers as picklable
callables.  Workloads are equally flexible: a materialized
:class:`~repro.workflow.task.WorkflowTrace`, a
:class:`~repro.workload.base.WorkloadSource`, or a workload spec string
(``"synthetic:iwd"``, ``"wfcommons:traces/blast.json"``,
``"trace:runs/mag.jsonl"``) — spec strings are the cheapest to pickle
across the pool; workers construct the source locally.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Mapping

from repro.cluster.manager import ResourceManager
from repro.sim.backends import SimulatorBackend
from repro.sim.engine import OnlineSimulator
from repro.sim.interface import MemoryPredictor
from repro.sim.results import SimulationResult
from repro.workflow.task import WorkflowTrace
from repro.workload.base import WorkloadSource

__all__ = ["run_cell", "run_grid"]

PredictorFactory = Callable[[], MemoryPredictor]


def run_cell(
    trace: WorkloadSource | WorkflowTrace | str | None = None,
    factory: PredictorFactory | None = None,
    time_to_failure: float = 1.0,
    backend: str | SimulatorBackend = "replay",
    cluster: str | None = None,
    placement: str = "first-fit",
    dag: str | None = None,
    workflow_arrival: str | None = None,
    node_outage: str | tuple[str, ...] | None = None,
    workload: WorkloadSource | WorkflowTrace | str | None = None,
) -> SimulationResult:
    """Run one (workload, method) cell with a fresh predictor and cluster.

    The workload goes in either positionally (``trace``, the historical
    name) or as ``workload=`` — a trace object, a source, or a spec
    string.  ``cluster`` is a spec string (``"128g:4,256g:4"``; ``None``
    = the paper's 8-node 128 GB cluster) and ``placement`` the
    node-placement policy name — both are plain strings so cells stay
    picklable for the process pool.  ``dag`` (``"trace"`` /
    ``"linear"``) and ``workflow_arrival`` (e.g. ``"4@poisson:2"``)
    switch the event backend into DAG-aware multi-workflow scheduling,
    and ``node_outage`` (``"start:duration:node"`` spec(s)) schedules
    node drains — also plain strings for picklability.
    """
    if factory is None:
        raise ValueError("run_cell requires a predictor factory")
    if (trace is None) == (workload is None):
        raise ValueError("pass exactly one of trace or workload=")
    if cluster is not None:
        manager = ResourceManager.from_spec(cluster, placement=placement)
    else:
        manager = ResourceManager(placement=placement)
    sim = OnlineSimulator(
        trace if trace is not None else workload,
        manager=manager,
        time_to_failure=time_to_failure,
        backend=backend,
        dag=dag,
        workflow_arrival=workflow_arrival,
        node_outage=node_outage,
    )
    return sim.run(factory())


def _run_cell_star(
    args: tuple[
        "WorkloadSource | WorkflowTrace | str",
        PredictorFactory,
        float,
        str | SimulatorBackend,
        str | None,
        str,
        str | None,
        str | None,
        str | tuple[str, ...] | None,
    ],
) -> SimulationResult:
    return run_cell(*args)


def run_grid(
    traces: Mapping[str, WorkloadSource | WorkflowTrace | str] | None = None,
    factories: Mapping[str, PredictorFactory] | None = None,
    time_to_failure: float = 1.0,
    n_workers: int = 1,
    backend: str | SimulatorBackend = "replay",
    cluster: str | None = None,
    placement: str = "first-fit",
    dag: str | None = None,
    workflow_arrival: str | None = None,
    node_outage: str | tuple[str, ...] | None = None,
    workloads: Mapping[str, WorkloadSource | WorkflowTrace | str] | None = None,
) -> dict[str, dict[str, SimulationResult]]:
    """Run every method on every workload.

    Returns ``results[method][workload_name]``.  The workloads go in
    either as ``traces`` (the historical name) or ``workloads`` — one
    mapping of name to trace object, source, or spec string.  With
    ``n_workers > 1`` the cells run in separate processes; workloads and
    factories must then be picklable (spec strings always are; the
    built-in sources drop their caches on pickling).  ``backend``
    selects the simulation backend for every cell — a registry name, or
    a backend instance (picklable when fanning out over processes).
    ``cluster`` and ``placement`` describe the per-cell cluster (spec
    string and placement-policy name, as in :func:`run_cell`); ``dag``
    and ``workflow_arrival`` switch every cell into DAG-aware
    multi-workflow scheduling, and ``node_outage`` schedules node
    drains (event backend only).
    """
    if factories is None:
        raise ValueError("run_grid requires predictor factories")
    if (traces is None) == (workloads is None):
        raise ValueError("pass exactly one of traces or workloads=")
    cells_in = traces if traces is not None else workloads
    cells = [
        (
            method,
            wf,
            (
                cell_workload,
                factory,
                time_to_failure,
                backend,
                cluster,
                placement,
                dag,
                workflow_arrival,
                node_outage,
            ),
        )
        for method, factory in factories.items()
        for wf, cell_workload in cells_in.items()
    ]
    results: dict[str, dict[str, SimulationResult]] = {
        m: {} for m in factories
    }
    if n_workers <= 1:
        for method, wf, args in cells:
            results[method][wf] = _run_cell_star(args)
        return results

    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        for (method, wf, _), res in zip(
            cells, pool.map(_run_cell_star, [c[2] for c in cells])
        ):
            results[method][wf] = res
    return results
