"""Experiment grid runner: (workflow x method) cells, optionally parallel.

Each cell is independent — a fresh predictor instance replays one
workflow trace — so the grid fans out over a process pool when asked.
Predictors are supplied as zero-argument factories (not instances) so
every cell starts untrained and the work ships to workers as picklable
callables.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Mapping

from repro.cluster.manager import ResourceManager
from repro.sim.backends import SimulatorBackend
from repro.sim.engine import OnlineSimulator
from repro.sim.interface import MemoryPredictor
from repro.sim.results import SimulationResult
from repro.workflow.task import WorkflowTrace

__all__ = ["run_cell", "run_grid"]

PredictorFactory = Callable[[], MemoryPredictor]


def run_cell(
    trace: WorkflowTrace,
    factory: PredictorFactory,
    time_to_failure: float = 1.0,
    backend: str | SimulatorBackend = "replay",
    cluster: str | None = None,
    placement: str = "first-fit",
    dag: str | None = None,
    workflow_arrival: str | None = None,
    node_outage: str | tuple[str, ...] | None = None,
) -> SimulationResult:
    """Run one (workflow, method) cell with a fresh predictor and cluster.

    ``cluster`` is a spec string (``"128g:4,256g:4"``; ``None`` = the
    paper's 8-node 128 GB cluster) and ``placement`` the node-placement
    policy name — both are plain strings so cells stay picklable for the
    process pool.  ``dag`` (``"trace"`` / ``"linear"``) and
    ``workflow_arrival`` (e.g. ``"4@poisson:2"``) switch the event
    backend into DAG-aware multi-workflow scheduling, and ``node_outage``
    (``"start:duration:node"`` spec(s)) schedules node drains — also
    plain strings for picklability.
    """
    if cluster is not None:
        manager = ResourceManager.from_spec(cluster, placement=placement)
    else:
        manager = ResourceManager(placement=placement)
    sim = OnlineSimulator(
        trace,
        manager=manager,
        time_to_failure=time_to_failure,
        backend=backend,
        dag=dag,
        workflow_arrival=workflow_arrival,
        node_outage=node_outage,
    )
    return sim.run(factory())


def _run_cell_star(
    args: tuple[
        WorkflowTrace,
        PredictorFactory,
        float,
        str | SimulatorBackend,
        str | None,
        str,
        str | None,
        str | None,
        str | tuple[str, ...] | None,
    ],
) -> SimulationResult:
    return run_cell(*args)


def run_grid(
    traces: Mapping[str, WorkflowTrace],
    factories: Mapping[str, PredictorFactory],
    time_to_failure: float = 1.0,
    n_workers: int = 1,
    backend: str | SimulatorBackend = "replay",
    cluster: str | None = None,
    placement: str = "first-fit",
    dag: str | None = None,
    workflow_arrival: str | None = None,
    node_outage: str | tuple[str, ...] | None = None,
) -> dict[str, dict[str, SimulationResult]]:
    """Run every method on every workflow.

    Returns ``results[method][workflow]``.  With ``n_workers > 1`` the
    cells run in separate processes; traces and factories must then be
    picklable (all built-ins here are).  ``backend`` selects the
    simulation backend for every cell — a registry name, or a backend
    instance (picklable when fanning out over processes).  ``cluster``
    and ``placement`` describe the per-cell cluster (spec string and
    placement-policy name, as in :func:`run_cell`); ``dag`` and
    ``workflow_arrival`` switch every cell into DAG-aware
    multi-workflow scheduling, and ``node_outage`` schedules node
    drains (event backend only).
    """
    cells = [
        (
            method,
            wf,
            (
                trace,
                factory,
                time_to_failure,
                backend,
                cluster,
                placement,
                dag,
                workflow_arrival,
                node_outage,
            ),
        )
        for method, factory in factories.items()
        for wf, trace in traces.items()
    ]
    results: dict[str, dict[str, SimulationResult]] = {
        m: {} for m in factories
    }
    if n_workers <= 1:
        for method, wf, args in cells:
            results[method][wf] = _run_cell_star(args)
        return results

    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        for (method, wf, _), res in zip(
            cells, pool.map(_run_cell_star, [c[2] for c in cells])
        ):
            results[method][wf] = res
    return results
