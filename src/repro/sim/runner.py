"""Experiment grid runner: (workload x method) cells, optionally parallel.

Each cell is independent — a fresh predictor instance replays one
workload — so the grid fans out over a process pool when asked.
Predictors are supplied as zero-argument factories (not instances) so
every cell starts untrained and the work ships to workers as picklable
callables.  Workloads are equally flexible: a materialized
:class:`~repro.workflow.task.WorkflowTrace`, a
:class:`~repro.workload.base.WorkloadSource`, or a workload spec string
(``"synthetic:iwd"``, ``"wfcommons:traces/blast.json"``,
``"trace:runs/mag.jsonl"``) — spec strings are the cheapest to pickle
across the pool; workers construct the source locally.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Mapping

from repro.cluster.accounting import WastageLedger
from repro.cluster.machine import parse_cluster_spec
from repro.cluster.manager import ResourceManager
from repro.obs.log import get_logger, log_context
from repro.sim.backends import SimulatorBackend
from repro.sim.engine import OnlineSimulator
from repro.sim.interface import MemoryPredictor
from repro.sim.results import (
    RunSummary,
    SimulationResult,
    merge_summaries,
)
from repro.workflow.task import WorkflowTrace
from repro.workload.base import WorkloadSource

__all__ = [
    "run_cell",
    "run_grid",
    "run_sharded",
    "partition_cluster",
    "peak_rss_mb",
]

PredictorFactory = Callable[[], MemoryPredictor]

_log = get_logger("sim.runner")

#: The paper's default cluster (8 nodes x 128 GB) as a spec string —
#: what :class:`~repro.cluster.manager.ResourceManager` builds with no
#: arguments; the sharded runner needs the spec form to partition it.
DEFAULT_CLUSTER_SPEC = "128g:8"


def peak_rss_mb() -> float:
    """Peak resident set size of this process tree so far, in MB.

    ``ru_maxrss`` is a process-lifetime high-watermark (it never
    decreases), taken as the max over this process and its reaped
    children — so a sharded run's workers are included once they exit.
    Linux reports KB, macOS bytes.
    """
    import resource

    peak = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return peak / divisor


def partition_cluster(cluster: str, shards: int) -> list[str]:
    """Split a cluster spec into one per-shard spec per shard.

    Nodes are dealt round-robin in spec order (node ``j`` goes to shard
    ``j % shards``), so shard sizes differ by at most one node and every
    shard gets at least one when there are enough nodes — fewer nodes
    than shards is an error, not a silent empty shard.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    pools = parse_cluster_spec(cluster)  # validates the spec
    sizes = [entry.strip().partition(":")[0] for entry in cluster.split(",")]
    counts = [count for _, count in pools]
    total = sum(counts)
    if total < shards:
        raise ValueError(
            f"cannot split {total} node(s) ({cluster!r}) across "
            f"{shards} shards; every shard needs at least one node"
        )
    per_shard = [[0] * len(pools) for _ in range(shards)]
    j = 0
    for g, count in enumerate(counts):
        for _ in range(count):
            per_shard[j % shards][g] += 1
            j += 1
    return [
        ",".join(
            f"{sizes[g]}:{n}" for g, n in enumerate(row) if n > 0
        )
        for row in per_shard
    ]


def run_cell(
    trace: WorkloadSource | WorkflowTrace | str | None = None,
    factory: PredictorFactory | None = None,
    time_to_failure: float = 1.0,
    backend: str | SimulatorBackend = "replay",
    cluster: str | None = None,
    placement: str = "first-fit",
    dag: str | None = None,
    workflow_arrival: str | None = None,
    node_outage: str | tuple[str, ...] | None = None,
    workload: WorkloadSource | WorkflowTrace | str | None = None,
    stream_collectors: bool = False,
    shards: int = 1,
    profile: bool = False,
) -> SimulationResult:
    """Run one (workload, method) cell with a fresh predictor and cluster.

    The workload goes in either positionally (``trace``, the historical
    name) or as ``workload=`` — a trace object, a source, or a spec
    string.  ``cluster`` is a spec string (``"128g:4,256g:4"``; ``None``
    = the paper's 8-node 128 GB cluster) and ``placement`` the
    node-placement policy name — both are plain strings so cells stay
    picklable for the process pool.  ``dag`` (``"trace"`` /
    ``"linear"``) and ``workflow_arrival`` (e.g. ``"4@poisson:2"``)
    switch the event backend into DAG-aware multi-workflow scheduling,
    and ``node_outage`` (``"start:duration:node"`` spec(s)) schedules
    node drains — also plain strings for picklability.

    ``stream_collectors`` switches the event backend to bounded-memory
    online aggregates (the result carries a ``summary`` but no raw
    logs); ``shards > 1`` runs the cell as a sharded fan-out via
    :func:`run_sharded` (event backend only, implies streaming).
    ``profile`` enables the kernel phase profiler (event backend only;
    ``result.profile`` carries the :class:`~repro.obs.profile.
    KernelProfile`, merged across shards when sharded).
    """
    if factory is None:
        raise ValueError("run_cell requires a predictor factory")
    if (trace is None) == (workload is None):
        raise ValueError("pass exactly one of trace or workload=")
    cell_workload = trace if trace is not None else workload
    if shards > 1:
        return run_sharded(
            cell_workload,
            factory,
            shards=shards,
            time_to_failure=time_to_failure,
            backend=backend,
            cluster=cluster,
            placement=placement,
            dag=dag,
            workflow_arrival=workflow_arrival,
            node_outage=node_outage,
            profile=profile,
        )
    if cluster is not None:
        manager = ResourceManager.from_spec(cluster, placement=placement)
    else:
        manager = ResourceManager(placement=placement)
    sim = OnlineSimulator(
        cell_workload,
        manager=manager,
        time_to_failure=time_to_failure,
        backend=backend,
        dag=dag,
        workflow_arrival=workflow_arrival,
        node_outage=node_outage,
        stream_collectors=stream_collectors,
        profile=profile,
    )
    result = sim.run(factory())
    assert result is not None
    return result


def _run_cell_star(args: tuple) -> SimulationResult:
    return run_cell(*args)


def _run_shard(
    workload: "WorkloadSource | WorkflowTrace | str",
    factory: PredictorFactory,
    time_to_failure: float,
    backend: str | SimulatorBackend,
    cluster: str,
    placement: str,
    dag: str | None,
    workflow_arrival: str | None,
    shard: int,
    shards: int,
    spill: str | None,
    profile: bool,
) -> "tuple[RunSummary, object | None]":
    """Worker body of :func:`run_sharded`: one shard, summary (+ profile) out.

    Only the compact :class:`~repro.sim.results.RunSummary` — and, when
    profiling, the shard's :class:`~repro.obs.profile.KernelProfile` —
    crosses the process boundary; sketches and counters, never per-task
    lists.
    """
    from repro.sim.backends import resolve_backend

    resolved = resolve_backend(backend)
    scale = getattr(resolved, "with_scale_options", None)
    if scale is None:
        raise ValueError(
            f"sharded runs require a kernel-driven backend (the event "
            f"backend); got {resolved.name!r}"
        )
    resolved = scale(
        stream_collectors=True, spill=spill, shard=shard, shards=shards
    )
    sim = OnlineSimulator(
        workload,
        manager=ResourceManager.from_spec(cluster, placement=placement),
        time_to_failure=time_to_failure,
        backend=resolved,
        dag=dag,
        workflow_arrival=workflow_arrival,
        profile=profile,
    )
    with log_context(shard=shard):
        _log.info(
            "shard starting",
            extra={"shards": shards, "shard_cluster": cluster},
        )
        result = sim.run(factory())
        assert result is not None and result.summary is not None
        _log.info(
            "shard finished",
            extra={
                "n_tasks": result.summary.n_tasks,
                "n_failures": result.summary.n_failures,
            },
        )
    return result.summary, result.profile


def _run_shard_star(args: tuple) -> "tuple[RunSummary, object | None]":
    return _run_shard(*args)


def _ledger_from_summary(summary: RunSummary) -> WastageLedger:
    """A streaming ledger carrying a merged summary's aggregates, so the
    merged :class:`SimulationResult`'s ledger-backed properties work."""
    ledger = WastageLedger(keep_outcomes=False)
    ledger._total_wastage = summary.total_wastage_gbh
    ledger._runtime_hours = summary.total_runtime_hours
    ledger._n_attempts = summary.n_attempts
    for t, w in summary.wastage_by_task_type.items():
        ledger._wastage_by_type[t] = w
    for t, n in summary.failures_by_task_type.items():
        ledger._failures_by_type[t] = n
    return ledger


def run_sharded(
    workload: "WorkloadSource | WorkflowTrace | str | None" = None,
    factory: PredictorFactory | None = None,
    *,
    shards: int,
    time_to_failure: float = 1.0,
    backend: str | SimulatorBackend = "event",
    cluster: str | None = None,
    placement: str = "first-fit",
    dag: str | None = None,
    workflow_arrival: str | None = None,
    node_outage: object | None = None,
    n_workers: int | None = None,
    spill_dir: str | None = None,
    profile: bool = False,
) -> SimulationResult:
    """Fan one cell out over ``shards`` worker processes and merge.

    The workload is partitioned deterministically — flat tasks by global
    submission index, DAG workflow instances by copy number — and the
    cluster spec is dealt round-robin so each shard simulates its slice
    on its fraction of the nodes.  Arrival schedules and task ids in
    each shard match the unsharded run exactly (same base seed, then
    filtered); workers run with streaming collectors and return only
    their :class:`~repro.sim.results.RunSummary`, which are merged into
    one summary-only :class:`SimulationResult` (``cluster`` /
    ``workflows`` / ``predictions`` stay empty — totals, counts, and
    quantile sketches survive the merge).

    Caveats: online-learning predictors learn from their own shard's
    completions only, and cross-shard queueing contention is not
    modeled — sharding trades those for memory and wall-clock; use
    ``shards=1`` when they matter.  ``spill_dir`` gives each shard a
    ``shard-<i>.jsonl`` prediction-log spill file there.
    """
    if factory is None:
        raise ValueError("run_sharded requires a predictor factory")
    if workload is None:
        raise ValueError("run_sharded requires a workload")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if node_outage:
        raise ValueError(
            "node_outage cannot be combined with sharding: node ids are "
            "renumbered within each shard's sub-cluster"
        )
    spec = cluster if cluster is not None else DEFAULT_CLUSTER_SPEC
    shard_specs = partition_cluster(spec, shards)
    _log.info(
        "sharded run starting",
        extra={"shards": shards, "cluster": spec, "workload": str(workload)},
    )
    if spill_dir is not None:
        os.makedirs(spill_dir, exist_ok=True)
    cells = [
        (
            workload,
            factory,
            time_to_failure,
            backend,
            shard_specs[i],
            placement,
            dag,
            workflow_arrival,
            i,
            shards,
            (
                os.path.join(spill_dir, f"shard-{i}.jsonl")
                if spill_dir is not None
                else None
            ),
            profile,
        )
        for i in range(shards)
    ]
    if shards == 1 or (n_workers is not None and n_workers <= 1):
        shard_results = [_run_shard_star(c) for c in cells]
    else:
        workers = min(shards, n_workers or os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            shard_results = list(pool.map(_run_shard_star, cells))
    summaries = [summary for summary, _ in shard_results]
    merged = merge_summaries(summaries)
    _log.info(
        "shards merged",
        extra={"shards": shards, "n_tasks": merged.n_tasks},
    )
    merged_profile = None
    for _, shard_profile in shard_results:
        if shard_profile is None:
            continue
        if merged_profile is None:
            merged_profile = shard_profile
        else:
            merged_profile.merge(shard_profile)
    return SimulationResult(
        workflow=merged.workflow,
        method=merged.method,
        time_to_failure=merged.time_to_failure,
        ledger=_ledger_from_summary(merged),
        summary=merged,
        profile=merged_profile,
    )


def run_grid(
    traces: Mapping[str, WorkloadSource | WorkflowTrace | str] | None = None,
    factories: Mapping[str, PredictorFactory] | None = None,
    time_to_failure: float = 1.0,
    n_workers: int = 1,
    backend: str | SimulatorBackend = "replay",
    cluster: str | None = None,
    placement: str = "first-fit",
    dag: str | None = None,
    workflow_arrival: str | None = None,
    node_outage: str | tuple[str, ...] | None = None,
    workloads: Mapping[str, WorkloadSource | WorkflowTrace | str] | None = None,
    stream_collectors: bool = False,
    shards: int = 1,
) -> dict[str, dict[str, SimulationResult]]:
    """Run every method on every workload.

    Returns ``results[method][workload_name]``.  The workloads go in
    either as ``traces`` (the historical name) or ``workloads`` — one
    mapping of name to trace object, source, or spec string.  With
    ``n_workers > 1`` the cells run in separate processes; workloads and
    factories must then be picklable (spec strings always are; the
    built-in sources drop their caches on pickling).  ``backend``
    selects the simulation backend for every cell — a registry name, or
    a backend instance (picklable when fanning out over processes).
    ``cluster`` and ``placement`` describe the per-cell cluster (spec
    string and placement-policy name, as in :func:`run_cell`); ``dag``
    and ``workflow_arrival`` switch every cell into DAG-aware
    multi-workflow scheduling, and ``node_outage`` schedules node
    drains (event backend only).  ``stream_collectors`` and ``shards``
    apply per cell exactly as in :func:`run_cell`; prefer
    ``n_workers=1`` when sharding cells, so the shard fan-out is the
    only process-level parallelism.
    """
    if factories is None:
        raise ValueError("run_grid requires predictor factories")
    if (traces is None) == (workloads is None):
        raise ValueError("pass exactly one of traces or workloads=")
    cells_in = traces if traces is not None else workloads
    cells = [
        (
            method,
            wf,
            (
                cell_workload,
                factory,
                time_to_failure,
                backend,
                cluster,
                placement,
                dag,
                workflow_arrival,
                node_outage,
                None,  # workload= (the positional slot carries it)
                stream_collectors,
                shards,
            ),
        )
        for method, factory in factories.items()
        for wf, cell_workload in cells_in.items()
    ]
    results: dict[str, dict[str, SimulationResult]] = {
        m: {} for m in factories
    }
    if n_workers <= 1:
        for method, wf, args in cells:
            results[method][wf] = _run_cell_star(args)
        return results

    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        for (method, wf, _), res in zip(
            cells, pool.map(_run_cell_star, [c[2] for c in cells])
        ):
            results[method][wf] = res
    return results
