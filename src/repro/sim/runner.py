"""Experiment grid runner: (workflow x method) cells, optionally parallel.

Each cell is independent — a fresh predictor instance replays one
workflow trace — so the grid fans out over a process pool when asked.
Predictors are supplied as zero-argument factories (not instances) so
every cell starts untrained and the work ships to workers as picklable
callables.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Mapping

from repro.cluster.manager import ResourceManager
from repro.sim.backends import SimulatorBackend
from repro.sim.engine import OnlineSimulator
from repro.sim.interface import MemoryPredictor
from repro.sim.results import SimulationResult
from repro.workflow.task import WorkflowTrace

__all__ = ["run_cell", "run_grid"]

PredictorFactory = Callable[[], MemoryPredictor]


def run_cell(
    trace: WorkflowTrace,
    factory: PredictorFactory,
    time_to_failure: float = 1.0,
    backend: str | SimulatorBackend = "replay",
) -> SimulationResult:
    """Run one (workflow, method) cell with a fresh predictor and cluster."""
    sim = OnlineSimulator(
        trace,
        manager=ResourceManager(),
        time_to_failure=time_to_failure,
        backend=backend,
    )
    return sim.run(factory())


def _run_cell_star(
    args: tuple[WorkflowTrace, PredictorFactory, float, str | SimulatorBackend],
) -> SimulationResult:
    return run_cell(*args)


def run_grid(
    traces: Mapping[str, WorkflowTrace],
    factories: Mapping[str, PredictorFactory],
    time_to_failure: float = 1.0,
    n_workers: int = 1,
    backend: str | SimulatorBackend = "replay",
) -> dict[str, dict[str, SimulationResult]]:
    """Run every method on every workflow.

    Returns ``results[method][workflow]``.  With ``n_workers > 1`` the
    cells run in separate processes; traces and factories must then be
    picklable (all built-ins here are).  ``backend`` selects the
    simulation backend for every cell — a registry name, or a backend
    instance (picklable when fanning out over processes).
    """
    cells = [
        (method, wf, (trace, factory, time_to_failure, backend))
        for method, factory in factories.items()
        for wf, trace in traces.items()
    ]
    results: dict[str, dict[str, SimulationResult]] = {
        m: {} for m in factories
    }
    if n_workers <= 1:
        for method, wf, args in cells:
            results[method][wf] = _run_cell_star(args)
        return results

    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        for (method, wf, _), res in zip(
            cells, pool.map(_run_cell_star, [c[2] for c in cells])
        ):
            results[method][wf] = res
    return results
