"""Arrival models: the single source of truth for how work arrives.

The replay backend has no notion of time between submissions; the event
backend originally supported only a fixed inter-arrival gap.  Real
workflow engines submit work in anything but a fixed cadence, so the
arrival process is a seam: an :class:`ArrivalModel` (any object with a
``name`` and a ``sample(n, rng)`` method) maps a trace length to the
absolute submission times of its tasks.

- ``"fixed:H"`` — task *i* arrives at ``i * H`` hours (``H = 0``
  models a batch submission of the whole trace, the default).
- ``"poisson:R"`` — a Poisson process with rate ``R`` arrivals per
  hour: inter-arrival gaps are i.i.d. exponential draws from the run's
  seeded RNG, so a fixed seed reproduces the exact arrival times.
- ``"bursty:NxG"`` — bursts of ``N`` simultaneous submissions spaced
  ``G`` hours apart (e.g. ``"bursty:8x0.5"``) — the scatter-gather
  pattern of scientific workflows that fan a stage out all at once.

Stochastic models draw exclusively from the RNG handed to ``sample``,
never from global state, so the event backend stays deterministic under
a fixed seed.

The workflow-level model lives here too: on a shared cluster the unit of
submission is often the whole workflow — users hand the SWMS complete
DAGs, and several users' runs contend for the same nodes.
:class:`WorkflowArrivals` captures that: it fixes how many workflow
instances are injected, reuses the task-level :class:`ArrivalModel`
machinery for the instance arrival times, and assigns each instance to a
tenant round-robin.  Spec strings, accepted everywhere a
``workflow_arrival`` option exists (backend, runner, CLI
``--workflow-arrival``)::

    "4"               four instances, all submitted at t=0
    "4@fixed:1.5"     four instances, 1.5 h apart
    "4@poisson:2"     four instances, Poisson process at 2/h
    "6@bursty:2x0.5"  six instances in bursts of two, 0.5 h apart
    "4@poisson:2@tenants:2"   same, shared by two users round-robin
"""

from __future__ import annotations

import itertools
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ArrivalModel",
    "FixedArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "parse_arrival",
    "iter_arrival_times",
    "WorkflowArrivals",
    "parse_workflow_arrival",
]


@runtime_checkable
class ArrivalModel(Protocol):
    """Maps a trace length to absolute submission times (hours)."""

    #: Spec / display name of the model.
    name: str

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Non-decreasing arrival times for ``n`` tasks, shape ``(n,)``."""
        ...


class FixedArrivals:
    """Evenly spaced submissions: task ``i`` arrives at ``i * interval``."""

    name = "fixed"

    def __init__(self, interval_hours: float = 0.0) -> None:
        if interval_hours < 0:
            raise ValueError(
                f"interval_hours must be >= 0, got {interval_hours}"
            )
        self.interval_hours = interval_hours

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.arange(n, dtype=np.float64) * self.interval_hours

    def times(self, rng: np.random.Generator) -> Iterator[float]:
        return (float(i) * self.interval_hours for i in itertools.count())


class PoissonArrivals:
    """Poisson process: exponential inter-arrival gaps, seeded RNG."""

    name = "poisson"

    def __init__(self, rate_per_hour: float) -> None:
        if rate_per_hour <= 0:
            raise ValueError(
                f"rate_per_hour must be positive, got {rate_per_hour}"
            )
        self.rate_per_hour = rate_per_hour

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n == 0:
            return np.empty(0, dtype=np.float64)
        gaps = rng.exponential(1.0 / self.rate_per_hour, size=n)
        # The first task arrives at t=0 (the run starts with work), the
        # gaps separate consecutive submissions.
        gaps[0] = 0.0
        return np.cumsum(gaps)

    def times(self, rng: np.random.Generator) -> Iterator[float]:
        def _gen() -> Iterator[float]:
            # Mirror :meth:`sample` draw-for-draw: the first gap is
            # drawn and then discarded, so streaming consumption of the
            # RNG produces the exact vectorized arrival times.
            rng.exponential(1.0 / self.rate_per_hour)
            t = 0.0
            yield t
            while True:
                t += float(rng.exponential(1.0 / self.rate_per_hour))
                yield t

        return _gen()


class BurstyArrivals:
    """Bursts of ``burst_size`` simultaneous arrivals, ``gap_hours`` apart."""

    name = "bursty"

    def __init__(self, burst_size: int, gap_hours: float) -> None:
        if burst_size < 1:
            raise ValueError(f"burst_size must be >= 1, got {burst_size}")
        if gap_hours < 0:
            raise ValueError(f"gap_hours must be >= 0, got {gap_hours}")
        self.burst_size = burst_size
        self.gap_hours = gap_hours

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        bursts = np.arange(n, dtype=np.float64) // self.burst_size
        return bursts * self.gap_hours

    def times(self, rng: np.random.Generator) -> Iterator[float]:
        return (
            float(i // self.burst_size) * self.gap_hours
            for i in itertools.count()
        )


def iter_arrival_times(
    model: ArrivalModel, rng: np.random.Generator
) -> Iterator[float]:
    """Stream arrival times from a model without knowing the task count.

    The built-in models implement an optional ``times(rng)`` iterator
    that consumes the RNG draw-for-draw like ``sample(n, rng)`` would,
    so a streaming workload source produces the exact same schedule a
    materialized one does.  Third-party models that only implement
    ``sample`` cannot stream; callers fall back to materializing.
    """
    times = getattr(model, "times", None)
    if times is None:
        raise ValueError(
            f"arrival model {model.name!r} implements no times() iterator "
            f"and cannot stream; materialize the workload first"
        )
    return times(rng)


def parse_arrival(spec: str | ArrivalModel) -> ArrivalModel:
    """Parse an arrival spec (``"fixed:0.25"``, ``"poisson:0.5"``,
    ``"bursty:8x0.5"``) or pass a ready-made model through."""
    if not isinstance(spec, str):
        if isinstance(spec, ArrivalModel):
            return spec
        raise TypeError(
            f"arrival must be a spec string or ArrivalModel, got {type(spec)!r}"
        )
    kind, _, arg = spec.strip().partition(":")
    kind = kind.lower()
    try:
        if kind in ("fixed", "batch"):
            return FixedArrivals(float(arg) if arg else 0.0)
        if kind == "poisson":
            if not arg:
                raise ValueError("poisson needs a rate, e.g. 'poisson:0.5'")
            return PoissonArrivals(float(arg))
        if kind == "bursty":
            size_token, sep, gap_token = arg.partition("x")
            if not sep:
                raise ValueError(
                    "bursty needs 'SIZExGAP', e.g. 'bursty:8x0.5'"
                )
            return BurstyArrivals(int(size_token), float(gap_token))
    except ValueError as exc:
        raise ValueError(f"bad arrival spec {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown arrival model {kind!r} in {spec!r}; "
        f"expected fixed, poisson, or bursty"
    )


class WorkflowArrivals:
    """How many workflow instances arrive, when, and for which tenants.

    Parameters
    ----------
    n_instances:
        Number of whole-workflow copies injected into the simulation.
    arrival:
        Inter-instance arrival process — a task-level arrival spec
        string or :class:`ArrivalModel` (default: all instances
        submitted at t=0, a batch of competing runs).
    n_tenants:
        Number of distinct users owning the instances, assigned
        round-robin (``user0``, ``user1``, ...).  Defaults to one tenant
        per instance — every run belongs to a different user.
    """

    def __init__(
        self,
        n_instances: int = 1,
        arrival: str | ArrivalModel | None = None,
        n_tenants: int | None = None,
    ) -> None:
        if n_instances < 1:
            raise ValueError(f"n_instances must be >= 1, got {n_instances}")
        if n_tenants is not None and n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {n_tenants}")
        self.n_instances = n_instances
        self.arrival = parse_arrival(
            FixedArrivals(0.0) if arrival is None else arrival
        )
        self.n_tenants = min(n_tenants or n_instances, n_instances)

    @property
    def name(self) -> str:
        return f"{self.n_instances}@{self.arrival.name}"

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Non-decreasing submission times for all instances (hours)."""
        return self.arrival.sample(self.n_instances, rng)

    def tenant(self, index: int) -> str:
        """Owning tenant of workflow instance ``index`` (round-robin)."""
        return f"user{index % self.n_tenants}"


def parse_workflow_arrival(
    spec: str | int | WorkflowArrivals,
) -> WorkflowArrivals:
    """Parse a workflow-arrival spec (see module docstring for forms)."""
    if isinstance(spec, WorkflowArrivals):
        return spec
    if isinstance(spec, int):
        return WorkflowArrivals(n_instances=spec)
    if not isinstance(spec, str):
        raise TypeError(
            f"workflow_arrival must be a spec string, an int count, or a "
            f"WorkflowArrivals, got {type(spec)!r}"
        )
    parts = spec.strip().split("@")
    n_tenants: int | None = None
    if len(parts) == 3:
        kind, _, arg = parts[2].partition(":")
        if kind != "tenants" or not arg:
            raise ValueError(
                f"bad workflow-arrival spec {spec!r}: third segment must "
                f"be 'tenants:K'"
            )
        try:
            n_tenants = int(arg)
        except ValueError:
            raise ValueError(
                f"bad workflow-arrival spec {spec!r}: tenant count "
                f"{arg!r} is not an integer"
            ) from None
        parts = parts[:2]
    if len(parts) > 2:
        raise ValueError(
            f"bad workflow-arrival spec {spec!r}: expected "
            f"'N', 'N@ARRIVAL', or 'N@ARRIVAL@tenants:K'"
        )
    try:
        count = int(parts[0])
    except ValueError:
        raise ValueError(
            f"bad workflow-arrival spec {spec!r}: instance count "
            f"{parts[0]!r} is not an integer"
        ) from None
    arrival = parts[1] if len(parts) == 2 else None
    try:
        return WorkflowArrivals(
            n_instances=count, arrival=arrival, n_tenants=n_tenants
        )
    except ValueError as exc:
        raise ValueError(f"bad workflow-arrival spec {spec!r}: {exc}") from None
