"""Predictor contract shared by Sizey and every baseline.

The simulator only ever talks to predictors through this interface, so
all methods play under identical rules: they see a
:class:`TaskSubmission` (no ground truth), return an allocation in MB,
receive a :class:`~repro.provenance.records.TaskRecord` after each
attempt, and are asked for a new allocation after a failure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.provenance.records import TaskRecord
from repro.workflow.task import TaskInstance

__all__ = ["TaskSubmission", "MemoryPredictor"]


@dataclass(frozen=True)
class TaskSubmission:
    """The predictor-visible view of a submitted task instance.

    Deliberately excludes ground-truth peak memory and runtime — those
    are only revealed through provenance records after execution.
    """

    task_type: str
    workflow: str
    machine: str
    instance_id: int
    input_size_mb: float
    preset_memory_mb: float
    timestamp: int

    @classmethod
    def from_instance(cls, inst: TaskInstance, timestamp: int) -> "TaskSubmission":
        return cls(
            task_type=inst.task_type.name,
            workflow=inst.task_type.workflow,
            machine=inst.machine,
            instance_id=inst.instance_id,
            input_size_mb=inst.input_size_mb,
            preset_memory_mb=inst.task_type.preset_memory_mb,
            timestamp=timestamp,
        )

    @property
    def features(self) -> np.ndarray:
        """Feature vector (shape ``(1, d)``) for model queries."""
        return np.array([[self.input_size_mb]], dtype=np.float64)

    @property
    def pool_key(self) -> tuple[str, str]:
        """(task type, machine) — Sizey's model granularity key."""
        return (self.task_type, self.machine)


class MemoryPredictor(ABC):
    """Interface every memory-sizing method implements.

    Lifecycle per task instance, driven by the simulator::

        alloc = predictor.predict(task)
        while attempt fails:
            predictor.observe(failure_record)
            alloc = predictor.on_failure(task, alloc, attempt)
        predictor.observe(success_record)

    ``observe`` is the online-learning hook (paper Phase 3); predictors
    that do not learn online simply ignore it.
    """

    #: Human-readable method name used in result tables.
    name: str = "predictor"

    @abstractmethod
    def predict(self, task: TaskSubmission) -> float:
        """Memory allocation (MB) for the first attempt of ``task``."""

    def observe(self, record: TaskRecord) -> None:
        """Ingest an execution record (success or failure)."""

    def on_failure(
        self, task: TaskSubmission, failed_allocation_mb: float, attempt: int
    ) -> float:
        """Allocation for the next attempt after a failure.

        Default policy: double the failed allocation (the common
        failure-handling strategy of the Witt baselines).  ``attempt`` is
        the 1-based index of the attempt that just failed.
        """
        return failed_allocation_mb * 2.0
