"""Predictor contract shared by Sizey and every baseline (API v2).

The simulator only ever talks to predictors through this interface, so
all methods play under identical rules: they see a
:class:`TaskSubmission` (no ground truth), return an allocation in MB,
receive a :class:`~repro.provenance.records.TaskRecord` after each
attempt, and are asked for a new allocation after a failure.

API v2 adds two optional seams on top of the original per-task contract,
both with backwards-compatible defaults so every existing predictor
keeps working unchanged:

- **Batch prediction** — :meth:`MemoryPredictor.predict_batch` sizes a
  whole group of submissions in one call.  The default implementation
  loops over :meth:`~MemoryPredictor.predict`; predictors with real
  models (Sizey, the Witt baselines, Tovar) override it with vectorized
  model queries grouped by pool key, which the event-driven backend
  exploits when several tasks become schedulable at the same instant.
- **Trace lifecycle hooks** — the simulator calls
  :meth:`~MemoryPredictor.begin_trace` with a :class:`TraceContext`
  before the first submission of a trace and
  :meth:`~MemoryPredictor.end_trace` after the last completion.
  Predictors can use these to reset per-trace state, pre-allocate
  buffers, or flush diagnostics; the defaults are no-ops.

The full v2 lifecycle, driven by the simulator backend::

    predictor.begin_trace(context)
    for each scheduling round:
        allocs = predictor.predict_batch(ready_tasks)   # or predict(task)
        while an attempt fails:
            predictor.observe(failure_record)
            alloc = predictor.on_failure(task, alloc, attempt)
        predictor.observe(success_record)
    predictor.end_trace()
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.provenance.records import TaskRecord
from repro.workflow.task import TaskInstance

__all__ = [
    "TaskSubmission",
    "TraceContext",
    "MemoryPredictor",
    "batch_by_group",
]


def batch_by_group(tasks, key_fn, group_sizer) -> np.ndarray:
    """Shared scaffolding for grouped ``predict_batch`` overrides.

    Groups ``tasks`` by ``key_fn(task)`` (preserving submission order
    within each group) and asks ``group_sizer(key, group_tasks)`` for
    the group's allocations — a scalar (broadcast over the group), an
    array of ``len(group_tasks)``, or ``None`` to fall back to each
    task's user preset (the no-history case).  Returns the allocations
    re-assembled in the original task order.
    """
    out = np.empty(len(tasks), dtype=np.float64)
    groups: dict = {}
    for i, task in enumerate(tasks):
        groups.setdefault(key_fn(task), []).append(i)
    for key, idxs in groups.items():
        sized = group_sizer(key, [tasks[i] for i in idxs])
        if sized is None:
            for i in idxs:
                out[i] = tasks[i].preset_memory_mb
        else:
            out[idxs] = np.asarray(sized, dtype=np.float64)
    return out


@dataclass(frozen=True)
class TaskSubmission:
    """The predictor-visible view of a submitted task instance.

    Deliberately excludes ground-truth peak memory and runtime — those
    are only revealed through provenance records after execution.
    """

    task_type: str
    workflow: str
    machine: str
    instance_id: int
    input_size_mb: float
    preset_memory_mb: float
    timestamp: int

    @classmethod
    def from_instance(cls, inst: TaskInstance, timestamp: int) -> "TaskSubmission":
        # Built via __dict__ rather than the generated __init__: frozen
        # dataclasses pay object.__setattr__ per field, and every task
        # arrival in the simulation kernel constructs one submission.
        sub = object.__new__(cls)
        task_type = inst.task_type
        sub.__dict__.update(
            task_type=task_type.name,
            workflow=task_type.workflow,
            machine=inst.machine,
            instance_id=inst.instance_id,
            input_size_mb=inst.input_size_mb,
            preset_memory_mb=task_type.preset_memory_mb,
            timestamp=timestamp,
        )
        return sub

    @property
    def features(self) -> np.ndarray:
        """Feature vector (shape ``(1, d)``) for model queries."""
        return np.array([[self.input_size_mb]], dtype=np.float64)

    @property
    def pool_key(self) -> tuple[str, str]:
        """(task type, machine) — Sizey's model granularity key."""
        return (self.task_type, self.machine)


@dataclass(frozen=True)
class TraceContext:
    """What a predictor is told about a trace before replaying it.

    Passed to :meth:`MemoryPredictor.begin_trace` by every simulation
    backend.  Contains only simulation-harness facts — never ground
    truth about individual tasks.
    """

    workflow: str
    n_tasks: int
    time_to_failure: float
    backend: str = "replay"


class MemoryPredictor(ABC):
    """Interface every memory-sizing method implements.

    Lifecycle per task instance, driven by the simulator::

        alloc = predictor.predict(task)
        while attempt fails:
            predictor.observe(failure_record)
            alloc = predictor.on_failure(task, alloc, attempt)
        predictor.observe(success_record)

    ``observe`` is the online-learning hook (paper Phase 3); predictors
    that do not learn online simply ignore it.

    API v2 additions (all optional to implement):
    :meth:`predict_batch` for vectorized group sizing, and the
    :meth:`begin_trace` / :meth:`end_trace` lifecycle pair bracketing
    each simulated trace.
    """

    #: Human-readable method name used in result tables.
    name: str = "predictor"

    @abstractmethod
    def predict(self, task: TaskSubmission) -> float:
        """Memory allocation (MB) for the first attempt of ``task``."""

    def predict_batch(self, tasks: Sequence[TaskSubmission]) -> np.ndarray:
        """First-attempt allocations (MB) for a group of submissions.

        Returns an array of shape ``(len(tasks),)`` whose ``i``-th entry
        is the allocation for ``tasks[i]``.  The default delegates to
        :meth:`predict` one task at a time, so overriding is purely an
        optimisation: a batch call must be equivalent to the loop of
        single calls (no observations happen between the two).
        Predictors backed by real models override this with model
        queries vectorized per pool key.
        """
        return np.array(
            [float(self.predict(t)) for t in tasks], dtype=np.float64
        )

    def begin_trace(self, context: TraceContext | None = None) -> None:
        """Lifecycle hook: called once before a trace starts replaying.

        ``context`` describes the upcoming trace (workflow, task count,
        time-to-failure, backend name).  Default: no-op.
        """

    def end_trace(self) -> None:
        """Lifecycle hook: called once after the trace finished.

        Runs after the last completion was observed — a natural point to
        flush diagnostics or drop per-trace caches.  Default: no-op.
        """

    def observe(self, record: TaskRecord) -> None:
        """Ingest an execution record (success or failure)."""

    def on_failure(
        self, task: TaskSubmission, failed_allocation_mb: float, attempt: int
    ) -> float:
        """Allocation for the next attempt after a failure.

        Default policy: double the failed allocation (the common
        failure-handling strategy of the Witt baselines).  ``attempt`` is
        the 1-based index of the attempt that just failed.
        """
        return failed_allocation_mb * 2.0
