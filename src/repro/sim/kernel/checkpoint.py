"""Kernel checkpoint/resume: pause, serialize, continue bit-for-bit.

A checkpoint is one pickle of the whole paused
:class:`~repro.sim.kernel.core.SimulationKernel` behind a small header.
Pickling the kernel *as one object graph* is what makes resume exact:
the event heap, the driver's ready queue, and the running-task table all
reference the same :class:`~repro.sim.kernel.core.TaskState` objects,
and pickle's memo preserves that sharing — a field-by-field export would
have to reconstruct it by hand.  Everything the loop depends on rides
along: the clock, dispatch generations, per-node allocations, predictor
model state (including numpy ``Generator`` RNG states, which pickle
exactly), collector aggregates and sketches, and the flat driver's
stream cursor (live iterators are dropped on pickle and rebuilt
deterministically on first use after resume).

``run(until=...)`` pauses only *between* event batches — at a clock
boundary — so a checkpoint never captures a half-applied batch.

Checkpoints are pickles: load them only from paths you wrote yourself
(the standard pickle trust model).  They are version-stamped and refuse
to load across incompatible format versions.

:func:`drive_kernel` is the shared driving loop behind the CLI's
``--checkpoint`` / ``--checkpoint-every`` / ``--stop-after`` /
``--resume`` flags: run in bounded slices, checkpoint at each pause, and
optionally stop for good at a given simulation time.
"""

from __future__ import annotations

import os
import pickle
from typing import TYPE_CHECKING

from repro.obs.log import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel.core import SimulationKernel
    from repro.sim.results import SimulationResult

_log = get_logger("sim.checkpoint")

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "drive_kernel",
]

CHECKPOINT_FORMAT = "repro-checkpoint"
# Version 2 (PR 10): the pickled kernel carries EventCalendar state
# (columnar scheduled lane + dynamic heap) instead of a single EventHeap.
CHECKPOINT_VERSION = 2


def save_checkpoint(kernel: "SimulationKernel", path: str) -> None:
    """Write ``kernel``'s full state to ``path`` (atomic replace)."""
    if not kernel._started:
        raise ValueError(
            "cannot checkpoint a kernel that has not started running; "
            "call run(until=...) first"
        )
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "clock": kernel.now,
        "workflow": kernel.source.workflow,
        "method": kernel.predictor.name,
        "kernel": kernel,
    }
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    _log.info(
        "checkpoint saved",
        extra={"path": path, "clock_hours": kernel.now},
    )


def load_checkpoint(path: str) -> "SimulationKernel":
    """Load a checkpoint written by :func:`save_checkpoint`."""
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    if (
        not isinstance(payload, dict)
        or payload.get("format") != CHECKPOINT_FORMAT
    ):
        raise ValueError(f"{path!r} is not a repro simulation checkpoint")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path!r} has format version {version}; this "
            f"build reads version {CHECKPOINT_VERSION}"
        )
    _log.info(
        "checkpoint loaded",
        extra={
            "path": path,
            "clock_hours": payload.get("clock"),
            "workflow": payload.get("workflow"),
            "method": payload.get("method"),
        },
    )
    return payload["kernel"]


def drive_kernel(
    kernel: "SimulationKernel",
    *,
    checkpoint: str | None = None,
    checkpoint_every: float | None = None,
    stop_after: float | None = None,
) -> "SimulationResult | None":
    """Run ``kernel`` to completion in checkpointed slices.

    - ``checkpoint_every`` (hours of simulation time): pause at least
      every that often and, if ``checkpoint`` is set, overwrite the
      checkpoint file at each pause — crash recovery loses at most one
      slice.
    - ``stop_after`` (hours): stop for good once the clock passes it,
      write a final checkpoint (if ``checkpoint`` is set), and return
      ``None`` — the induced-interrupt mode the resume tests and the CI
      scale-smoke step use.

    Returns the finished :class:`~repro.sim.results.SimulationResult`,
    or ``None`` when stopped early.
    """
    if checkpoint_every is not None and checkpoint_every <= 0:
        raise ValueError(
            f"checkpoint_every must be positive, got {checkpoint_every}"
        )
    if not kernel._started:
        kernel._start()
    while True:
        if not kernel.events:
            return kernel.run()  # drains the (empty) loop and finalizes
        next_time = kernel.events.next_time
        if stop_after is not None and next_time > stop_after:
            if checkpoint is not None:
                save_checkpoint(kernel, checkpoint)
            return None
        # Anchor the slice at the next event so every slice makes
        # progress even when events are sparser than the interval.
        until = stop_after
        if checkpoint_every is not None:
            until = next_time + checkpoint_every
            if stop_after is not None:
                until = min(until, stop_after)
        result = kernel.run(until=until)
        if result is not None:
            return result
        if checkpoint is not None:
            save_checkpoint(kernel, checkpoint)
