"""Typed event heap with deterministic tie-breaking.

Every simulation driven by the kernel advances through one totally
ordered stream of timestamped events.  Ordering is the contract the
golden regression tests pin, so it is explicit:

1. events sort by **time** first;
2. equal times sort by **kind** — completions free their memory before
   a recovering node returns, before new arrivals queue, before a node
   drain preempts (see the kind constants below);
3. equal ``(time, kind)`` pairs sort by **push sequence** — a
   monotonically increasing integer, so insertion order breaks the tie
   and payloads are never compared.

The three-level key is a total order over unique keys, which makes the
pop sequence independent of :mod:`heapq`'s internal array layout — the
engines rely on this for bit-for-bit reproducibility.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = [
    "COMPLETION",
    "OUTAGE_END",
    "ARRIVAL",
    "OUTAGE_START",
    "EventHeap",
    "EventCalendar",
]

#: A running attempt reached its end (success or kill); frees memory
#: before anything else at the same instant can claim it.
COMPLETION = 0
#: A drained node returns to service — before new arrivals at the same
#: instant queue, so the scheduling pass sees its capacity.
OUTAGE_END = 1
#: New work arrives: a task (flat mode) or a whole workflow instance
#: (DAG mode); the driver interprets the payload.
ARRIVAL = 2
#: A node drain begins — after same-instant arrivals have queued, so the
#: scheduling pass that follows the event batch sees the node as gone.
OUTAGE_START = 3


class EventHeap:
    """Min-heap of ``(time, kind, seq, payload)`` events.

    The kernel's hot loop reads ``_heap`` directly (peek at
    ``_heap[0][0]``, pop via :func:`heapq.heappop`) to skip the method
    and property indirection; the entry layout is therefore part of the
    kernel-internal contract.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0

    def push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._heap, (time, kind, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, int, object]:
        time, kind, _, payload = heapq.heappop(self._heap)
        return time, kind, payload

    @property
    def next_time(self) -> float:
        """Timestamp of the earliest pending event."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class EventCalendar:
    """Two-lane columnar event store with the :class:`EventHeap` order.

    The kernel's event population splits cleanly in two:

    - **scheduled lane** — events whose full timetable is known up front
      (flat arrival schedules, DAG workflow submissions).  They are
      bulk-loaded via :meth:`schedule_batch` into preallocated,
      grow-by-doubling numpy columns (``time`` float64, ``kind`` int64,
      ``seq`` int64 — parallel arrays rather than one structured array,
      so each column stays contiguous) plus an optional payload list,
      and consumed with a cursor.  No per-event heap sift is ever paid
      for them.
    - **dynamic lane** — events created while the clock runs
      (completions, outage transitions, anything third-party drivers
      :meth:`push`): a plain :mod:`heapq` of ``(time, kind, seq,
      payload)`` tuples, exactly the :class:`EventHeap` layout.

    Popping merges the two lanes on the ``(time, kind, seq)`` key.  The
    merged stream is *provably identical* to pushing every event through
    one :class:`EventHeap`: both lanes draw from one monotone ``seq``
    counter, the scheduled lane is validated non-decreasing in time and
    assigned seqs in load order (= the order the events would have been
    pushed), and same-``(time, kind)`` ties can only involve one lane or
    carry distinct seqs — so the three-level total order decides every
    comparison the same way.  The golden suite pins this bit-for-bit.

    Kernel-internal contract (mirrors :class:`EventHeap`): the hot loop
    reads ``_heap``/``_seq`` raw, plus the scheduled lane's Python list
    mirrors ``_mtimes``/``_mkinds``/``_mseqs`` (kept because scalar list
    indexing is several times faster than numpy scalar indexing),
    ``_spayloads``, ``_n_scheduled``, and ``_cursor`` (written back on
    loop exit).  :meth:`schedule_batch` must not be called while the
    loop runs — load during driver ``seed``.

    Pickling keeps the unconsumed tail of the numpy columns and rebuilds
    the list mirrors on load, so checkpoint/resume stays bit-for-bit
    even mid-wave.
    """

    __slots__ = (
        "_heap",
        "_seq",
        "_stimes",
        "_skinds",
        "_sseqs",
        "_spayloads",
        "_n_scheduled",
        "_cursor",
        "_mtimes",
        "_mkinds",
        "_mseqs",
    )

    def __init__(self, capacity: int = 16) -> None:
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self._stimes = np.empty(capacity, dtype=np.float64)
        self._skinds = np.empty(capacity, dtype=np.int64)
        self._sseqs = np.empty(capacity, dtype=np.int64)
        #: ``None`` while every scheduled payload is ``None`` (flat
        #: arrivals) — saves one pointer per event at million-task scale.
        self._spayloads: list | None = None
        self._n_scheduled = 0
        self._cursor = 0
        # Python-list mirrors of the filled column prefixes.
        self._mtimes: list[float] = []
        self._mkinds: list[int] = []
        self._mseqs: list[int] = []

    # ------------------------------------------------------------------
    # dynamic lane (EventHeap-compatible)
    # ------------------------------------------------------------------
    def push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._heap, (time, kind, self._seq, payload))
        self._seq += 1

    # ------------------------------------------------------------------
    # scheduled lane
    # ------------------------------------------------------------------
    def schedule_batch(
        self, times, kind: int, payloads: "list | None" = None
    ) -> None:
        """Bulk-load a non-decreasing batch of same-kind events.

        ``times`` is any float array-like; ``payloads`` aligns with it
        (``None`` = every payload is ``None``).  Raises ``ValueError``
        if the batch is not sorted or starts before an already-scheduled
        event — callers with an unsorted timetable must fall back to
        per-event :meth:`push`.
        """
        arr = np.ascontiguousarray(times, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(
                f"times must be one-dimensional, got shape {arr.shape}"
            )
        m = int(arr.shape[0])
        if payloads is not None and len(payloads) != m:
            raise ValueError(
                f"payloads length {len(payloads)} != times length {m}"
            )
        if m == 0:
            return
        if m > 1 and not bool(np.all(arr[1:] >= arr[:-1])):
            raise ValueError(
                "schedule_batch requires non-decreasing times; "
                "push() unsorted events individually instead"
            )
        n = self._n_scheduled
        if n and arr[0] < self._stimes[n - 1]:
            raise ValueError(
                f"batch starts at t={arr[0]!r}, before the last scheduled "
                f"event at t={self._stimes[n - 1]!r}"
            )
        cap = self._stimes.shape[0]
        if n + m > cap:
            while cap < n + m:
                cap *= 2
            for name in ("_stimes", "_skinds", "_sseqs"):
                old = getattr(self, name)
                grown = np.empty(cap, dtype=old.dtype)
                grown[:n] = old[:n]
                setattr(self, name, grown)
        seq0 = self._seq
        self._seq = seq0 + m
        self._stimes[n : n + m] = arr
        self._skinds[n : n + m] = kind
        self._sseqs[n : n + m] = np.arange(seq0, seq0 + m, dtype=np.int64)
        if payloads is not None:
            if self._spayloads is None:
                self._spayloads = [None] * n
            self._spayloads.extend(payloads)
        elif self._spayloads is not None:
            self._spayloads.extend([None] * m)
        self._mtimes.extend(arr.tolist())
        self._mkinds.extend([kind] * m)
        self._mseqs.extend(range(seq0, seq0 + m))
        self._n_scheduled = n + m

    # ------------------------------------------------------------------
    # merged consumption
    # ------------------------------------------------------------------
    def pop(self) -> tuple[float, int, object]:
        i = self._cursor
        heap = self._heap
        if i < self._n_scheduled:
            skey = (self._mtimes[i], self._mkinds[i], self._mseqs[i])
            if heap and heap[0][:3] < skey:
                time, kind, _, payload = heapq.heappop(heap)
                return time, kind, payload
            self._cursor = i + 1
            payloads = self._spayloads
            payload = payloads[i] if payloads is not None else None
            return skey[0], skey[1], payload
        time, kind, _, payload = heapq.heappop(heap)
        return time, kind, payload

    def pop_wave(self) -> tuple[float, list[tuple[int, object]]]:
        """Pop every event sharing the earliest timestamp, in key order."""
        now = self.next_time
        wave: list[tuple[int, object]] = []
        while len(self) and self.next_time == now:
            _, kind, payload = self.pop()
            wave.append((kind, payload))
        return now, wave

    @property
    def next_time(self) -> float:
        """Timestamp of the earliest pending event (either lane)."""
        i = self._cursor
        if i < self._n_scheduled:
            st = self._mtimes[i]
            heap = self._heap
            if heap and heap[0][0] < st:
                return heap[0][0]
            return st
        return self._heap[0][0]

    def __len__(self) -> int:
        return self._n_scheduled - self._cursor + len(self._heap)

    def __bool__(self) -> bool:
        return self._cursor < self._n_scheduled or bool(self._heap)

    # ------------------------------------------------------------------
    # pickling (checkpoints): keep the unconsumed scheduled tail only
    # ------------------------------------------------------------------
    def __getstate__(self):
        c = self._cursor
        n = self._n_scheduled
        payloads = self._spayloads
        return {
            "heap": self._heap,
            "seq": self._seq,
            "times": self._stimes[c:n].copy(),
            "kinds": self._skinds[c:n].copy(),
            "seqs": self._sseqs[c:n].copy(),
            "payloads": list(payloads[c:n]) if payloads is not None else None,
        }

    def __setstate__(self, state) -> None:
        self._heap = state["heap"]
        self._seq = state["seq"]
        times = state["times"]
        n = int(times.shape[0])
        cap = 16
        while cap < n:
            cap *= 2
        self._stimes = np.empty(cap, dtype=np.float64)
        self._skinds = np.empty(cap, dtype=np.int64)
        self._sseqs = np.empty(cap, dtype=np.int64)
        self._stimes[:n] = times
        self._skinds[:n] = state["kinds"]
        self._sseqs[:n] = state["seqs"]
        self._spayloads = state["payloads"]
        self._n_scheduled = n
        self._cursor = 0
        self._mtimes = self._stimes[:n].tolist()
        self._mkinds = self._skinds[:n].tolist()
        self._mseqs = self._sseqs[:n].tolist()
