"""Typed event heap with deterministic tie-breaking.

Every simulation driven by the kernel advances through one totally
ordered stream of timestamped events.  Ordering is the contract the
golden regression tests pin, so it is explicit:

1. events sort by **time** first;
2. equal times sort by **kind** — completions free their memory before
   a recovering node returns, before new arrivals queue, before a node
   drain preempts (see the kind constants below);
3. equal ``(time, kind)`` pairs sort by **push sequence** — a
   monotonically increasing integer, so insertion order breaks the tie
   and payloads are never compared.

The three-level key is a total order over unique keys, which makes the
pop sequence independent of :mod:`heapq`'s internal array layout — the
engines rely on this for bit-for-bit reproducibility.
"""

from __future__ import annotations

import heapq

__all__ = [
    "COMPLETION",
    "OUTAGE_END",
    "ARRIVAL",
    "OUTAGE_START",
    "EventHeap",
]

#: A running attempt reached its end (success or kill); frees memory
#: before anything else at the same instant can claim it.
COMPLETION = 0
#: A drained node returns to service — before new arrivals at the same
#: instant queue, so the scheduling pass sees its capacity.
OUTAGE_END = 1
#: New work arrives: a task (flat mode) or a whole workflow instance
#: (DAG mode); the driver interprets the payload.
ARRIVAL = 2
#: A node drain begins — after same-instant arrivals have queued, so the
#: scheduling pass that follows the event batch sees the node as gone.
OUTAGE_START = 3


class EventHeap:
    """Min-heap of ``(time, kind, seq, payload)`` events.

    The kernel's hot loop reads ``_heap`` directly (peek at
    ``_heap[0][0]``, pop via :func:`heapq.heappop`) to skip the method
    and property indirection; the entry layout is therefore part of the
    kernel-internal contract.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0

    def push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._heap, (time, kind, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, int, object]:
        time, kind, _, payload = heapq.heappop(self._heap)
        return time, kind, payload

    @property
    def next_time(self) -> float:
        """Timestamp of the earliest pending event."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
