"""The unified discrete-event simulation kernel.

One event loop serves every execution mode.  The kernel owns what the
flat event backend and the DAG scheduling engine used to duplicate:

- the **clock and typed event heap** (:mod:`repro.sim.kernel.events`)
  with deterministic three-level tie-breaking;
- the **sizing lifecycle** — size a dispatch wave with one
  :meth:`~repro.sim.interface.MemoryPredictor.predict_batch` call,
  place through the manager's policy, run under the strict limit, kill
  at ``time_to_failure`` of the runtime, re-size with the
  doubling-factor escalation floor, re-queue at original priority;
- **metrics dispatch** to pluggable
  :class:`~repro.sim.kernel.collectors.MetricsCollector` objects;
- kernel-level scenarios such as scheduled **node drains**
  (:mod:`repro.sim.kernel.outage`), available to every driver.

What still differs between modes lives in a :class:`KernelDriver`: how
work *arrives* (per-task arrival times vs. whole workflow instances)
and how completions *release* more work (a flat stream releases nothing;
a DAG driver releases successor tasks).  Drivers own their
:class:`ReadyQueue` so dispatch priority stays their business — the
kernel only asks for the head, strict FCFS.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Protocol, Sequence, runtime_checkable

from repro.cluster.machine import Machine
from repro.cluster.manager import ResourceManager
from repro.cluster.policies import FirstFit
from repro.obs.profile import KernelProfile, PhaseTimer
from repro.provenance.records import TaskRecord
from repro.sim.backends.base import (
    MAX_ATTEMPTS,
    clamp_allocation_checked,
)
from repro.sim.errors import UnschedulableTaskError
from repro.sim.interface import MemoryPredictor, TaskSubmission, TraceContext
from repro.sim.kernel.collectors import (
    BaseCollector,
    ClusterMetricsCollector,
    MetricsCollector,
    WastageCollector,
)
from repro.sim.kernel.events import (
    ARRIVAL,
    COMPLETION,
    OUTAGE_END,
    OUTAGE_START,
    EventCalendar,
)
from repro.sim.kernel.outage import NodeOutage, parse_node_outages
from repro.sim.results import RunSummary, SimulationResult
from repro.workflow.task import TaskInstance, WorkflowTrace
from repro.workload.base import WorkloadSource, as_source

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.instance import WorkflowInstance

__all__ = ["TaskState", "ReadyQueue", "KernelDriver", "SimulationKernel"]


@dataclass(slots=True)
class TaskState:
    """Unified per-task bookkeeping shared by every kernel driver.

    Slotted: the kernel allocates one of these per task instance and
    reads/writes its fields on every lifecycle transition, so the dict
    per instance was measurable at bench scale.
    """

    inst: TaskInstance
    submission: TaskSubmission
    #: Dense submission position — the prediction-log timestamp and the
    #: flat FCFS priority.
    index: int
    #: Arrival time (hours); meaningful in flat mode.
    arrival: float = 0.0
    #: Owning workflow instance; ``None`` outside DAG mode.
    wi: "WorkflowInstance | None" = None
    allocation: float | None = None
    first_allocation: float | None = None
    attempt: int = 0
    #: When the task last entered the ready queue (arrival, re-queue
    #: after a kill, or preemption); every dispatch charges
    #: ``now - queued_at`` as queue wait.
    queued_at: float = 0.0
    #: (node, task_id, allocated_mb, start_time) while executing.
    running: tuple[Machine, int, float, float] | None = None
    #: Incremented on every dispatch and preemption; completion events
    #: carry the value at dispatch time, so a preempted attempt's
    #: in-flight completion is recognized as stale and dropped.
    dispatch_gen: int = 0

    def __lt__(self, other: "TaskState") -> bool:  # heap tie-breaker
        return self.index < other.index


@runtime_checkable
class ReadyQueue(Protocol):
    """The driver-owned dispatch queue; the kernel drains it strictly FCFS.

    Besides the methods below, implementations expose ``order`` — the
    live heap list backing the queue, whose entries sort FCFS and end
    with the :class:`TaskState`.  The kernel's dispatch pass peeks
    ``order[0][-1]`` and pops with :func:`heapq.heappop` directly, so
    the list must *be* the queue (never a copy, never rebound).
    """

    #: The live FCFS heap list; entries end with the state.
    order: list

    def __bool__(self) -> bool:
        ...

    def __len__(self) -> int:
        ...

    def head(self) -> TaskState:
        """The state that must dispatch next."""
        ...

    def pop(self) -> TaskState:
        ...

    def unsized(self, limit: int) -> list[TaskState]:
        """First ``limit`` queued states without an allocation, FCFS order."""
        ...

    def requeue(self, state: TaskState) -> None:
        """Re-enter ``state`` at its original dispatch priority."""
        ...


class KernelDriver(Protocol):
    """Mode-specific behaviour plugged into the kernel.

    After :meth:`seed` the driver exposes ``queue`` (its
    :class:`ReadyQueue`) and ``n_tasks`` (total task instances of the
    run, reported to the predictor's trace context).
    """

    queue: ReadyQueue
    n_tasks: int

    def seed(self, kernel: "SimulationKernel") -> None:
        """Build per-task states and push the initial arrival events."""
        ...

    def on_arrival(self, payload: object, now: float) -> Iterable[TaskState]:
        """Handle one arrival event; returns the states made ready."""
        ...

    def on_success(self, state: TaskState, now: float) -> Iterable[TaskState]:
        """Propagate a success; returns states released into the queue."""
        ...

    def finish(self, kernel: "SimulationKernel") -> None:
        """Post-loop invariant checks (e.g. no unfinished workflows)."""
        ...


class SimulationKernel:
    """One event loop for every simulation mode.

    Parameters
    ----------
    workload:
        Where tasks come from: a
        :class:`~repro.workload.base.WorkloadSource`, a materialized
        :class:`~repro.workflow.task.WorkflowTrace`, or a workload spec
        string — normalized through
        :func:`~repro.workload.base.as_source`.  Drivers pull tasks and
        whole workflow instances from the source lazily; the source
        also names the workflow in results and the predictor's trace
        context.
    predictor / manager / time_to_failure:
        The standard backend contract
        (:class:`~repro.sim.backends.base.SimulatorBackend`).
    driver:
        Mode-specific arrival/release behaviour (:class:`KernelDriver`).
    collectors:
        Extra :class:`MetricsCollector` instances; a
        :class:`WastageCollector` is always installed first (the result
        schema is built from it).
    prediction_chunk:
        How many queued tasks are sized per ``predict_batch`` call;
        chunking keeps predictions close to dispatch time so online
        learning from earlier completions still reaches later tasks.
    doubling_factor:
        Escalation floor after a kill: when the predictor's retry
        proposal does not grow, the next allocation is
        ``failed * doubling_factor``.
    outages:
        Scheduled node drain windows
        (:class:`~repro.sim.kernel.outage.NodeOutage` or spec strings);
        each pauses placement on its node and preempts the attempts
        running there.
    backend_name:
        Reported in the predictor's trace context.
    stream_collectors:
        Streaming-collector mode: the always-installed
        :class:`WastageCollector` drops its per-task log and outcome
        lists, keeping only online aggregates and sketches — memory
        stays bounded at million-task scale.  The result then carries a
        ``summary`` but empty ``predictions``.
    spill:
        Optional JSONL path; every prediction log is appended there in
        completion order (works with or without ``stream_collectors``).
    profile:
        Enable the kernel phase profiler: per-phase wall-time/call
        counters (:class:`~repro.obs.profile.KernelProfile`) attached to
        the result as ``result.profile``.  Measurement only — results
        are bit-for-bit identical with profiling on or off.  When off
        (the default) the instrumented loop is never entered, so the
        hot path pays nothing.
    """

    def __init__(
        self,
        workload: WorkloadSource | WorkflowTrace | str,
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
        *,
        driver: KernelDriver,
        collectors: Sequence[MetricsCollector] = (),
        prediction_chunk: int = 32,
        doubling_factor: float = 2.0,
        outages: Sequence[NodeOutage | str] = (),
        backend_name: str = "event",
        stream_collectors: bool = False,
        spill: str | None = None,
        profile: bool = False,
    ) -> None:
        self.source = as_source(workload)
        self.predictor = predictor
        self.manager = manager
        self.time_to_failure = time_to_failure
        self.driver = driver
        self.stream_collectors = stream_collectors
        self.wastage = WastageCollector(
            keep_logs=not stream_collectors, spill=spill
        )
        self.collectors: tuple[MetricsCollector, ...] = (
            self.wastage,
            *collectors,
        )
        # Per-callback dispatch lists: only collectors that actually
        # override a callback get the call.  Every fire site then loops
        # a (usually short or empty) tuple of genuine subscribers
        # instead of fanning no-ops out to every collector — at bench
        # scale the no-op fan-out was a top-five cost.
        def _overrides(name: str):
            base = getattr(BaseCollector, name)
            return tuple(
                c
                for c in self.collectors
                if getattr(type(c), name, None) is not base
            )

        # Event-wave subscribers: overriding either the per-event or the
        # batched callback subscribes (the kernel always fires the
        # batched one; BaseCollector.on_events replays on_event n times).
        self._event_collectors: tuple[MetricsCollector, ...] = tuple(
            c
            for c in self.collectors
            if getattr(type(c), "on_event", None) is not BaseCollector.on_event
            or getattr(type(c), "on_events", None)
            is not BaseCollector.on_events
        )
        self._ready_collectors = _overrides("on_ready")
        # ``on_wave`` is newer than the collector protocol: a collector
        # written against the old protocol may not define it at all, so
        # a missing attribute means "not subscribed", not "overridden".
        self._wave_collectors = tuple(
            c
            for c in self.collectors
            if getattr(type(c), "on_wave", None)
            not in (None, BaseCollector.on_wave)
        )
        self._outage_collectors = _overrides("on_outage")
        self._dispatch_collectors = _overrides("on_dispatch")
        self._release_collectors = _overrides("on_release")
        self._success_collectors = _overrides("on_task_success")
        self._failure_collectors = _overrides("on_task_failure")
        self._preempt_collectors = _overrides("on_preempt")
        # ``MemoryPredictor.observe`` defaults to a no-op; when the
        # predictor doesn't override it the kernel skips building the
        # per-completion TaskRecord entirely.
        self._observe = (
            getattr(type(predictor), "observe", None)
            is not MemoryPredictor.observe
            or "observe" in getattr(predictor, "__dict__", {})
        )
        # Drivers with no dependency graph (``releases_on_success =
        # False``) never release successors, so the per-success driver
        # call is skipped entirely.
        self._driver_releases = getattr(driver, "releases_on_success", True)
        # Per-run stock-collector certificates (see :meth:`run`): the
        # exact-mode ClusterMetricsCollector the loop may write into
        # directly, and the collector whose makespan tracking replaces
        # the per-wave ``on_events`` fan-out.
        self._cluster_fast: ClusterMetricsCollector | None = None
        self._makespan_fast: ClusterMetricsCollector | None = None
        self.prediction_chunk = prediction_chunk
        self.doubling_factor = doubling_factor
        self.outages = parse_node_outages(outages)
        self.backend_name = backend_name
        #: Per-phase wall-time accounting; ``None`` unless ``profile=True``.
        self.profile: KernelProfile | None = (
            KernelProfile() if profile else None
        )
        self._timer: PhaseTimer | None = (
            PhaseTimer(self.profile) if self.profile is not None else None
        )

        self.events = EventCalendar()
        self.now = 0.0
        #: Set once the run has been seeded; a resumed kernel skips the
        #: seeding/begin_trace phase and picks the loop back up.
        self._started = False
        #: node_id -> number of currently open drain windows.
        self._drained: dict[int, int] = {}
        #: task_id -> state, insertion-ordered (= dispatch order).
        self._running: dict[int, TaskState] = {}

    @property
    def trace(self) -> WorkflowTrace:
        """The workload's materialized trace (back-compat accessor).

        Prefer :attr:`source` — accessing ``trace`` forces a streaming
        source to materialize.
        """
        return self.source.trace()

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> SimulationResult | None:
        """Run the simulation; returns the result, or ``None`` if paused.

        ``until`` pauses the loop at a clock boundary: every event batch
        with time <= ``until`` is processed, then the kernel returns
        ``None`` with its full state intact — ready to be
        :meth:`checkpoint`-ed and later resumed (or simply run again).
        Calling ``run()`` on a paused or resumed kernel continues where
        it left off and is bit-for-bit identical to an uninterrupted
        run.
        """
        # Stock-collector certificates, re-derived per call so flag
        # flips between runs (e.g. ``stream``) are honoured.  When a
        # single stock ClusterMetricsCollector in exact mode sits on
        # the dispatch+release seams, the loop (and the kill/preempt
        # paths) append its timeline entries, queue waits, and
        # busy-memory integrals straight into its containers — the
        # same entries, in the same event order, the callback would
        # produce; ``_flush_pending`` then only folds the wait
        # statistics.  Likewise a stock event-wave subscriber gets its
        # makespan from one write-back instead of a call per wave.
        # Other subscribers on the same seams (workflow metrics, trace
        # collectors) still receive the generic fan-out — the loops
        # build their call tuples with the fast-pathed collector
        # filtered out, and collectors never read each other's state,
        # so the relative order is immaterial.
        dc = self._dispatch_collectors
        rc = self._release_collectors
        cands = [
            c
            for c in dc
            if type(c) is ClusterMetricsCollector and not c.stream
        ]
        self._cluster_fast = (
            cands[0]
            if len(cands) == 1 and any(c is cands[0] for c in rc)
            else None
        )
        mcands = [
            c
            for c in self._event_collectors
            if type(c) is ClusterMetricsCollector
        ]
        self._makespan_fast = mcands[0] if len(mcands) == 1 else None
        timer = self._timer
        if timer is None:
            # Fast path: profiling off — no timer reads anywhere.
            if not self._started:
                self._start()
            if not self._loop(until):
                return None
            return self._finalize()
        timer.start()
        try:
            if not self._started:
                self._start()
                timer.lap("seed")
            if not self._loop_profiled(until, timer):
                return None
            result = self._finalize()
            timer.lap("finalize")
        finally:
            timer.stop()
        result.profile = self.profile
        return result

    def _start(self) -> None:
        known = {node.node_id for node in self.manager.nodes}
        for outage in self.outages:
            if outage.node_id not in known:
                raise ValueError(
                    f"node outage {outage.spec!r} names unknown node "
                    f"{outage.node_id}; cluster has nodes {sorted(known)}"
                )
        self.manager.release_all()
        self.driver.seed(self)
        for outage in self.outages:
            self.events.push(outage.start_hours, OUTAGE_START, outage)
            self.events.push(outage.end_hours, OUTAGE_END, outage)
        self.predictor.begin_trace(
            TraceContext(
                workflow=self.source.workflow,
                n_tasks=self.driver.n_tasks,
                time_to_failure=self.time_to_failure,
                backend=self.backend_name,
            )
        )
        for collector in self.collectors:
            collector.on_run_start(self.manager)
        self._started = True

    def _loop(self, until: float | None = None) -> bool:
        """Process event waves; False when paused by ``until``.

        This is the kernel's hottest code: the
        :class:`~repro.sim.kernel.events.EventCalendar`'s two lanes are
        read raw and merged inline — the bulk-scheduled lane through its
        Python-list mirrors and a local ``cursor`` (written back in the
        ``finally``), the dynamic lane as a raw heap list (``heap[0]``
        peek, ``heappop``) — so scheduled arrivals never pay a heap
        sift.  All events sharing the current timestamp are consumed as
        one wave; the success/kill branch of the old ``_complete`` is
        inlined, per-event collector callbacks are coalesced into one
        batched ``on_events`` call per wave (stale completions and
        outage transitions are excluded from the count, exactly as they
        were excluded from the per-event fan-out), completion outcomes
        are handed to ``on_wave`` subscribers once per wave (the list is
        only built when someone subscribes), and the whole dispatch
        pass — sizing wave, placement, the bookkeeping of
        :meth:`Machine.allocate` (same capacity guard, same error),
        task-id handout, and the completion-event push — lives in the
        loop body so its local aliases are hoisted once per run instead
        of once per wave.  Every mutable container aliased here (event
        heap, schedule mirrors, ready-queue ``order`` list,
        ``_drained``, ``_running``) is identity-stable for the whole
        run — mutated in place, never rebound — and the scheduled lane
        is never extended while the loop runs.  Any change here must be
        mirrored in :meth:`_loop_profiled` — the golden and twin-parity
        tests pin the two loops bit-for-bit against each other.
        """
        events = self.events
        heap = events._heap
        s_times = events._mtimes
        s_kinds = events._mkinds
        s_seqs = events._mseqs
        s_payloads = events._spayloads
        has_payloads = s_payloads is not None
        s_n = events._n_scheduled
        cursor = events._cursor
        heappop = heapq.heappop
        heappush = heapq.heappush
        driver = self.driver
        on_arrival = driver.on_arrival
        on_success = driver.on_success
        # Bound-method tuples: the per-call attribute lookup inside the
        # collector fan-out loops was measurable at bench scale.
        ready_calls = tuple(c.on_ready for c in self._ready_collectors)
        # Stock-collector fast paths: when the stock collector sits on
        # a seam in deferred/exact mode, skip its bound-method call and
        # produce its effect directly — the wastage collector gets the
        # identical pending row; the cluster collector (the
        # ``run()``-issued ``_cluster_fast``/``_makespan_fast``
        # certificates) gets its timeline entries, queue waits, busy
        # integrals, and makespan written straight into its containers.
        # The call tuples below are built with the fast-pathed
        # collector filtered out, so any co-subscribers (workflow
        # metrics, trace collectors) still receive the generic fan-out.
        cf = self._cluster_fast
        if cf is not None:
            cf_timelines = cf._timelines
            cf_waits_append = cf._queue_waits.append
            cf_busy = cf._busy_mbh
        mf = self._makespan_fast
        makespan = mf._makespan if mf is not None else 0.0
        event_calls = tuple(
            c.on_events for c in self._event_collectors if c is not mf
        )
        dispatch_calls = tuple(
            c.on_dispatch
            for c in self._dispatch_collectors
            if c is not cf
        )
        release_calls = tuple(
            c.on_release
            for c in self._release_collectors
            if c is not cf
        )
        success_calls = tuple(
            c.on_task_success for c in self._success_collectors
        )
        wave_calls = tuple(c.on_wave for c in self._wave_collectors)
        sc = self._success_collectors
        wastage_pending = (
            sc[0]._pending.append
            if len(sc) == 1
            and type(sc[0]) is WastageCollector
            and sc[0]._deferred
            else None
        )
        # Stock flat driver with no on_ready subscribers: scheduled-lane
        # arrivals inline the block pop + ready-queue push (the
        # ``inline_arrival`` contract on the driver class).
        inline_arrival = (
            getattr(type(driver), "inline_arrival", False)
            and not ready_calls
        )
        outcomes: list = []
        outcomes_append = outcomes.append
        observe = self._observe
        driver_releases = self._driver_releases
        queue = driver.queue
        qorder = queue.order
        take_unsized = queue.unsized
        unsized_append = queue._unsized.append if inline_arrival else None
        manager = self.manager
        try_place = manager.try_place
        cap = manager._max_allocation_mb
        nodes = manager.nodes
        inline_place = type(manager.placement) is FirstFit
        empty_exclude = frozenset()
        drained = self._drained
        running = self._running
        time_to_failure = self.time_to_failure
        predictor = self.predictor
        predict_batch = predictor.predict_batch
        prediction_chunk = self.prediction_chunk
        kill = self._kill
        try:
          while True:
            # Wave clock: the earlier head of the two lanes.
            if cursor < s_n:
                now = s_times[cursor]
                if heap:
                    ht = heap[0][0]
                    if ht < now:
                        now = ht
            elif heap:
                now = heap[0][0]
            else:
                break
            if until is not None and now > until:
                return False
            self.now = now
            handled = 0
            while True:
                # Next event at ``now``, merging lanes on (time, kind,
                # seq); break once the wave is drained.
                if cursor < s_n and s_times[cursor] == now:
                    if heap:
                        h0 = heap[0]
                        if h0[0] == now:
                            hk = h0[1]
                            sk = s_kinds[cursor]
                            if hk < sk or (
                                hk == sk and h0[2] < s_seqs[cursor]
                            ):
                                _, kind, _, payload = heappop(heap)
                            else:
                                kind = sk
                                payload = (
                                    s_payloads[cursor]
                                    if has_payloads
                                    else None
                                )
                                cursor += 1
                        else:
                            kind = s_kinds[cursor]
                            payload = (
                                s_payloads[cursor] if has_payloads else None
                            )
                            cursor += 1
                    else:
                        kind = s_kinds[cursor]
                        payload = (
                            s_payloads[cursor] if has_payloads else None
                        )
                        cursor += 1
                elif heap and heap[0][0] == now:
                    _, kind, _, payload = heappop(heap)
                else:
                    break
                if kind == COMPLETION:
                    state, gen = payload
                    run = state.running
                    if gen != state.dispatch_gen or run is None:
                        continue  # preempted attempt; completion is stale
                    inst = state.inst
                    if run[2] >= inst.peak_memory_mb:
                        # Inlined :meth:`_finish`-equivalent success path
                        # (one per task; the method call and its ``self``
                        # lookups were measurable).
                        node, task_id, allocated, start = run
                        state.running = None
                        del node.running[task_id]
                        node.allocated_mb -= allocated
                        del running[task_id]
                        manager.generation += 1
                        occupied = now - start
                        if cf is not None:
                            cf_timelines[node.node_id].append(
                                (now, node.allocated_mb)
                            )
                            cf_busy[node.node_id] += allocated * occupied
                        for call in release_calls:
                            call(state, now, node, allocated, occupied)
                        if wastage_pending is not None:
                            wastage_pending((state, now, allocated))
                        else:
                            for call in success_calls:
                                call(state, now, allocated)
                        if observe:
                            predictor.observe(
                                TaskRecord(
                                    task_type=inst.task_type.name,
                                    workflow=inst.task_type.workflow,
                                    machine=inst.machine,
                                    timestamp=state.index,
                                    input_size_mb=inst.input_size_mb,
                                    peak_memory_mb=inst.peak_memory_mb,
                                    runtime_hours=inst.runtime_hours,
                                    success=True,
                                    attempt=state.attempt,
                                    allocated_mb=allocated,
                                    instance_id=inst.instance_id,
                                )
                            )
                        if driver_releases:
                            for released in on_success(state, now):
                                released.queued_at = now
                                for call in ready_calls:
                                    call(released, now)
                        if wave_calls:
                            outcomes_append(
                                (state, True, allocated, occupied)
                            )
                    else:
                        freed = kill(state, now)
                        if wave_calls:
                            outcomes_append(
                                (state, False, freed[0], freed[1])
                            )
                elif kind == ARRIVAL:
                    if inline_arrival and payload is None:
                        # Inlined FlatStreamDriver.on_arrival: pop the
                        # next prebuilt state, stamp it, and push it
                        # onto the FCFS heap + unsized index — the
                        # exact statement sequence of the driver call.
                        block = driver._block
                        if not block:
                            driver._refill()
                            block = driver._block
                        if block:
                            state = block.pop()
                            state.arrival = now
                            state.queued_at = now
                            heappush(qorder, (state.index, state))
                            unsized_append(state)
                    else:
                        for state in on_arrival(payload, now):
                            state.queued_at = now
                            for call in ready_calls:
                                call(state, now)
                elif kind == OUTAGE_END:
                    self._end_outage(payload, now)
                    continue  # drains don't extend the measured makespan
                else:  # OUTAGE_START
                    self._start_outage(payload, now)
                    continue
                handled += 1
            if handled:
                if mf is not None:
                    # Wave times are non-decreasing, so the makespan is
                    # just the last counted wave's clock — assigned
                    # here, written back once in the ``finally``.
                    makespan = now
                for call in event_calls:
                    call(now, handled)
                if wave_calls:
                    for call in wave_calls:
                        call(now, handled, outcomes)
                    del outcomes[:]
            # Dispatch pass: size, place, and start queued heads FCFS.
            while qorder:
                head = qorder[0][-1]
                allocation = head.allocation
                if allocation is None:
                    # Inlined :func:`size_first_attempts` — same bound,
                    # same typed error for impossible tasks.
                    states = take_unsized(prediction_chunk)
                    allocations = predict_batch(
                        [st.submission for st in states]
                    )
                    for st, alloc in zip(states, allocations):
                        st_inst = st.inst
                        if st_inst.peak_memory_mb > cap:
                            raise UnschedulableTaskError(
                                task_type=st_inst.task_type.key,
                                instance_id=st_inst.instance_id,
                                peak_memory_mb=st_inst.peak_memory_mb,
                                capacity_mb=cap,
                            )
                        alloc = float(alloc)
                        if alloc < 1.0:
                            alloc = 1.0
                        if alloc > cap:
                            alloc = cap
                        st.allocation = alloc
                        st.first_allocation = alloc
                    allocation = head.allocation
                if drained:
                    node = try_place(allocation, exclude=drained.keys())
                elif inline_place:
                    # Inlined :meth:`ResourceManager.try_place` for the
                    # default first-fit policy with no active drains:
                    # same failure-cache certificate, same scan.
                    if (
                        manager._fail_gen == manager.generation
                        and allocation >= manager._fail_mb
                        and not manager._fail_exclude
                    ):
                        node = None
                    else:
                        node = None
                        for cand in nodes:
                            if (
                                allocation
                                <= cand.config.memory_mb
                                - cand.allocated_mb
                                + 1e-9
                            ):
                                node = cand
                                break
                        if node is None:
                            manager._fail_gen = manager.generation
                            manager._fail_mb = allocation
                            manager._fail_exclude = empty_exclude
                else:
                    node = try_place(allocation)
                if node is None:
                    # Strict FCFS: the head blocks until memory frees up.
                    break
                heappop(qorder)
                attempt = head.attempt + 1
                if attempt > MAX_ATTEMPTS:
                    raise RuntimeError(
                        f"task {head.inst.instance_id} "
                        f"({head.inst.task_type.key}) did not finish within "
                        f"{MAX_ATTEMPTS} attempts; last allocation "
                        f"{allocation:.0f} MB, "
                        f"peak {head.inst.peak_memory_mb:.0f} MB"
                    )
                task_id = manager._next_task_id
                manager._next_task_id = task_id + 1
                # Inlined Machine.allocate: the placement scan already
                # proved the fit for builtin policies, but a third-party
                # policy may return an ill-fitting node — keep the guard.
                if allocation > node.config.memory_mb - node.allocated_mb + 1e-9:
                    raise MemoryError(
                        f"node {node.node_id} ({node.config.name}) cannot fit "
                        f"{allocation:.0f} MB; free={node.free_mb:.0f} MB"
                    )
                node.running[task_id] = allocation
                node.allocated_mb += allocation
                head.attempt = attempt
                gen = head.dispatch_gen + 1
                head.dispatch_gen = gen
                head.running = (node, task_id, allocation, now)
                running[task_id] = head
                wait = now - head.queued_at
                if cf is not None:
                    cf_timelines[node.node_id].append(
                        (now, node.allocated_mb)
                    )
                    cf_waits_append(wait)
                for call in dispatch_calls:
                    call(head, now, node, wait)
                inst = head.inst
                duration = (
                    inst.runtime_hours
                    if allocation >= inst.peak_memory_mb
                    else inst.runtime_hours * time_to_failure
                )
                seq = events._seq
                events._seq = seq + 1
                heappush(heap, (now + duration, COMPLETION, seq, (head, gen)))
        finally:
            # Pause, normal exit, or error: the calendar must agree with
            # the local cursor before anyone can observe it, and the
            # fast-path makespan must land on its collector.
            events._cursor = cursor
            if mf is not None and makespan > mf._makespan:
                mf._makespan = makespan
        return True

    def _loop_profiled(self, until: float | None, timer: PhaseTimer) -> bool:
        """The event loop with the :class:`PhaseTimer` seam threaded in.

        A straight mirror of :meth:`_loop` — the
        control flow and the order of every side effect are identical,
        only ``timer.lap(...)`` calls are interleaved, so results stay
        bit-for-bit the same (pinned by the golden profiler tests) and
        the un-instrumented fast path keeps paying nothing.  Each lap
        charges the interval since the previous one, so phase totals
        tile the loop's wall time:

        - ``heap``     — per-wave clock advance and loop control;
        - ``wave``     — per-event two-lane merge and pop (the event
          calendar's wave extraction);
        - ``arrival``  — driver arrival handling (incl. on_ready);
        - ``success``  — completion within limit: release, ledger,
          ``predictor.observe``, successor release;
        - ``kill``     — limit exceeded: release, ledger, observe,
          re-size with escalation floor, requeue;
        - ``outage``   — drain open/close incl. preemptions;
        - ``collect``  — per-wave batched and per-dispatch collector
          fan-out;
        - ``size``     — ``predict_batch`` sizing waves;
        - ``place``    — placement scans;
        - ``dispatch`` — allocation bookkeeping + completion push.

        (The profile's ``n_events`` counts popped events, same as the
        BENCH events/sec denominator.)
        """
        profile = self.profile
        assert profile is not None
        events = self.events
        heap = events._heap
        s_times = events._mtimes
        s_kinds = events._mkinds
        s_seqs = events._mseqs
        s_payloads = events._spayloads
        has_payloads = s_payloads is not None
        s_n = events._n_scheduled
        cursor = events._cursor
        heappop = heapq.heappop
        heappush = heapq.heappush
        driver = self.driver
        on_arrival = driver.on_arrival
        on_success = driver.on_success
        # Bound-method tuples: the per-call attribute lookup inside the
        # collector fan-out loops was measurable at bench scale.
        ready_calls = tuple(c.on_ready for c in self._ready_collectors)
        # Stock-collector fast paths: when the stock collector sits on
        # a seam in deferred/exact mode, skip its bound-method call and
        # produce its effect directly — the wastage collector gets the
        # identical pending row; the cluster collector (the
        # ``run()``-issued ``_cluster_fast``/``_makespan_fast``
        # certificates) gets its timeline entries, queue waits, busy
        # integrals, and makespan written straight into its containers.
        # The call tuples below are built with the fast-pathed
        # collector filtered out, so any co-subscribers (workflow
        # metrics, trace collectors) still receive the generic fan-out.
        cf = self._cluster_fast
        if cf is not None:
            cf_timelines = cf._timelines
            cf_waits_append = cf._queue_waits.append
            cf_busy = cf._busy_mbh
        mf = self._makespan_fast
        makespan = mf._makespan if mf is not None else 0.0
        event_calls = tuple(
            c.on_events for c in self._event_collectors if c is not mf
        )
        dispatch_calls = tuple(
            c.on_dispatch
            for c in self._dispatch_collectors
            if c is not cf
        )
        release_calls = tuple(
            c.on_release
            for c in self._release_collectors
            if c is not cf
        )
        success_calls = tuple(
            c.on_task_success for c in self._success_collectors
        )
        wave_calls = tuple(c.on_wave for c in self._wave_collectors)
        sc = self._success_collectors
        wastage_pending = (
            sc[0]._pending.append
            if len(sc) == 1
            and type(sc[0]) is WastageCollector
            and sc[0]._deferred
            else None
        )
        # Stock flat driver with no on_ready subscribers: scheduled-lane
        # arrivals inline the block pop + ready-queue push (the
        # ``inline_arrival`` contract on the driver class).
        inline_arrival = (
            getattr(type(driver), "inline_arrival", False)
            and not ready_calls
        )
        outcomes: list = []
        outcomes_append = outcomes.append
        observe = self._observe
        driver_releases = self._driver_releases
        queue = driver.queue
        qorder = queue.order
        take_unsized = queue.unsized
        unsized_append = queue._unsized.append if inline_arrival else None
        manager = self.manager
        try_place = manager.try_place
        cap = manager._max_allocation_mb
        nodes = manager.nodes
        inline_place = type(manager.placement) is FirstFit
        empty_exclude = frozenset()
        drained = self._drained
        running = self._running
        time_to_failure = self.time_to_failure
        predictor = self.predictor
        predict_batch = predictor.predict_batch
        prediction_chunk = self.prediction_chunk
        kill = self._kill
        try:
          while True:
            # Wave clock: the earlier head of the two lanes.
            if cursor < s_n:
                now = s_times[cursor]
                if heap:
                    ht = heap[0][0]
                    if ht < now:
                        now = ht
            elif heap:
                now = heap[0][0]
            else:
                break
            if until is not None and now > until:
                return False
            self.now = now
            timer.lap("heap")
            handled = 0
            while True:
                # Next event at ``now``, merging lanes on (time, kind,
                # seq); break once the wave is drained.
                if cursor < s_n and s_times[cursor] == now:
                    if heap:
                        h0 = heap[0]
                        if h0[0] == now:
                            hk = h0[1]
                            sk = s_kinds[cursor]
                            if hk < sk or (
                                hk == sk and h0[2] < s_seqs[cursor]
                            ):
                                _, kind, _, payload = heappop(heap)
                            else:
                                kind = sk
                                payload = (
                                    s_payloads[cursor]
                                    if has_payloads
                                    else None
                                )
                                cursor += 1
                        else:
                            kind = s_kinds[cursor]
                            payload = (
                                s_payloads[cursor] if has_payloads else None
                            )
                            cursor += 1
                    else:
                        kind = s_kinds[cursor]
                        payload = (
                            s_payloads[cursor] if has_payloads else None
                        )
                        cursor += 1
                elif heap and heap[0][0] == now:
                    _, kind, _, payload = heappop(heap)
                else:
                    break
                profile.n_events += 1
                timer.lap("wave")
                if kind == COMPLETION:
                    state, gen = payload
                    run = state.running
                    if gen != state.dispatch_gen or run is None:
                        continue  # stale; charged to the next wave lap
                    inst = state.inst
                    if run[2] >= inst.peak_memory_mb:
                        node, task_id, allocated, start = run
                        state.running = None
                        del node.running[task_id]
                        node.allocated_mb -= allocated
                        del running[task_id]
                        manager.generation += 1
                        occupied = now - start
                        if cf is not None:
                            cf_timelines[node.node_id].append(
                                (now, node.allocated_mb)
                            )
                            cf_busy[node.node_id] += allocated * occupied
                        for call in release_calls:
                            call(state, now, node, allocated, occupied)
                        if wastage_pending is not None:
                            wastage_pending((state, now, allocated))
                        else:
                            for call in success_calls:
                                call(state, now, allocated)
                        if observe:
                            predictor.observe(
                                TaskRecord(
                                    task_type=inst.task_type.name,
                                    workflow=inst.task_type.workflow,
                                    machine=inst.machine,
                                    timestamp=state.index,
                                    input_size_mb=inst.input_size_mb,
                                    peak_memory_mb=inst.peak_memory_mb,
                                    runtime_hours=inst.runtime_hours,
                                    success=True,
                                    attempt=state.attempt,
                                    allocated_mb=allocated,
                                    instance_id=inst.instance_id,
                                )
                            )
                        if driver_releases:
                            for released in on_success(state, now):
                                released.queued_at = now
                                for call in ready_calls:
                                    call(released, now)
                        if wave_calls:
                            outcomes_append(
                                (state, True, allocated, occupied)
                            )
                        timer.lap("success")
                    else:
                        freed = kill(state, now)
                        if wave_calls:
                            outcomes_append(
                                (state, False, freed[0], freed[1])
                            )
                        timer.lap("kill")
                elif kind == ARRIVAL:
                    if inline_arrival and payload is None:
                        block = driver._block
                        if not block:
                            driver._refill()
                            block = driver._block
                        if block:
                            state = block.pop()
                            state.arrival = now
                            state.queued_at = now
                            heappush(qorder, (state.index, state))
                            unsized_append(state)
                    else:
                        for state in on_arrival(payload, now):
                            state.queued_at = now
                            for call in ready_calls:
                                call(state, now)
                    timer.lap("arrival")
                elif kind == OUTAGE_END:
                    self._end_outage(payload, now)
                    timer.lap("outage")
                    continue
                else:  # OUTAGE_START
                    self._start_outage(payload, now)
                    timer.lap("outage")
                    continue
                handled += 1
            if handled:
                if mf is not None:
                    # Wave times are non-decreasing, so the makespan is
                    # just the last counted wave's clock — assigned
                    # here, written back once in the ``finally``.
                    makespan = now
                for call in event_calls:
                    call(now, handled)
                if wave_calls:
                    for call in wave_calls:
                        call(now, handled, outcomes)
                    del outcomes[:]
                timer.lap("collect")
            while qorder:
                head = qorder[0][-1]
                allocation = head.allocation
                if allocation is None:
                    states = take_unsized(prediction_chunk)
                    allocations = predict_batch(
                        [st.submission for st in states]
                    )
                    for st, alloc in zip(states, allocations):
                        st_inst = st.inst
                        if st_inst.peak_memory_mb > cap:
                            raise UnschedulableTaskError(
                                task_type=st_inst.task_type.key,
                                instance_id=st_inst.instance_id,
                                peak_memory_mb=st_inst.peak_memory_mb,
                                capacity_mb=cap,
                            )
                        alloc = float(alloc)
                        if alloc < 1.0:
                            alloc = 1.0
                        if alloc > cap:
                            alloc = cap
                        st.allocation = alloc
                        st.first_allocation = alloc
                    allocation = head.allocation
                    timer.lap("size")
                if drained:
                    node = try_place(allocation, exclude=drained.keys())
                elif inline_place:
                    # Inlined :meth:`ResourceManager.try_place` for the
                    # default first-fit policy with no active drains:
                    # same failure-cache certificate, same scan.
                    if (
                        manager._fail_gen == manager.generation
                        and allocation >= manager._fail_mb
                        and not manager._fail_exclude
                    ):
                        node = None
                    else:
                        node = None
                        for cand in nodes:
                            if (
                                allocation
                                <= cand.config.memory_mb
                                - cand.allocated_mb
                                + 1e-9
                            ):
                                node = cand
                                break
                        if node is None:
                            manager._fail_gen = manager.generation
                            manager._fail_mb = allocation
                            manager._fail_exclude = empty_exclude
                else:
                    node = try_place(allocation)
                timer.lap("place")
                if node is None:
                    break
                heappop(qorder)
                attempt = head.attempt + 1
                if attempt > MAX_ATTEMPTS:
                    raise RuntimeError(
                        f"task {head.inst.instance_id} "
                        f"({head.inst.task_type.key}) did not finish within "
                        f"{MAX_ATTEMPTS} attempts; last allocation "
                        f"{allocation:.0f} MB, "
                        f"peak {head.inst.peak_memory_mb:.0f} MB"
                    )
                task_id = manager._next_task_id
                manager._next_task_id = task_id + 1
                if allocation > node.config.memory_mb - node.allocated_mb + 1e-9:
                    raise MemoryError(
                        f"node {node.node_id} ({node.config.name}) cannot fit "
                        f"{allocation:.0f} MB; free={node.free_mb:.0f} MB"
                    )
                node.running[task_id] = allocation
                node.allocated_mb += allocation
                head.attempt = attempt
                gen = head.dispatch_gen + 1
                head.dispatch_gen = gen
                head.running = (node, task_id, allocation, now)
                running[task_id] = head
                wait = now - head.queued_at
                timer.lap("dispatch")
                if cf is not None:
                    cf_timelines[node.node_id].append(
                        (now, node.allocated_mb)
                    )
                    cf_waits_append(wait)
                for call in dispatch_calls:
                    call(head, now, node, wait)
                timer.lap("collect")
                inst = head.inst
                duration = (
                    inst.runtime_hours
                    if allocation >= inst.peak_memory_mb
                    else inst.runtime_hours * time_to_failure
                )
                seq = events._seq
                events._seq = seq + 1
                heappush(heap, (now + duration, COMPLETION, seq, (head, gen)))
                timer.lap("dispatch")
        finally:
            # Pause, normal exit, or error: the calendar must agree with
            # the local cursor before anyone can observe it, and the
            # fast-path makespan must land on its collector.
            events._cursor = cursor
            if mf is not None and makespan > mf._makespan:
                mf._makespan = makespan
        return True

    def _finalize(self) -> SimulationResult:
        self.driver.finish(self)
        self.predictor.end_trace()
        result = SimulationResult(
            workflow=self.source.workflow,
            method=self.predictor.name,
            time_to_failure=self.time_to_failure,
            ledger=self.wastage.ledger,
        )
        result.summary = RunSummary(
            workflow=self.source.workflow,
            method=self.predictor.name,
            time_to_failure=self.time_to_failure,
        )
        for collector in self.collectors:
            collector.contribute(result)
        return result

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> None:
        """Serialize the paused kernel (clock, heap, drivers, collectors,
        RNG states) to ``path``; see :mod:`repro.sim.kernel.checkpoint`.
        """
        from repro.sim.kernel.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @classmethod
    def resume(cls, path: str) -> "SimulationKernel":
        """Load a checkpointed kernel; ``run()`` continues bit-for-bit."""
        from repro.sim.kernel.checkpoint import load_checkpoint

        return load_checkpoint(path)

    # ------------------------------------------------------------------
    # lifecycle transitions
    # ------------------------------------------------------------------
    def _release(self, state: TaskState, now: float) -> tuple[float, float]:
        """Free the task's node slice; returns (allocated mb, occupied h)."""
        node, task_id, allocated, start = state.running
        state.running = None
        # Inlined Machine.release: ``task_id`` is always present (the
        # state carried a live running tuple) and the stored reservation
        # equals ``allocated`` — the tuple and the node never disagree.
        del node.running[task_id]
        node.allocated_mb -= allocated
        del self._running[task_id]
        # Capacity grew: void any cached placement failure.
        self.manager.generation += 1
        occupied = now - start
        cf = self._cluster_fast
        if cf is not None:
            cf._timelines[node.node_id].append((now, node.allocated_mb))
            cf._busy_mbh[node.node_id] += allocated * occupied
        for collector in self._release_collectors:
            if collector is not cf:
                collector.on_release(state, now, node, allocated, occupied)
        return allocated, occupied

    def _kill(self, state: TaskState, now: float) -> tuple[float, float]:
        """Kill an over-limit attempt; returns (allocated mb, occupied h)."""
        inst = state.inst
        # Inlined :meth:`_release` (one call per kill).
        node, task_id, allocated, start = state.running
        state.running = None
        del node.running[task_id]
        node.allocated_mb -= allocated
        del self._running[task_id]
        self.manager.generation += 1
        occupied = now - start
        cf = self._cluster_fast
        if cf is not None:
            cf._timelines[node.node_id].append((now, node.allocated_mb))
            cf._busy_mbh[node.node_id] += allocated * occupied
        for collector in self._release_collectors:
            if collector is not cf:
                collector.on_release(state, now, node, allocated, occupied)
        for collector in self._failure_collectors:
            collector.on_task_failure(state, now, allocated, occupied)
        # The failure record's "peak" is the exceeded limit — a lower
        # bound, flagged via ``success=False``.
        if self._observe:
            self.predictor.observe(
                TaskRecord(
                    task_type=inst.task_type.name,
                    workflow=inst.task_type.workflow,
                    machine=inst.machine,
                    timestamp=state.index,
                    input_size_mb=inst.input_size_mb,
                    peak_memory_mb=allocated,
                    runtime_hours=occupied,
                    success=False,
                    attempt=state.attempt,
                    allocated_mb=allocated,
                    instance_id=inst.instance_id,
                )
            )
        # Retries must strictly grow or the task can never finish; the
        # escalation floor is the configured doubling factor.
        next_allocation = float(
            self.predictor.on_failure(state.submission, allocated, state.attempt)
        )
        if next_allocation <= allocated:
            next_allocation = allocated * self.doubling_factor
        state.allocation = clamp_allocation_checked(
            self.manager, inst, next_allocation
        )
        state.queued_at = now
        self.driver.queue.requeue(state)
        for collector in self._ready_collectors:
            collector.on_ready(state, now)
        return allocated, occupied

    # ------------------------------------------------------------------
    # node drains
    # ------------------------------------------------------------------
    def _start_outage(self, outage: NodeOutage, now: float) -> None:
        # The effective node set changed; cached placement failures are
        # scoped to one exclude set, so every transition voids them.
        self.manager.generation += 1
        opened = outage.node_id not in self._drained
        self._drained[outage.node_id] = self._drained.get(outage.node_id, 0) + 1
        if opened:
            for collector in self._outage_collectors:
                collector.on_outage(outage.node_id, now, True)
        # Preempt in dispatch order (``_running`` is insertion-ordered).
        victims = [
            st
            for st in self._running.values()
            if st.running is not None
            and st.running[0].node_id == outage.node_id
        ]
        for state in victims:
            self._release(state, now)
            # Not the sizing method's fault: the attempt budget and the
            # allocation are untouched, nothing hits the ledger, and the
            # stale completion event is invalidated by the bumped gen.
            state.attempt -= 1
            state.dispatch_gen += 1
            for collector in self._preempt_collectors:
                collector.on_preempt(state, now)
            state.queued_at = now
            self.driver.queue.requeue(state)
            for collector in self._ready_collectors:
                collector.on_ready(state, now)

    def _end_outage(self, outage: NodeOutage, now: float) -> None:
        # A drained node may return to service: capacity can grow.
        self.manager.generation += 1
        remaining = self._drained.get(outage.node_id, 0) - 1
        if remaining > 0:
            self._drained[outage.node_id] = remaining
        else:
            self._drained.pop(outage.node_id, None)
            for collector in self._outage_collectors:
                collector.on_outage(outage.node_id, now, False)
