"""The unified discrete-event simulation kernel.

One event loop serves every execution mode.  The kernel owns what the
flat event backend and the DAG scheduling engine used to duplicate:

- the **clock and typed event heap** (:mod:`repro.sim.kernel.events`)
  with deterministic three-level tie-breaking;
- the **sizing lifecycle** — size a dispatch wave with one
  :meth:`~repro.sim.interface.MemoryPredictor.predict_batch` call,
  place through the manager's policy, run under the strict limit, kill
  at ``time_to_failure`` of the runtime, re-size with the
  doubling-factor escalation floor, re-queue at original priority;
- **metrics dispatch** to pluggable
  :class:`~repro.sim.kernel.collectors.MetricsCollector` objects;
- kernel-level scenarios such as scheduled **node drains**
  (:mod:`repro.sim.kernel.outage`), available to every driver.

What still differs between modes lives in a :class:`KernelDriver`: how
work *arrives* (per-task arrival times vs. whole workflow instances)
and how completions *release* more work (a flat stream releases nothing;
a DAG driver releases successor tasks).  Drivers own their
:class:`ReadyQueue` so dispatch priority stays their business — the
kernel only asks for the head, strict FCFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Protocol, Sequence, runtime_checkable

from repro.cluster.machine import Machine
from repro.cluster.manager import ResourceManager
from repro.obs.profile import KernelProfile, PhaseTimer
from repro.provenance.records import TaskRecord
from repro.sim.backends.base import (
    MAX_ATTEMPTS,
    clamp_allocation_checked,
    size_first_attempts,
)
from repro.sim.interface import MemoryPredictor, TaskSubmission, TraceContext
from repro.sim.kernel.collectors import (
    BaseCollector,
    MetricsCollector,
    WastageCollector,
)
from repro.sim.kernel.events import (
    ARRIVAL,
    COMPLETION,
    OUTAGE_END,
    OUTAGE_START,
    EventHeap,
)
from repro.sim.kernel.outage import NodeOutage, parse_node_outages
from repro.sim.results import RunSummary, SimulationResult
from repro.workflow.task import TaskInstance, WorkflowTrace
from repro.workload.base import WorkloadSource, as_source

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.instance import WorkflowInstance

__all__ = ["TaskState", "ReadyQueue", "KernelDriver", "SimulationKernel"]


@dataclass
class TaskState:
    """Unified per-task bookkeeping shared by every kernel driver."""

    inst: TaskInstance
    submission: TaskSubmission
    #: Dense submission position — the prediction-log timestamp and the
    #: flat FCFS priority.
    index: int
    #: Arrival time (hours); meaningful in flat mode.
    arrival: float = 0.0
    #: Owning workflow instance; ``None`` outside DAG mode.
    wi: "WorkflowInstance | None" = None
    allocation: float | None = None
    first_allocation: float | None = None
    attempt: int = 0
    #: When the task last entered the ready queue (arrival, re-queue
    #: after a kill, or preemption); every dispatch charges
    #: ``now - queued_at`` as queue wait.
    queued_at: float = 0.0
    #: (node, task_id, allocated_mb, start_time) while executing.
    running: tuple[Machine, int, float, float] | None = None
    #: Incremented on every dispatch and preemption; completion events
    #: carry the value at dispatch time, so a preempted attempt's
    #: in-flight completion is recognized as stale and dropped.
    dispatch_gen: int = 0

    def __lt__(self, other: "TaskState") -> bool:  # heap tie-breaker
        return self.index < other.index


@runtime_checkable
class ReadyQueue(Protocol):
    """The driver-owned dispatch queue; the kernel drains it strictly FCFS."""

    def __bool__(self) -> bool:
        ...

    def __len__(self) -> int:
        ...

    def head(self) -> TaskState:
        """The state that must dispatch next."""
        ...

    def pop(self) -> TaskState:
        ...

    def unsized(self, limit: int) -> list[TaskState]:
        """First ``limit`` queued states without an allocation, FCFS order."""
        ...

    def requeue(self, state: TaskState) -> None:
        """Re-enter ``state`` at its original dispatch priority."""
        ...


class KernelDriver(Protocol):
    """Mode-specific behaviour plugged into the kernel.

    After :meth:`seed` the driver exposes ``queue`` (its
    :class:`ReadyQueue`) and ``n_tasks`` (total task instances of the
    run, reported to the predictor's trace context).
    """

    queue: ReadyQueue
    n_tasks: int

    def seed(self, kernel: "SimulationKernel") -> None:
        """Build per-task states and push the initial arrival events."""
        ...

    def on_arrival(self, payload: object, now: float) -> Iterable[TaskState]:
        """Handle one arrival event; returns the states made ready."""
        ...

    def on_success(self, state: TaskState, now: float) -> Iterable[TaskState]:
        """Propagate a success; returns states released into the queue."""
        ...

    def finish(self, kernel: "SimulationKernel") -> None:
        """Post-loop invariant checks (e.g. no unfinished workflows)."""
        ...


class SimulationKernel:
    """One event loop for every simulation mode.

    Parameters
    ----------
    workload:
        Where tasks come from: a
        :class:`~repro.workload.base.WorkloadSource`, a materialized
        :class:`~repro.workflow.task.WorkflowTrace`, or a workload spec
        string — normalized through
        :func:`~repro.workload.base.as_source`.  Drivers pull tasks and
        whole workflow instances from the source lazily; the source
        also names the workflow in results and the predictor's trace
        context.
    predictor / manager / time_to_failure:
        The standard backend contract
        (:class:`~repro.sim.backends.base.SimulatorBackend`).
    driver:
        Mode-specific arrival/release behaviour (:class:`KernelDriver`).
    collectors:
        Extra :class:`MetricsCollector` instances; a
        :class:`WastageCollector` is always installed first (the result
        schema is built from it).
    prediction_chunk:
        How many queued tasks are sized per ``predict_batch`` call;
        chunking keeps predictions close to dispatch time so online
        learning from earlier completions still reaches later tasks.
    doubling_factor:
        Escalation floor after a kill: when the predictor's retry
        proposal does not grow, the next allocation is
        ``failed * doubling_factor``.
    outages:
        Scheduled node drain windows
        (:class:`~repro.sim.kernel.outage.NodeOutage` or spec strings);
        each pauses placement on its node and preempts the attempts
        running there.
    backend_name:
        Reported in the predictor's trace context.
    stream_collectors:
        Streaming-collector mode: the always-installed
        :class:`WastageCollector` drops its per-task log and outcome
        lists, keeping only online aggregates and sketches — memory
        stays bounded at million-task scale.  The result then carries a
        ``summary`` but empty ``predictions``.
    spill:
        Optional JSONL path; every prediction log is appended there in
        completion order (works with or without ``stream_collectors``).
    profile:
        Enable the kernel phase profiler: per-phase wall-time/call
        counters (:class:`~repro.obs.profile.KernelProfile`) attached to
        the result as ``result.profile``.  Measurement only — results
        are bit-for-bit identical with profiling on or off.  When off
        (the default) the instrumented loop is never entered, so the
        hot path pays nothing.
    """

    def __init__(
        self,
        workload: WorkloadSource | WorkflowTrace | str,
        predictor: MemoryPredictor,
        manager: ResourceManager,
        time_to_failure: float,
        *,
        driver: KernelDriver,
        collectors: Sequence[MetricsCollector] = (),
        prediction_chunk: int = 32,
        doubling_factor: float = 2.0,
        outages: Sequence[NodeOutage | str] = (),
        backend_name: str = "event",
        stream_collectors: bool = False,
        spill: str | None = None,
        profile: bool = False,
    ) -> None:
        self.source = as_source(workload)
        self.predictor = predictor
        self.manager = manager
        self.time_to_failure = time_to_failure
        self.driver = driver
        self.stream_collectors = stream_collectors
        self.wastage = WastageCollector(
            keep_logs=not stream_collectors, spill=spill
        )
        self.collectors: tuple[MetricsCollector, ...] = (
            self.wastage,
            *collectors,
        )
        # Per-event dispatch list: only collectors that actually override
        # on_event get the call — it fires once per heap event, and most
        # collectors (including WastageCollector) inherit the no-op.
        self._event_collectors: tuple[MetricsCollector, ...] = tuple(
            c
            for c in self.collectors
            if getattr(type(c), "on_event", None) is not BaseCollector.on_event
        )
        # Same pre-filter for the rarer observability callbacks: with no
        # subscriber (the common case) each fire site iterates an empty
        # tuple — one attribute load, no calls.
        self._ready_collectors: tuple[MetricsCollector, ...] = tuple(
            c
            for c in self.collectors
            if getattr(type(c), "on_ready", None) is not BaseCollector.on_ready
        )
        self._outage_collectors: tuple[MetricsCollector, ...] = tuple(
            c
            for c in self.collectors
            if getattr(type(c), "on_outage", None)
            is not BaseCollector.on_outage
        )
        self.prediction_chunk = prediction_chunk
        self.doubling_factor = doubling_factor
        self.outages = parse_node_outages(outages)
        self.backend_name = backend_name
        #: Per-phase wall-time accounting; ``None`` unless ``profile=True``.
        self.profile: KernelProfile | None = (
            KernelProfile() if profile else None
        )
        self._timer: PhaseTimer | None = (
            PhaseTimer(self.profile) if self.profile is not None else None
        )

        self.events = EventHeap()
        self.now = 0.0
        #: Set once the run has been seeded; a resumed kernel skips the
        #: seeding/begin_trace phase and picks the loop back up.
        self._started = False
        #: node_id -> number of currently open drain windows.
        self._drained: dict[int, int] = {}
        #: task_id -> state, insertion-ordered (= dispatch order).
        self._running: dict[int, TaskState] = {}

    @property
    def trace(self) -> WorkflowTrace:
        """The workload's materialized trace (back-compat accessor).

        Prefer :attr:`source` — accessing ``trace`` forces a streaming
        source to materialize.
        """
        return self.source.trace()

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> SimulationResult | None:
        """Run the simulation; returns the result, or ``None`` if paused.

        ``until`` pauses the loop at a clock boundary: every event batch
        with time <= ``until`` is processed, then the kernel returns
        ``None`` with its full state intact — ready to be
        :meth:`checkpoint`-ed and later resumed (or simply run again).
        Calling ``run()`` on a paused or resumed kernel continues where
        it left off and is bit-for-bit identical to an uninterrupted
        run.
        """
        timer = self._timer
        if timer is None:
            # Fast path: profiling off — no timer reads anywhere.
            if not self._started:
                self._start()
            if not self._loop(until):
                return None
            return self._finalize()
        timer.start()
        try:
            if not self._started:
                self._start()
                timer.lap("seed")
            if not self._loop_profiled(until, timer):
                return None
            result = self._finalize()
            timer.lap("finalize")
        finally:
            timer.stop()
        result.profile = self.profile
        return result

    def _start(self) -> None:
        known = {node.node_id for node in self.manager.nodes}
        for outage in self.outages:
            if outage.node_id not in known:
                raise ValueError(
                    f"node outage {outage.spec!r} names unknown node "
                    f"{outage.node_id}; cluster has nodes {sorted(known)}"
                )
        self.manager.release_all()
        self.driver.seed(self)
        for outage in self.outages:
            self.events.push(outage.start_hours, OUTAGE_START, outage)
            self.events.push(outage.end_hours, OUTAGE_END, outage)
        self.predictor.begin_trace(
            TraceContext(
                workflow=self.source.workflow,
                n_tasks=self.driver.n_tasks,
                time_to_failure=self.time_to_failure,
                backend=self.backend_name,
            )
        )
        for collector in self.collectors:
            collector.on_run_start(self.manager)
        self._started = True

    def _loop(self, until: float | None = None) -> bool:
        """Process event batches; False when paused by ``until``."""
        while self.events:
            now = self.events.next_time
            if until is not None and now > until:
                return False
            self.now = now
            while self.events and self.events.next_time == now:
                _, kind, payload = self.events.pop()
                if kind == COMPLETION:
                    state, gen = payload
                    if gen != state.dispatch_gen or state.running is None:
                        continue  # preempted attempt; completion is stale
                    self._complete(state, now)
                elif kind == ARRIVAL:
                    for state in self.driver.on_arrival(payload, now):
                        state.queued_at = now
                        for collector in self._ready_collectors:
                            collector.on_ready(state, now)
                elif kind == OUTAGE_END:
                    self._end_outage(payload, now)
                    continue  # drains don't extend the measured makespan
                else:  # OUTAGE_START
                    self._start_outage(payload, now)
                    continue
                for collector in self._event_collectors:
                    collector.on_event(now)
            self._schedule(now)
        return True

    def _loop_profiled(self, until: float | None, timer: PhaseTimer) -> bool:
        """The event loop with the :class:`PhaseTimer` seam threaded in.

        A straight mirror of :meth:`_loop` + :meth:`_schedule` — the
        control flow and the order of every side effect are identical,
        only ``timer.lap(...)`` calls are interleaved, so results stay
        bit-for-bit the same (pinned by the golden profiler tests) and
        the un-instrumented fast path keeps paying nothing.  Each lap
        charges the interval since the previous one, so phase totals
        tile the loop's wall time:

        - ``heap``     — event pop, clock advance, loop control;
        - ``arrival``  — driver arrival handling (incl. on_ready);
        - ``success``  — completion within limit: release, ledger,
          ``predictor.observe``, successor release;
        - ``kill``     — limit exceeded: release, ledger, observe,
          re-size with escalation floor, requeue;
        - ``outage``   — drain open/close incl. preemptions;
        - ``collect``  — per-event and per-dispatch collector fan-out;
        - ``size``     — ``predict_batch`` sizing waves;
        - ``place``    — placement scans;
        - ``dispatch`` — allocation bookkeeping + completion push.

        (The profile's ``n_events`` counts heap pops, same as the BENCH
        events/sec denominator.)
        """
        profile = self.profile
        assert profile is not None
        while self.events:
            now = self.events.next_time
            if until is not None and now > until:
                return False
            self.now = now
            timer.lap("heap")
            while self.events and self.events.next_time == now:
                _, kind, payload = self.events.pop()
                profile.n_events += 1
                timer.lap("heap")
                if kind == COMPLETION:
                    state, gen = payload
                    if gen != state.dispatch_gen or state.running is None:
                        continue  # stale; charged to the next heap lap
                    if state.running[2] >= state.inst.peak_memory_mb:
                        self._finish(state, now)
                        timer.lap("success")
                    else:
                        self._kill(state, now)
                        timer.lap("kill")
                elif kind == ARRIVAL:
                    for state in self.driver.on_arrival(payload, now):
                        state.queued_at = now
                        for collector in self._ready_collectors:
                            collector.on_ready(state, now)
                    timer.lap("arrival")
                elif kind == OUTAGE_END:
                    self._end_outage(payload, now)
                    timer.lap("outage")
                    continue
                else:  # OUTAGE_START
                    self._start_outage(payload, now)
                    timer.lap("outage")
                    continue
                for collector in self._event_collectors:
                    collector.on_event(now)
                timer.lap("collect")
            self._schedule_profiled(now, timer)
        return True

    def _finalize(self) -> SimulationResult:
        self.driver.finish(self)
        self.predictor.end_trace()
        result = SimulationResult(
            workflow=self.source.workflow,
            method=self.predictor.name,
            time_to_failure=self.time_to_failure,
            ledger=self.wastage.ledger,
        )
        result.summary = RunSummary(
            workflow=self.source.workflow,
            method=self.predictor.name,
            time_to_failure=self.time_to_failure,
        )
        for collector in self.collectors:
            collector.contribute(result)
        return result

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> None:
        """Serialize the paused kernel (clock, heap, drivers, collectors,
        RNG states) to ``path``; see :mod:`repro.sim.kernel.checkpoint`.
        """
        from repro.sim.kernel.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @classmethod
    def resume(cls, path: str) -> "SimulationKernel":
        """Load a checkpointed kernel; ``run()`` continues bit-for-bit."""
        from repro.sim.kernel.checkpoint import load_checkpoint

        return load_checkpoint(path)

    # ------------------------------------------------------------------
    # dispatch / placement pass
    # ------------------------------------------------------------------
    def _schedule(self, now: float) -> None:
        queue = self.driver.queue
        while queue:
            head = queue.head()
            if head.allocation is None:
                self._size_wave()
            node = self._try_place(head.allocation)
            if node is None:
                # Strict FCFS: the head blocks until memory frees up.
                break
            queue.pop()
            if head.attempt + 1 > MAX_ATTEMPTS:
                raise RuntimeError(
                    f"task {head.inst.instance_id} "
                    f"({head.inst.task_type.key}) did not finish within "
                    f"{MAX_ATTEMPTS} attempts; last allocation "
                    f"{head.allocation:.0f} MB, "
                    f"peak {head.inst.peak_memory_mb:.0f} MB"
                )
            task_id = self.manager.next_task_id()
            node.allocate(task_id, head.allocation)
            head.attempt += 1
            head.dispatch_gen += 1
            head.running = (node, task_id, head.allocation, now)
            self._running[task_id] = head
            wait = now - head.queued_at
            for collector in self.collectors:
                collector.on_dispatch(head, now, node, wait)
            success = head.allocation >= head.inst.peak_memory_mb
            duration = (
                head.inst.runtime_hours
                if success
                else head.inst.runtime_hours * self.time_to_failure
            )
            self.events.push(
                now + duration, COMPLETION, (head, head.dispatch_gen)
            )

    def _schedule_profiled(self, now: float, timer: PhaseTimer) -> None:
        """Mirror of :meth:`_schedule` with phase laps (see
        :meth:`_loop_profiled` for the phase catalogue)."""
        queue = self.driver.queue
        while queue:
            head = queue.head()
            if head.allocation is None:
                self._size_wave()
                timer.lap("size")
            node = self._try_place(head.allocation)
            timer.lap("place")
            if node is None:
                break
            queue.pop()
            if head.attempt + 1 > MAX_ATTEMPTS:
                raise RuntimeError(
                    f"task {head.inst.instance_id} "
                    f"({head.inst.task_type.key}) did not finish within "
                    f"{MAX_ATTEMPTS} attempts; last allocation "
                    f"{head.allocation:.0f} MB, "
                    f"peak {head.inst.peak_memory_mb:.0f} MB"
                )
            task_id = self.manager.next_task_id()
            node.allocate(task_id, head.allocation)
            head.attempt += 1
            head.dispatch_gen += 1
            head.running = (node, task_id, head.allocation, now)
            self._running[task_id] = head
            wait = now - head.queued_at
            timer.lap("dispatch")
            for collector in self.collectors:
                collector.on_dispatch(head, now, node, wait)
            timer.lap("collect")
            success = head.allocation >= head.inst.peak_memory_mb
            duration = (
                head.inst.runtime_hours
                if success
                else head.inst.runtime_hours * self.time_to_failure
            )
            self.events.push(
                now + duration, COMPLETION, (head, head.dispatch_gen)
            )
            timer.lap("dispatch")

    def _size_wave(self) -> None:
        """Size the next dispatch wave with one ``predict_batch`` call.

        Both flat and DAG queues surface their unsized states in FCFS
        order, so every mode gets the vectorized one-query-per-model-
        slot path.
        """
        wave = self.driver.queue.unsized(self.prediction_chunk)
        size_first_attempts(self.predictor, self.manager, wave)

    def _try_place(self, memory_mb: float) -> Machine | None:
        if self._drained:
            return self.manager.try_place(
                memory_mb, exclude=self._drained.keys()
            )
        return self.manager.try_place(memory_mb)

    # ------------------------------------------------------------------
    # lifecycle transitions
    # ------------------------------------------------------------------
    def _release(self, state: TaskState, now: float) -> tuple[float, float]:
        """Free the task's node slice; returns (allocated mb, occupied h)."""
        assert state.running is not None
        node, task_id, allocated, start = state.running
        state.running = None
        node.release(task_id)
        del self._running[task_id]
        occupied = now - start
        for collector in self.collectors:
            collector.on_release(state, now, node, allocated, occupied)
        return allocated, occupied

    def _complete(self, state: TaskState, now: float) -> None:
        assert state.running is not None
        if state.running[2] >= state.inst.peak_memory_mb:
            self._finish(state, now)
        else:
            self._kill(state, now)

    def _finish(self, state: TaskState, now: float) -> None:
        inst = state.inst
        allocated, _ = self._release(state, now)
        for collector in self.collectors:
            collector.on_task_success(state, now, allocated)
        self.predictor.observe(
            TaskRecord(
                task_type=inst.task_type.name,
                workflow=inst.task_type.workflow,
                machine=inst.machine,
                timestamp=state.index,
                input_size_mb=inst.input_size_mb,
                peak_memory_mb=inst.peak_memory_mb,
                runtime_hours=inst.runtime_hours,
                success=True,
                attempt=state.attempt,
                allocated_mb=allocated,
                instance_id=inst.instance_id,
            )
        )
        for released in self.driver.on_success(state, now):
            released.queued_at = now
            for collector in self._ready_collectors:
                collector.on_ready(released, now)

    def _kill(self, state: TaskState, now: float) -> None:
        inst = state.inst
        allocated, occupied = self._release(state, now)
        for collector in self.collectors:
            collector.on_task_failure(state, now, allocated, occupied)
        # The failure record's "peak" is the exceeded limit — a lower
        # bound, flagged via ``success=False``.
        self.predictor.observe(
            TaskRecord(
                task_type=inst.task_type.name,
                workflow=inst.task_type.workflow,
                machine=inst.machine,
                timestamp=state.index,
                input_size_mb=inst.input_size_mb,
                peak_memory_mb=allocated,
                runtime_hours=occupied,
                success=False,
                attempt=state.attempt,
                allocated_mb=allocated,
                instance_id=inst.instance_id,
            )
        )
        # Retries must strictly grow or the task can never finish; the
        # escalation floor is the configured doubling factor.
        next_allocation = float(
            self.predictor.on_failure(state.submission, allocated, state.attempt)
        )
        if next_allocation <= allocated:
            next_allocation = allocated * self.doubling_factor
        state.allocation = clamp_allocation_checked(
            self.manager, inst, next_allocation
        )
        state.queued_at = now
        self.driver.queue.requeue(state)
        for collector in self._ready_collectors:
            collector.on_ready(state, now)

    # ------------------------------------------------------------------
    # node drains
    # ------------------------------------------------------------------
    def _start_outage(self, outage: NodeOutage, now: float) -> None:
        opened = outage.node_id not in self._drained
        self._drained[outage.node_id] = self._drained.get(outage.node_id, 0) + 1
        if opened:
            for collector in self._outage_collectors:
                collector.on_outage(outage.node_id, now, True)
        # Preempt in dispatch order (``_running`` is insertion-ordered).
        victims = [
            st
            for st in self._running.values()
            if st.running is not None
            and st.running[0].node_id == outage.node_id
        ]
        for state in victims:
            self._release(state, now)
            # Not the sizing method's fault: the attempt budget and the
            # allocation are untouched, nothing hits the ledger, and the
            # stale completion event is invalidated by the bumped gen.
            state.attempt -= 1
            state.dispatch_gen += 1
            for collector in self.collectors:
                collector.on_preempt(state, now)
            state.queued_at = now
            self.driver.queue.requeue(state)
            for collector in self._ready_collectors:
                collector.on_ready(state, now)

    def _end_outage(self, outage: NodeOutage, now: float) -> None:
        remaining = self._drained.get(outage.node_id, 0) - 1
        if remaining > 0:
            self._drained[outage.node_id] = remaining
        else:
            self._drained.pop(outage.node_id, None)
            for collector in self._outage_collectors:
                collector.on_outage(outage.node_id, now, False)
