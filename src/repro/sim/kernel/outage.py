"""Scheduled node drain/outage windows.

A :class:`NodeOutage` takes one node out of service for a window of
simulated time: placement on the node pauses, and attempts running on it
when the window opens are *preempted* — their memory is freed, their
in-flight completion events are invalidated, and they re-enter the ready
queue at their original priority with their allocation and attempt
budget intact.  Preemption is the cluster's fault, not the sizing
method's, so it charges **nothing** to the wastage ledger and does not
count as a prediction failure; the occupied memory-hours still show up
in the cluster utilization metrics, because the memory really was held.

Because outages are kernel-level events, the scenario works identically
in the flat event backend and the DAG scheduling engine.

Spec strings (CLI ``--node-outage``, repeatable)::

    "0.5:2:3"    node 3 drains at t=0.5 h for 2 h
    "1:0.25:0"   node 0 drains at t=1 h for 15 minutes
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["NodeOutage", "parse_node_outage", "parse_node_outages"]


@dataclass(frozen=True)
class NodeOutage:
    """One drain window: ``node_id`` is gone during ``[start, start+duration)``."""

    start_hours: float
    duration_hours: float
    node_id: int

    def __post_init__(self) -> None:
        if self.start_hours < 0:
            raise ValueError(
                f"outage start must be >= 0 hours, got {self.start_hours}"
            )
        if self.duration_hours <= 0:
            raise ValueError(
                f"outage duration must be positive, got {self.duration_hours}"
            )
        if self.node_id < 0:
            raise ValueError(f"node id must be >= 0, got {self.node_id}")

    @property
    def end_hours(self) -> float:
        return self.start_hours + self.duration_hours

    @property
    def spec(self) -> str:
        return f"{self.start_hours:g}:{self.duration_hours:g}:{self.node_id}"


def parse_node_outage(spec: str | NodeOutage) -> NodeOutage:
    """Parse an outage spec ``"START:DURATION:NODE"`` (hours, hours, id)."""
    if isinstance(spec, NodeOutage):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"node outage must be a spec string or NodeOutage, got {type(spec)!r}"
        )
    parts = spec.strip().split(":")
    if len(parts) != 3:
        raise ValueError(
            f"bad node-outage spec {spec!r}: expected 'START:DURATION:NODE', "
            f"e.g. '0.5:2:3'"
        )
    try:
        start, duration = float(parts[0]), float(parts[1])
        node_id = int(parts[2])
    except ValueError:
        raise ValueError(
            f"bad node-outage spec {spec!r}: START/DURATION are hours, "
            f"NODE is an integer node id"
        ) from None
    try:
        return NodeOutage(start, duration, node_id)
    except ValueError as exc:
        raise ValueError(f"bad node-outage spec {spec!r}: {exc}") from None


def parse_node_outages(
    specs: str | NodeOutage | Iterable[str | NodeOutage] | None,
) -> tuple[NodeOutage, ...]:
    """Normalize an outage option — one spec, a list, or ``None``."""
    if specs is None:
        return ()
    if isinstance(specs, (str, NodeOutage)):
        specs = [specs]
    if not isinstance(specs, Sequence):
        specs = list(specs)
    return tuple(parse_node_outage(s) for s in specs)
