"""The unified discrete-event simulation kernel.

One event loop for every execution mode.  The flat event backend
(:class:`~repro.sim.backends.event.EventDrivenBackend`) and the DAG
scheduling engine (:mod:`repro.sched.engine`) are thin drivers over this
package:

- :mod:`repro.sim.kernel.events` — the typed event heap with
  deterministic three-level tie-breaking (time, kind, push sequence);
- :mod:`repro.sim.kernel.core` — :class:`SimulationKernel` (clock,
  dispatch/placement pass, the size → place → run → kill/re-queue
  lifecycle with batched ``predict_batch`` sizing) plus the
  :class:`KernelDriver` / :class:`ReadyQueue` seams drivers implement;
- :mod:`repro.sim.kernel.collectors` — the pluggable
  :class:`MetricsCollector` protocol and the stock collectors (wastage
  ledger, cluster metrics, per-workflow metrics);
- :mod:`repro.sim.kernel.outage` — scheduled node drain windows, a
  kernel-level scenario available identically in flat and DAG modes.
"""

from repro.sim.kernel.collectors import (
    BaseCollector,
    ClusterMetricsCollector,
    MetricsCollector,
    WastageCollector,
    WorkflowMetricsCollector,
)
from repro.sim.kernel.core import (
    KernelDriver,
    ReadyQueue,
    SimulationKernel,
    TaskState,
)
from repro.sim.kernel.events import (
    ARRIVAL,
    COMPLETION,
    OUTAGE_END,
    OUTAGE_START,
    EventHeap,
)
from repro.sim.kernel.outage import (
    NodeOutage,
    parse_node_outage,
    parse_node_outages,
)

__all__ = [
    "SimulationKernel",
    "TaskState",
    "KernelDriver",
    "ReadyQueue",
    "EventHeap",
    "COMPLETION",
    "OUTAGE_END",
    "ARRIVAL",
    "OUTAGE_START",
    "MetricsCollector",
    "BaseCollector",
    "WastageCollector",
    "ClusterMetricsCollector",
    "WorkflowMetricsCollector",
    "NodeOutage",
    "parse_node_outage",
    "parse_node_outages",
]
