"""Pluggable metrics collectors for the simulation kernel.

The kernel executes the sizing lifecycle; *what gets measured* is the
business of composable :class:`MetricsCollector` objects that observe
the run through narrow callbacks and then attach their findings to the
:class:`~repro.sim.results.SimulationResult`.  The three inline
accumulations of the pre-kernel engines are now ordinary collectors:

- :class:`WastageCollector` — the wastage ledger and per-task prediction
  logs (always installed; it produces the core of the result schema);
- :class:`ClusterMetricsCollector` — queue waits, makespan, per-node
  busy memory and allocation timelines
  (:class:`~repro.sim.results.ClusterMetrics`);
- :class:`WorkflowMetricsCollector` — per-workflow-instance accounting
  for the DAG engine (:class:`~repro.sim.results.WorkflowMetrics`).

Custom collectors subclass :class:`BaseCollector` (all callbacks are
no-ops) and are passed to the kernel via ``collectors=[...]``; each
callback sees the kernel's unified
:class:`~repro.sim.kernel.core.TaskState`.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.cluster.accounting import WastageLedger
from repro.cluster.machine import Machine
from repro.cluster.manager import ResourceManager
from repro.sim.backends.base import build_cluster_metrics
from repro.sim.results import (
    PredictionLog,
    SimulationResult,
    WorkflowInstanceMetrics,
    WorkflowMetrics,
)
from repro.sim.sketches import QuantileSketch, RunningStat

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.instance import WorkflowInstance
    from repro.sim.kernel.core import TaskState

__all__ = [
    "MetricsCollector",
    "BaseCollector",
    "WastageCollector",
    "ClusterMetricsCollector",
    "WorkflowMetricsCollector",
]

_MB_PER_GB = 1024.0


@runtime_checkable
class MetricsCollector(Protocol):
    """Observes one kernel run and contributes metrics to the result.

    Callbacks fire in deterministic simulation order; collectors must
    not mutate task states or cluster state — they measure.
    """

    def on_run_start(self, manager: ResourceManager) -> None:
        """The run is about to start on ``manager``'s (reset) cluster."""
        ...

    def on_event(self, now: float) -> None:
        """An event was just handled at simulation time ``now``."""
        ...

    def on_events(self, now: float, n: int) -> None:
        """``n`` events were handled in one batch at time ``now``.

        The kernel coalesces each same-timestamp event wave into one
        call.  The default implementation replays :meth:`on_event` ``n``
        times, so collectors that only override the per-event callback
        keep their exact semantics; aggregate collectors override this
        to pay once per wave.
        """
        ...

    def on_dispatch(
        self, state: "TaskState", now: float, node: Machine, wait_hours: float
    ) -> None:
        """``state`` was placed on ``node`` after ``wait_hours`` queued."""
        ...

    def on_release(
        self,
        state: "TaskState",
        now: float,
        node: Machine,
        allocated_mb: float,
        occupied_hours: float,
    ) -> None:
        """``state`` freed its node slice (success, kill, or preemption)."""
        ...

    def on_task_success(
        self, state: "TaskState", now: float, allocated_mb: float
    ) -> None:
        """``state``'s attempt completed within its allocation."""
        ...

    def on_task_failure(
        self,
        state: "TaskState",
        now: float,
        allocated_mb: float,
        occupied_hours: float,
    ) -> None:
        """``state``'s attempt was killed for exceeding its allocation."""
        ...

    def on_preempt(self, state: "TaskState", now: float) -> None:
        """``state`` was preempted by a node drain (no sizing fault)."""
        ...

    def on_ready(self, state: "TaskState", now: float) -> None:
        """``state`` entered the ready queue (arrival, requeue, preempt)."""
        ...

    def on_outage(self, node_id: int, now: float, active: bool) -> None:
        """A node's drain window opened (``active``) or fully closed."""
        ...

    def contribute(self, result: SimulationResult) -> None:
        """Attach this collector's metrics to the finished ``result``."""
        ...


class BaseCollector:
    """No-op implementation of every :class:`MetricsCollector` callback."""

    def on_run_start(self, manager: ResourceManager) -> None:
        pass

    def on_event(self, now: float) -> None:
        pass

    def on_events(self, now: float, n: int) -> None:
        # Compatibility default: a collector that only overrides
        # on_event still sees one call per handled event.
        for _ in range(n):
            self.on_event(now)

    def on_dispatch(self, state, now, node, wait_hours) -> None:
        pass

    def on_release(self, state, now, node, allocated_mb, occupied_hours) -> None:
        pass

    def on_task_success(self, state, now, allocated_mb) -> None:
        pass

    def on_task_failure(self, state, now, allocated_mb, occupied_hours) -> None:
        pass

    def on_preempt(self, state, now) -> None:
        pass

    def on_ready(self, state, now) -> None:
        pass

    def on_outage(self, node_id, now, active) -> None:
        pass

    def contribute(self, result: SimulationResult) -> None:
        pass


class WastageCollector(BaseCollector):
    """The paper's core accounting: wastage ledger + prediction logs.

    The kernel installs one unconditionally — the result schema is built
    from its ledger and logs — but it is an ordinary collector: the same
    callbacks, no privileged access to the engine.

    Scale-out modes (PR 7):

    - ``keep_logs=False`` — the per-task :class:`PredictionLog` list and
      the ledger's per-attempt outcome list are dropped; only the
      running aggregates and quantile sketches survive, so memory stays
      O(task types), not O(tasks).
    - ``spill=path`` — every prediction log is appended to a JSONL file
      as it happens (one ``asdict(PredictionLog)`` object per line, in
      completion order), so full logs remain available on disk even
      with ``keep_logs=False``.  On checkpoint the byte offset is
      recorded; resume truncates the file back to it, so an interrupted
      run never leaves duplicate lines.

    The summary aggregates (wastage / turnaround sketches, first-attempt
    over-allocation ratio) are maintained in *every* mode, in the same
    update order, so streaming and exact runs report identical
    summaries.
    """

    def __init__(
        self, keep_logs: bool = True, spill: "str | None" = None
    ) -> None:
        self.keep_logs = keep_logs
        self.ledger = WastageLedger(keep_outcomes=keep_logs)
        self.logs: list[PredictionLog] = []
        self.spill = str(spill) if spill is not None else None
        self._spill_fh = None
        self._spill_offset = 0
        self._n_tasks = 0
        self._first_ratio_sum = 0.0
        self._first_ratio_n = 0
        self._wastage_sketch = QuantileSketch()
        self._turnaround_sketch = QuantileSketch()

    def on_task_success(self, state, now, allocated_mb) -> None:
        inst = state.inst
        task_type = inst.task_type
        peak = inst.peak_memory_mb
        name = task_type.name
        runtime = inst.runtime_hours
        # Inlined :meth:`WastageLedger.record_success` — same
        # validation, same columnar row, same aggregate updates (one
        # call per task success on the kernel hot path).
        if allocated_mb < peak - 1e-9:
            raise ValueError(
                "successful attempt cannot have allocated < peak "
                f"({allocated_mb:.1f} < {peak:.1f} MB)"
            )
        wastage = (allocated_mb - peak) / 1024.0 * runtime  # MB -> GB
        ledger = self.ledger
        if ledger.keep_outcomes:
            ledger._outcomes.append(
                (
                    name,
                    task_type.workflow,
                    inst.instance_id,
                    state.attempt,
                    allocated_mb,
                    peak,
                    runtime,
                    True,
                    wastage,
                )
            )
        ledger._wastage_by_type[name] += wastage
        ledger._total_wastage += wastage
        ledger._runtime_hours += runtime
        ledger._n_attempts += 1
        self._n_tasks += 1
        # Two inlined QuantileSketch.add calls (same update order as
        # the method; one success per task on the kernel hot path).
        sketch = self._wastage_sketch
        stat = sketch.stat
        stat.n += 1
        stat.total += wastage
        if wastage < stat.min:
            stat.min = wastage
        if wastage > stat.max:
            stat.max = wastage
        buffer = sketch._buffer
        buffer.append(wastage)
        if len(buffer) >= sketch._cap:
            sketch._compress()
        turnaround = now - state.arrival
        sketch = self._turnaround_sketch
        stat = sketch.stat
        stat.n += 1
        stat.total += turnaround
        if turnaround < stat.min:
            stat.min = turnaround
        if turnaround > stat.max:
            stat.max = turnaround
        buffer = sketch._buffer
        buffer.append(turnaround)
        if len(buffer) >= sketch._cap:
            sketch._compress()
        first = state.first_allocation
        if first is not None and first >= peak:
            self._first_ratio_sum += first / peak
            self._first_ratio_n += 1
        if self.keep_logs or self.spill is not None:
            # __dict__ construction skips the frozen dataclass's
            # per-field object.__setattr__ — one log per task success.
            log = object.__new__(PredictionLog)
            log.__dict__.update(
                instance_id=inst.instance_id,
                task_type=name,
                workflow=task_type.workflow,
                timestamp=state.index,
                input_size_mb=inst.input_size_mb,
                true_peak_mb=peak,
                true_runtime_hours=runtime,
                first_allocation_mb=state.first_allocation,
                final_allocation_mb=state.allocation,
                n_attempts=state.attempt,
            )
            if self.keep_logs:
                self.logs.append(log)
            if self.spill is not None:
                self._spill_write(log)

    def on_task_failure(self, state, now, allocated_mb, occupied_hours) -> None:
        inst = state.inst
        task_type = inst.task_type
        out = self.ledger.record_failure(
            task_type.name,
            task_type.workflow,
            inst.instance_id,
            state.attempt,
            allocated_mb,
            inst.peak_memory_mb,
            occupied_hours,
        )
        self._wastage_sketch.add(out.wastage_gbh)

    def contribute(self, result: SimulationResult) -> None:
        if self.keep_logs:
            result.predictions = sorted(
                self.logs, key=lambda log: log.timestamp
            )
        if self._spill_fh is not None:
            self._spill_fh.close()
            self._spill_fh = None
        summary = result.summary
        if summary is None:
            return
        summary.n_tasks = self._n_tasks
        summary.n_attempts = self.ledger.num_attempts
        summary.n_failures = self.ledger.num_failures
        summary.total_wastage_gbh = self.ledger.total_wastage_gbh
        summary.total_runtime_hours = self.ledger.total_runtime_hours
        summary.wastage_by_task_type = self.ledger.wastage_by_task_type()
        summary.failures_by_task_type = self.ledger.failures_by_task_type()
        summary.first_ratio_sum = self._first_ratio_sum
        summary.first_ratio_n = self._first_ratio_n
        summary.wastage_sketch = self._wastage_sketch
        summary.turnaround_sketch = self._turnaround_sketch

    # ------------------------------------------------------------------
    # JSONL spill sink
    # ------------------------------------------------------------------
    def _spill_write(self, log: PredictionLog) -> None:
        fh = self._spill_fh
        if fh is None:
            fh = self._spill_open()
        fh.write(
            json.dumps(asdict(log), separators=(",", ":")).encode() + b"\n"
        )

    def _spill_open(self):
        assert self.spill is not None
        if self._spill_offset:
            # Resuming from a checkpoint: drop whatever the interrupted
            # run wrote past the checkpointed offset, then continue.
            fh = open(self.spill, "r+b")
            fh.truncate(self._spill_offset)
            fh.seek(self._spill_offset)
        else:
            fh = open(self.spill, "wb")
        self._spill_fh = fh
        return fh

    def __getstate__(self):
        state = self.__dict__.copy()
        fh = state.pop("_spill_fh")
        state["_spill_fh"] = None
        if fh is not None:
            fh.flush()
            state["_spill_offset"] = fh.tell()
        return state


class ClusterMetricsCollector(BaseCollector):
    """Queue waits, makespan, per-node busy memory and timelines.

    With ``stream=True`` the unbounded per-dispatch wait list and the
    per-node allocation timelines are not kept — queue waits go into a
    quantile sketch plus exact running stats, and only the O(nodes)
    busy-memory integrals survive.  ``result.cluster`` is then left
    ``None`` (there is no exact timeline to report); the cluster section
    of ``result.summary`` carries the scalars instead — with numbers
    identical to an exact run's, since the same online updates feed both
    modes.
    """

    def __init__(self, stream: bool = False) -> None:
        self.stream = stream
        self._manager: ResourceManager | None = None
        self._makespan = 0.0
        self._queue_waits: list[float] = []
        self._busy_mbh: dict[int, float] = {}
        self._timelines: dict[int, list[tuple[float, float]]] = {}
        self._wait_stat = RunningStat()
        self._wait_sketch = QuantileSketch()

    def on_run_start(self, manager: ResourceManager) -> None:
        self._manager = manager
        self._makespan = 0.0
        self._queue_waits = []
        self._busy_mbh = {node.node_id: 0.0 for node in manager.nodes}
        self._timelines = (
            {}
            if self.stream
            else {node.node_id: [(0.0, 0.0)] for node in manager.nodes}
        )
        self._wait_stat = RunningStat()
        self._wait_sketch = QuantileSketch()

    def on_event(self, now: float) -> None:
        self._makespan = max(self._makespan, now)

    def on_events(self, now: float, n: int) -> None:
        # n same-timestamp max() updates collapse to one.
        if now > self._makespan:
            self._makespan = now

    def on_dispatch(self, state, now, node, wait_hours) -> None:
        # Every dispatch pays its wait — including re-queues after a
        # kill, which otherwise vanish from the totals.  The RunningStat
        # update is inlined (one dispatch per attempt, hot path).
        stat = self._wait_stat
        stat.n += 1
        stat.total += wait_hours
        if wait_hours < stat.min:
            stat.min = wait_hours
        if wait_hours > stat.max:
            stat.max = wait_hours
        # Inlined QuantileSketch.add (same update order as the method).
        sketch = self._wait_sketch
        stat = sketch.stat
        stat.n += 1
        stat.total += wait_hours
        if wait_hours < stat.min:
            stat.min = wait_hours
        if wait_hours > stat.max:
            stat.max = wait_hours
        buffer = sketch._buffer
        buffer.append(wait_hours)
        if len(buffer) >= sketch._cap:
            sketch._compress()
        if not self.stream:
            self._timelines[node.node_id].append((now, node.allocated_mb))
            self._queue_waits.append(wait_hours)

    def on_release(self, state, now, node, allocated_mb, occupied_hours) -> None:
        self._busy_mbh[node.node_id] += allocated_mb * occupied_hours
        if not self.stream:
            self._timelines[node.node_id].append((now, node.allocated_mb))

    def contribute(self, result: SimulationResult) -> None:
        assert self._manager is not None, "collector never saw on_run_start"
        if not self.stream:
            result.cluster = build_cluster_metrics(
                self._manager,
                self._makespan,
                self._queue_waits,
                self._busy_mbh,
                self._timelines,
            )
        summary = result.summary
        if summary is None:
            return
        caps = self._manager.node_capacities_mb()
        summary.n_nodes = len(caps)
        summary.makespan_hours = self._makespan
        summary.queue_wait = self._wait_stat
        summary.queue_wait_sketch = self._wait_sketch
        summary.utilization_sum = (
            sum(
                busy / (caps[n] * self._makespan)
                for n, busy in self._busy_mbh.items()
            )
            if self._makespan > 0
            else 0.0
        )


class WorkflowMetricsCollector(BaseCollector):
    """Per-workflow-instance accounting for the DAG scheduling engine.

    Accumulates onto each state's :class:`WorkflowInstance` (queue wait,
    wastage attribution, failure counts, first dispatch) and reports the
    :class:`WorkflowMetrics` at the end.  Dependency state — including
    ``finish_time`` — is owned by the DAG driver; this collector only
    measures.  Preemptions charge nothing: wastage attribution must keep
    summing to the ledger, which a drain does not touch.
    """

    def __init__(self, workflows: "list[WorkflowInstance]") -> None:
        self._workflows = workflows

    def on_dispatch(self, state, now, node, wait_hours) -> None:
        wi = state.wi
        if wi is None:
            return
        wi.queue_wait_hours += wait_hours
        if wi.first_dispatch is None:
            wi.first_dispatch = now

    def on_task_success(self, state, now, allocated_mb) -> None:
        wi = state.wi
        if wi is None:
            return
        inst = state.inst
        wi.wastage_gbh += (
            (allocated_mb - inst.peak_memory_mb)
            / _MB_PER_GB
            * inst.runtime_hours
        )

    def on_task_failure(self, state, now, allocated_mb, occupied_hours) -> None:
        wi = state.wi
        if wi is None:
            return
        wi.wastage_gbh += allocated_mb / _MB_PER_GB * occupied_hours
        wi.n_failures += 1

    def contribute(self, result: SimulationResult) -> None:
        result.workflows = WorkflowMetrics(
            instances=[self._instance_metrics(wi) for wi in self._workflows]
        )
        summary = result.summary
        if summary is None:
            return
        summary.n_workflow_instances = len(result.workflows.instances)
        for w in result.workflows.instances:
            summary.workflow_makespan.add(w.makespan_hours)
            summary.workflow_stretch.add(w.stretch)
            summary.workflow_queue_wait_hours += w.queue_wait_hours

    @staticmethod
    def _instance_metrics(wi: "WorkflowInstance") -> WorkflowInstanceMetrics:
        finish = (
            wi.finish_time if wi.finish_time is not None else wi.submit_time
        )
        first = (
            wi.first_dispatch
            if wi.first_dispatch is not None
            else wi.submit_time
        )
        makespan = finish - wi.submit_time
        critical_path = wi.critical_path_hours()
        return WorkflowInstanceMetrics(
            key=wi.key,
            workflow=wi.workflow,
            tenant=wi.tenant,
            submit_time_hours=wi.submit_time,
            first_dispatch_hours=first,
            finish_time_hours=finish,
            makespan_hours=makespan,
            critical_path_hours=critical_path,
            stretch=(makespan / critical_path if critical_path > 0 else 1.0),
            queue_wait_hours=wi.queue_wait_hours,
            wastage_gbh=wi.wastage_gbh,
            n_tasks=wi.n_tasks,
            n_failures=wi.n_failures,
        )
