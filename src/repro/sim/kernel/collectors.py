"""Pluggable metrics collectors for the simulation kernel.

The kernel executes the sizing lifecycle; *what gets measured* is the
business of composable :class:`MetricsCollector` objects that observe
the run through narrow callbacks and then attach their findings to the
:class:`~repro.sim.results.SimulationResult`.  The three inline
accumulations of the pre-kernel engines are now ordinary collectors:

- :class:`WastageCollector` — the wastage ledger and per-task prediction
  logs (always installed; it produces the core of the result schema);
- :class:`ClusterMetricsCollector` — queue waits, makespan, per-node
  busy memory and allocation timelines
  (:class:`~repro.sim.results.ClusterMetrics`);
- :class:`WorkflowMetricsCollector` — per-workflow-instance accounting
  for the DAG engine (:class:`~repro.sim.results.WorkflowMetrics`).

Custom collectors subclass :class:`BaseCollector` (all callbacks are
no-ops) and are passed to the kernel via ``collectors=[...]``; each
callback sees the kernel's unified
:class:`~repro.sim.kernel.core.TaskState`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.cluster.accounting import WastageLedger
from repro.cluster.machine import Machine
from repro.cluster.manager import ResourceManager
from repro.sim.backends.base import build_cluster_metrics
from repro.sim.results import (
    PredictionLog,
    SimulationResult,
    WorkflowInstanceMetrics,
    WorkflowMetrics,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.instance import WorkflowInstance
    from repro.sim.kernel.core import TaskState

__all__ = [
    "MetricsCollector",
    "BaseCollector",
    "WastageCollector",
    "ClusterMetricsCollector",
    "WorkflowMetricsCollector",
]

_MB_PER_GB = 1024.0


@runtime_checkable
class MetricsCollector(Protocol):
    """Observes one kernel run and contributes metrics to the result.

    Callbacks fire in deterministic simulation order; collectors must
    not mutate task states or cluster state — they measure.
    """

    def on_run_start(self, manager: ResourceManager) -> None:
        """The run is about to start on ``manager``'s (reset) cluster."""
        ...

    def on_event(self, now: float) -> None:
        """An event was just handled at simulation time ``now``."""
        ...

    def on_dispatch(
        self, state: "TaskState", now: float, node: Machine, wait_hours: float
    ) -> None:
        """``state`` was placed on ``node`` after ``wait_hours`` queued."""
        ...

    def on_release(
        self,
        state: "TaskState",
        now: float,
        node: Machine,
        allocated_mb: float,
        occupied_hours: float,
    ) -> None:
        """``state`` freed its node slice (success, kill, or preemption)."""
        ...

    def on_task_success(
        self, state: "TaskState", now: float, allocated_mb: float
    ) -> None:
        """``state``'s attempt completed within its allocation."""
        ...

    def on_task_failure(
        self,
        state: "TaskState",
        now: float,
        allocated_mb: float,
        occupied_hours: float,
    ) -> None:
        """``state``'s attempt was killed for exceeding its allocation."""
        ...

    def on_preempt(self, state: "TaskState", now: float) -> None:
        """``state`` was preempted by a node drain (no sizing fault)."""
        ...

    def contribute(self, result: SimulationResult) -> None:
        """Attach this collector's metrics to the finished ``result``."""
        ...


class BaseCollector:
    """No-op implementation of every :class:`MetricsCollector` callback."""

    def on_run_start(self, manager: ResourceManager) -> None:
        pass

    def on_event(self, now: float) -> None:
        pass

    def on_dispatch(self, state, now, node, wait_hours) -> None:
        pass

    def on_release(self, state, now, node, allocated_mb, occupied_hours) -> None:
        pass

    def on_task_success(self, state, now, allocated_mb) -> None:
        pass

    def on_task_failure(self, state, now, allocated_mb, occupied_hours) -> None:
        pass

    def on_preempt(self, state, now) -> None:
        pass

    def contribute(self, result: SimulationResult) -> None:
        pass


class WastageCollector(BaseCollector):
    """The paper's core accounting: wastage ledger + prediction logs.

    The kernel installs one unconditionally — the result schema is built
    from its ledger and logs — but it is an ordinary collector: the same
    callbacks, no privileged access to the engine.
    """

    def __init__(self) -> None:
        self.ledger = WastageLedger()
        self.logs: list[PredictionLog] = []

    def on_task_success(self, state, now, allocated_mb) -> None:
        inst = state.inst
        self.ledger.record_success(
            task_type=inst.task_type.name,
            workflow=inst.task_type.workflow,
            instance_id=inst.instance_id,
            attempt=state.attempt,
            allocated_mb=allocated_mb,
            peak_memory_mb=inst.peak_memory_mb,
            runtime_hours=inst.runtime_hours,
        )
        self.logs.append(
            PredictionLog(
                instance_id=inst.instance_id,
                task_type=inst.task_type.name,
                workflow=inst.task_type.workflow,
                timestamp=state.index,
                input_size_mb=inst.input_size_mb,
                true_peak_mb=inst.peak_memory_mb,
                true_runtime_hours=inst.runtime_hours,
                first_allocation_mb=state.first_allocation,
                final_allocation_mb=state.allocation,
                n_attempts=state.attempt,
            )
        )

    def on_task_failure(self, state, now, allocated_mb, occupied_hours) -> None:
        inst = state.inst
        self.ledger.record_failure(
            task_type=inst.task_type.name,
            workflow=inst.task_type.workflow,
            instance_id=inst.instance_id,
            attempt=state.attempt,
            allocated_mb=allocated_mb,
            peak_memory_mb=inst.peak_memory_mb,
            time_to_failure_hours=occupied_hours,
        )

    def contribute(self, result: SimulationResult) -> None:
        result.predictions = sorted(self.logs, key=lambda log: log.timestamp)


class ClusterMetricsCollector(BaseCollector):
    """Queue waits, makespan, per-node busy memory and timelines."""

    def __init__(self) -> None:
        self._manager: ResourceManager | None = None
        self._makespan = 0.0
        self._queue_waits: list[float] = []
        self._busy_mbh: dict[int, float] = {}
        self._timelines: dict[int, list[tuple[float, float]]] = {}

    def on_run_start(self, manager: ResourceManager) -> None:
        self._manager = manager
        self._makespan = 0.0
        self._queue_waits = []
        self._busy_mbh = {node.node_id: 0.0 for node in manager.nodes}
        self._timelines = {
            node.node_id: [(0.0, 0.0)] for node in manager.nodes
        }

    def on_event(self, now: float) -> None:
        self._makespan = max(self._makespan, now)

    def on_dispatch(self, state, now, node, wait_hours) -> None:
        self._timelines[node.node_id].append((now, node.allocated_mb))
        # Every dispatch pays its wait — including re-queues after a
        # kill, which otherwise vanish from the totals.
        self._queue_waits.append(wait_hours)

    def on_release(self, state, now, node, allocated_mb, occupied_hours) -> None:
        self._busy_mbh[node.node_id] += allocated_mb * occupied_hours
        self._timelines[node.node_id].append((now, node.allocated_mb))

    def contribute(self, result: SimulationResult) -> None:
        assert self._manager is not None, "collector never saw on_run_start"
        result.cluster = build_cluster_metrics(
            self._manager,
            self._makespan,
            self._queue_waits,
            self._busy_mbh,
            self._timelines,
        )


class WorkflowMetricsCollector(BaseCollector):
    """Per-workflow-instance accounting for the DAG scheduling engine.

    Accumulates onto each state's :class:`WorkflowInstance` (queue wait,
    wastage attribution, failure counts, first dispatch) and reports the
    :class:`WorkflowMetrics` at the end.  Dependency state — including
    ``finish_time`` — is owned by the DAG driver; this collector only
    measures.  Preemptions charge nothing: wastage attribution must keep
    summing to the ledger, which a drain does not touch.
    """

    def __init__(self, workflows: "list[WorkflowInstance]") -> None:
        self._workflows = workflows

    def on_dispatch(self, state, now, node, wait_hours) -> None:
        wi = state.wi
        if wi is None:
            return
        wi.queue_wait_hours += wait_hours
        if wi.first_dispatch is None:
            wi.first_dispatch = now

    def on_task_success(self, state, now, allocated_mb) -> None:
        wi = state.wi
        if wi is None:
            return
        inst = state.inst
        wi.wastage_gbh += (
            (allocated_mb - inst.peak_memory_mb)
            / _MB_PER_GB
            * inst.runtime_hours
        )

    def on_task_failure(self, state, now, allocated_mb, occupied_hours) -> None:
        wi = state.wi
        if wi is None:
            return
        wi.wastage_gbh += allocated_mb / _MB_PER_GB * occupied_hours
        wi.n_failures += 1

    def contribute(self, result: SimulationResult) -> None:
        result.workflows = WorkflowMetrics(
            instances=[self._instance_metrics(wi) for wi in self._workflows]
        )

    @staticmethod
    def _instance_metrics(wi: "WorkflowInstance") -> WorkflowInstanceMetrics:
        finish = (
            wi.finish_time if wi.finish_time is not None else wi.submit_time
        )
        first = (
            wi.first_dispatch
            if wi.first_dispatch is not None
            else wi.submit_time
        )
        makespan = finish - wi.submit_time
        critical_path = wi.critical_path_hours()
        return WorkflowInstanceMetrics(
            key=wi.key,
            workflow=wi.workflow,
            tenant=wi.tenant,
            submit_time_hours=wi.submit_time,
            first_dispatch_hours=first,
            finish_time_hours=finish,
            makespan_hours=makespan,
            critical_path_hours=critical_path,
            stretch=(makespan / critical_path if critical_path > 0 else 1.0),
            queue_wait_hours=wi.queue_wait_hours,
            wastage_gbh=wi.wastage_gbh,
            n_tasks=wi.n_tasks,
            n_failures=wi.n_failures,
        )
