"""Pluggable metrics collectors for the simulation kernel.

The kernel executes the sizing lifecycle; *what gets measured* is the
business of composable :class:`MetricsCollector` objects that observe
the run through narrow callbacks and then attach their findings to the
:class:`~repro.sim.results.SimulationResult`.  The three inline
accumulations of the pre-kernel engines are now ordinary collectors:

- :class:`WastageCollector` — the wastage ledger and per-task prediction
  logs (always installed; it produces the core of the result schema);
- :class:`ClusterMetricsCollector` — queue waits, makespan, per-node
  busy memory and allocation timelines
  (:class:`~repro.sim.results.ClusterMetrics`);
- :class:`WorkflowMetricsCollector` — per-workflow-instance accounting
  for the DAG engine (:class:`~repro.sim.results.WorkflowMetrics`).

Custom collectors subclass :class:`BaseCollector` (all callbacks are
no-ops) and are passed to the kernel via ``collectors=[...]``; each
callback sees the kernel's unified
:class:`~repro.sim.kernel.core.TaskState`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.cluster.accounting import WastageLedger
from repro.cluster.machine import Machine
from repro.cluster.manager import ResourceManager
from repro.sim.backends.base import build_cluster_metrics
from repro.sim.results import (
    LOG_FIELDS,
    SimulationResult,
    WorkflowInstanceMetrics,
    WorkflowMetrics,
)
from repro.sim.sketches import QuantileSketch, RunningStat

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.instance import WorkflowInstance
    from repro.sim.kernel.core import TaskState

__all__ = [
    "MetricsCollector",
    "BaseCollector",
    "WastageCollector",
    "ClusterMetricsCollector",
    "WorkflowMetricsCollector",
]

_MB_PER_GB = 1024.0


@runtime_checkable
class MetricsCollector(Protocol):
    """Observes one kernel run and contributes metrics to the result.

    Callbacks fire in deterministic simulation order; collectors must
    not mutate task states or cluster state — they measure.
    """

    def on_run_start(self, manager: ResourceManager) -> None:
        """The run is about to start on ``manager``'s (reset) cluster."""
        ...

    def on_event(self, now: float) -> None:
        """An event was just handled at simulation time ``now``."""
        ...

    def on_events(self, now: float, n: int) -> None:
        """``n`` events were handled in one batch at time ``now``.

        The kernel coalesces each same-timestamp event wave into one
        call.  The default implementation replays :meth:`on_event` ``n``
        times, so collectors that only override the per-event callback
        keep their exact semantics; aggregate collectors override this
        to pay once per wave.
        """
        ...

    def on_wave(self, now: float, n: int, outcomes: list) -> None:
        """A whole event wave finished at ``now``; consume its outcomes.

        ``outcomes`` holds one ``(state, success, allocated_mb,
        occupied_hours)`` tuple per completion handled in the wave
        (stale completions excluded), in event order.  The kernel only
        builds the list when at least one collector overrides this
        callback, so it costs nothing otherwise.  The per-event
        ``on_task_success``/``on_task_failure`` callbacks still fire and
        remain the compatibility path — a collector should consume
        completions through exactly one of the two seams.
        """
        ...

    def on_dispatch(
        self, state: "TaskState", now: float, node: Machine, wait_hours: float
    ) -> None:
        """``state`` was placed on ``node`` after ``wait_hours`` queued."""
        ...

    def on_release(
        self,
        state: "TaskState",
        now: float,
        node: Machine,
        allocated_mb: float,
        occupied_hours: float,
    ) -> None:
        """``state`` freed its node slice (success, kill, or preemption)."""
        ...

    def on_task_success(
        self, state: "TaskState", now: float, allocated_mb: float
    ) -> None:
        """``state``'s attempt completed within its allocation."""
        ...

    def on_task_failure(
        self,
        state: "TaskState",
        now: float,
        allocated_mb: float,
        occupied_hours: float,
    ) -> None:
        """``state``'s attempt was killed for exceeding its allocation."""
        ...

    def on_preempt(self, state: "TaskState", now: float) -> None:
        """``state`` was preempted by a node drain (no sizing fault)."""
        ...

    def on_ready(self, state: "TaskState", now: float) -> None:
        """``state`` entered the ready queue (arrival, requeue, preempt)."""
        ...

    def on_outage(self, node_id: int, now: float, active: bool) -> None:
        """A node's drain window opened (``active``) or fully closed."""
        ...

    def contribute(self, result: SimulationResult) -> None:
        """Attach this collector's metrics to the finished ``result``."""
        ...


class BaseCollector:
    """No-op implementation of every :class:`MetricsCollector` callback."""

    def on_run_start(self, manager: ResourceManager) -> None:
        pass

    def on_event(self, now: float) -> None:
        pass

    def on_events(self, now: float, n: int) -> None:
        # Compatibility default: a collector that only overrides
        # on_event still sees one call per handled event.
        for _ in range(n):
            self.on_event(now)

    def on_wave(self, now, n, outcomes) -> None:
        pass

    def on_dispatch(self, state, now, node, wait_hours) -> None:
        pass

    def on_release(self, state, now, node, allocated_mb, occupied_hours) -> None:
        pass

    def on_task_success(self, state, now, allocated_mb) -> None:
        pass

    def on_task_failure(self, state, now, allocated_mb, occupied_hours) -> None:
        pass

    def on_preempt(self, state, now) -> None:
        pass

    def on_ready(self, state, now) -> None:
        pass

    def on_outage(self, node_id, now, active) -> None:
        pass

    def contribute(self, result: SimulationResult) -> None:
        pass


class WastageCollector(BaseCollector):
    """The paper's core accounting: wastage ledger + prediction logs.

    The kernel installs one unconditionally — the result schema is built
    from its ledger and logs — but it is an ordinary collector: the same
    callbacks, no privileged access to the engine.

    Scale-out modes (PR 7):

    - ``keep_logs=False`` — the per-task :class:`PredictionLog` list and
      the ledger's per-attempt outcome list are dropped; only the
      running aggregates and quantile sketches survive, so memory stays
      O(task types), not O(tasks).
    - ``spill=path`` — every prediction log is appended to a JSONL file
      as it happens (one JSON object per line, keys in
      :data:`~repro.sim.results.LOG_FIELDS` order — the exact
      ``asdict(PredictionLog)`` shape — in completion order), so full
      logs remain available on disk even
      with ``keep_logs=False``.  On checkpoint the byte offset is
      recorded; resume truncates the file back to it, so an interrupted
      run never leaves duplicate lines.

    The summary aggregates (wastage / turnaround sketches, first-attempt
    over-allocation ratio) are maintained in *every* mode, in the same
    update order, so streaming and exact runs report identical
    summaries.

    In the default exact mode (``keep_logs=True``, no spill) the per-task
    accounting is *deferred* (PR 10): the hot-path callbacks only append
    a compact row to a pending buffer, and :meth:`contribute` replays the
    buffer through the exact statement sequence of the immediate path —
    same float-add order, same sketch compress boundaries, same ledger
    row layout — with every lookup hoisted out of the loop.  Streaming
    (``keep_logs=False``) needs O(1) memory and spill needs
    write-as-it-happens checkpoint offsets, so both keep the immediate
    path.
    """

    def __init__(
        self, keep_logs: bool = True, spill: "str | None" = None
    ) -> None:
        self.keep_logs = keep_logs
        self.ledger = WastageLedger(keep_outcomes=keep_logs)
        # Compact per-task rows in :data:`LOG_FIELDS` order, completion-
        # ordered; the result materializes the sorted
        # :class:`~repro.sim.results.PredictionLog` view lazily.
        self.logs: list[tuple] = []
        self.spill = str(spill) if spill is not None else None
        self._spill_fh = None
        self._spill_offset = 0
        self._n_tasks = 0
        self._first_ratio_sum = 0.0
        self._first_ratio_n = 0
        self._wastage_sketch = QuantileSketch()
        self._turnaround_sketch = QuantileSketch()
        # Deferred rows: (state, now, allocated) for successes,
        # (state, attempt, allocated, occupied) for failures —
        # attempt/allocated are captured at kill time because the state
        # mutates when the task requeues.
        self._deferred = keep_logs and spill is None
        self._pending: list[tuple] = []
        # Failure rows currently in ``_pending`` — when zero the flush
        # takes an all-success loop with the stat fields in locals.
        self._pending_failures = 0

    def on_task_success(self, state, now, allocated_mb) -> None:
        if self._deferred:
            self._pending.append((state, now, allocated_mb))
            return
        inst = state.inst
        task_type = inst.task_type
        peak = inst.peak_memory_mb
        name = task_type.name
        runtime = inst.runtime_hours
        # Inlined :meth:`WastageLedger.record_success` — same
        # validation, same columnar row, same aggregate updates (one
        # call per task success on the kernel hot path).
        if allocated_mb < peak - 1e-9:
            raise ValueError(
                "successful attempt cannot have allocated < peak "
                f"({allocated_mb:.1f} < {peak:.1f} MB)"
            )
        wastage = (allocated_mb - peak) / 1024.0 * runtime  # MB -> GB
        ledger = self.ledger
        if ledger.keep_outcomes:
            ledger._outcomes.append(
                (
                    name,
                    task_type.workflow,
                    inst.instance_id,
                    state.attempt,
                    allocated_mb,
                    peak,
                    runtime,
                    True,
                    wastage,
                )
            )
        ledger._wastage_by_type[name] += wastage
        ledger._total_wastage += wastage
        ledger._runtime_hours += runtime
        ledger._n_attempts += 1
        self._n_tasks += 1
        # Two inlined QuantileSketch.add calls (same update order as
        # the method; one success per task on the kernel hot path).
        sketch = self._wastage_sketch
        stat = sketch.stat
        stat.n += 1
        stat.total += wastage
        if wastage < stat.min:
            stat.min = wastage
        if wastage > stat.max:
            stat.max = wastage
        buffer = sketch._buffer
        buffer.append(wastage)
        if len(buffer) >= sketch._cap:
            sketch._compress()
        turnaround = now - state.arrival
        sketch = self._turnaround_sketch
        stat = sketch.stat
        stat.n += 1
        stat.total += turnaround
        if turnaround < stat.min:
            stat.min = turnaround
        if turnaround > stat.max:
            stat.max = turnaround
        buffer = sketch._buffer
        buffer.append(turnaround)
        if len(buffer) >= sketch._cap:
            sketch._compress()
        first = state.first_allocation
        if first is not None and first >= peak:
            self._first_ratio_sum += first / peak
            self._first_ratio_n += 1
        if self.keep_logs or self.spill is not None:
            row = (
                inst.instance_id,
                name,
                task_type.workflow,
                state.index,
                inst.input_size_mb,
                peak,
                runtime,
                state.first_allocation,
                state.allocation,
                state.attempt,
            )
            if self.keep_logs:
                self.logs.append(row)
            if self.spill is not None:
                self._spill_write(row)

    def on_task_failure(self, state, now, allocated_mb, occupied_hours) -> None:
        if self._deferred:
            self._pending.append(
                (state, state.attempt, allocated_mb, occupied_hours)
            )
            self._pending_failures += 1
            return
        inst = state.inst
        task_type = inst.task_type
        out = self.ledger.record_failure(
            task_type.name,
            task_type.workflow,
            inst.instance_id,
            state.attempt,
            allocated_mb,
            inst.peak_memory_mb,
            occupied_hours,
        )
        self._wastage_sketch.add(out.wastage_gbh)

    def _flush_pending(self) -> None:
        """Replay deferred rows in chronological order, lookups hoisted.

        The statement sequence per row is identical to the immediate
        ``on_task_success``/``on_task_failure`` bodies, so every float
        add, sketch compress boundary, and ledger row lands bit-for-bit
        where the per-event path would have put it.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        has_failures = self._pending_failures > 0
        self._pending_failures = 0
        ledger = self.ledger
        keep_outcomes = ledger.keep_outcomes
        outcomes_append = ledger._outcomes.append
        wastage_by_type = ledger._wastage_by_type
        record_failure = ledger.record_failure
        w_sketch = self._wastage_sketch
        w_stat = w_sketch.stat
        w_buffer = w_sketch._buffer
        w_cap = w_sketch._cap
        t_sketch = self._turnaround_sketch
        t_stat = t_sketch.stat
        t_buffer = t_sketch._buffer
        t_cap = t_sketch._cap
        logs_append = self.logs.append
        n_tasks = 0
        # Ledger scalars accumulate in locals; ``record_failure``
        # mutates the same attributes, so each (rare) failure row
        # writes the locals back first and reloads them after — the
        # float-add sequence is exactly the immediate path's.
        total_wastage = ledger._total_wastage
        runtime_hours = ledger._runtime_hours
        n_attempts = ledger._n_attempts
        first_ratio_sum = self._first_ratio_sum
        first_ratio_n = self._first_ratio_n
        if not has_failures:
            # All-success batch (the overwhelmingly common case): the
            # eight running-stat fields also live in locals for the
            # whole walk and are written back once.  ``_compress``
            # never reads ``.stat``, so the add/min/max sequence is
            # bit-for-bit the per-row path's.
            w_n = w_stat.n
            w_total = w_stat.total
            w_min = w_stat.min
            w_max = w_stat.max
            t_n = t_stat.n
            t_total = t_stat.total
            t_min = t_stat.min
            t_max = t_stat.max
            for row in pending:
                state, now, allocated_mb = row
                inst = state.inst
                task_type = inst.task_type
                peak = inst.peak_memory_mb
                name = task_type.name
                runtime = inst.runtime_hours
                if allocated_mb < peak - 1e-9:
                    raise ValueError(
                        "successful attempt cannot have allocated < peak "
                        f"({allocated_mb:.1f} < {peak:.1f} MB)"
                    )
                wastage = (allocated_mb - peak) / 1024.0 * runtime
                if keep_outcomes:
                    outcomes_append(
                        (
                            name,
                            task_type.workflow,
                            inst.instance_id,
                            state.attempt,
                            allocated_mb,
                            peak,
                            runtime,
                            True,
                            wastage,
                        )
                    )
                wastage_by_type[name] += wastage
                total_wastage += wastage
                runtime_hours += runtime
                n_attempts += 1
                n_tasks += 1
                w_n += 1
                w_total += wastage
                if wastage < w_min:
                    w_min = wastage
                if wastage > w_max:
                    w_max = wastage
                w_buffer.append(wastage)
                if len(w_buffer) >= w_cap:
                    w_sketch._compress()
                    w_buffer = w_sketch._buffer
                turnaround = now - state.arrival
                t_n += 1
                t_total += turnaround
                if turnaround < t_min:
                    t_min = turnaround
                if turnaround > t_max:
                    t_max = turnaround
                t_buffer.append(turnaround)
                if len(t_buffer) >= t_cap:
                    t_sketch._compress()
                    t_buffer = t_sketch._buffer
                first = state.first_allocation
                if first is not None and first >= peak:
                    first_ratio_sum += first / peak
                    first_ratio_n += 1
                logs_append(
                    (
                        inst.instance_id,
                        name,
                        task_type.workflow,
                        state.index,
                        inst.input_size_mb,
                        peak,
                        runtime,
                        first,
                        state.allocation,
                        state.attempt,
                    )
                )
            w_stat.n = w_n
            w_stat.total = w_total
            w_stat.min = w_min
            w_stat.max = w_max
            t_stat.n = t_n
            t_stat.total = t_total
            t_stat.min = t_min
            t_stat.max = t_max
        else:
            for row in pending:
                if len(row) == 3:
                    state, now, allocated_mb = row
                    inst = state.inst
                    task_type = inst.task_type
                    peak = inst.peak_memory_mb
                    name = task_type.name
                    runtime = inst.runtime_hours
                    if allocated_mb < peak - 1e-9:
                        raise ValueError(
                            "successful attempt cannot have allocated < peak "
                            f"({allocated_mb:.1f} < {peak:.1f} MB)"
                        )
                    wastage = (allocated_mb - peak) / 1024.0 * runtime
                    if keep_outcomes:
                        outcomes_append(
                            (
                                name,
                                task_type.workflow,
                                inst.instance_id,
                                state.attempt,
                                allocated_mb,
                                peak,
                                runtime,
                                True,
                                wastage,
                            )
                        )
                    wastage_by_type[name] += wastage
                    total_wastage += wastage
                    runtime_hours += runtime
                    n_attempts += 1
                    n_tasks += 1
                    w_stat.n += 1
                    w_stat.total += wastage
                    if wastage < w_stat.min:
                        w_stat.min = wastage
                    if wastage > w_stat.max:
                        w_stat.max = wastage
                    w_buffer.append(wastage)
                    if len(w_buffer) >= w_cap:
                        w_sketch._compress()
                        w_buffer = w_sketch._buffer
                    turnaround = now - state.arrival
                    t_stat.n += 1
                    t_stat.total += turnaround
                    if turnaround < t_stat.min:
                        t_stat.min = turnaround
                    if turnaround > t_stat.max:
                        t_stat.max = turnaround
                    t_buffer.append(turnaround)
                    if len(t_buffer) >= t_cap:
                        t_sketch._compress()
                        t_buffer = t_sketch._buffer
                    first = state.first_allocation
                    if first is not None and first >= peak:
                        first_ratio_sum += first / peak
                        first_ratio_n += 1
                    logs_append(
                        (
                            inst.instance_id,
                            name,
                            task_type.workflow,
                            state.index,
                            inst.input_size_mb,
                            peak,
                            runtime,
                            first,
                            state.allocation,
                            state.attempt,
                        )
                    )
                else:
                    state, attempt, allocated_mb, occupied_hours = row
                    inst = state.inst
                    task_type = inst.task_type
                    ledger._total_wastage = total_wastage
                    ledger._runtime_hours = runtime_hours
                    ledger._n_attempts = n_attempts
                    out = record_failure(
                        task_type.name,
                        task_type.workflow,
                        inst.instance_id,
                        attempt,
                        allocated_mb,
                        inst.peak_memory_mb,
                        occupied_hours,
                    )
                    total_wastage = ledger._total_wastage
                    runtime_hours = ledger._runtime_hours
                    n_attempts = ledger._n_attempts
                    w_sketch.add(out.wastage_gbh)
                    w_buffer = w_sketch._buffer
        ledger._total_wastage = total_wastage
        ledger._runtime_hours = runtime_hours
        ledger._n_attempts = n_attempts
        self._first_ratio_sum = first_ratio_sum
        self._first_ratio_n = first_ratio_n
        self._n_tasks += n_tasks

    def contribute(self, result: SimulationResult) -> None:
        self._flush_pending()
        if self.keep_logs:
            # Hand over the compact rows; the result sorts and builds
            # the PredictionLog view lazily, off the timed run.
            result._prediction_rows = self.logs
        if self._spill_fh is not None:
            self._spill_fh.close()
            self._spill_fh = None
        summary = result.summary
        if summary is None:
            return
        summary.n_tasks = self._n_tasks
        summary.n_attempts = self.ledger.num_attempts
        summary.n_failures = self.ledger.num_failures
        summary.total_wastage_gbh = self.ledger.total_wastage_gbh
        summary.total_runtime_hours = self.ledger.total_runtime_hours
        summary.wastage_by_task_type = self.ledger.wastage_by_task_type()
        summary.failures_by_task_type = self.ledger.failures_by_task_type()
        summary.first_ratio_sum = self._first_ratio_sum
        summary.first_ratio_n = self._first_ratio_n
        summary.wastage_sketch = self._wastage_sketch
        summary.turnaround_sketch = self._turnaround_sketch

    # ------------------------------------------------------------------
    # JSONL spill sink
    # ------------------------------------------------------------------
    def _spill_write(self, row: tuple) -> None:
        fh = self._spill_fh
        if fh is None:
            fh = self._spill_open()
        fh.write(
            json.dumps(
                dict(zip(LOG_FIELDS, row)), separators=(",", ":")
            ).encode()
            + b"\n"
        )

    def _spill_open(self):
        assert self.spill is not None
        if self._spill_offset:
            # Resuming from a checkpoint: drop whatever the interrupted
            # run wrote past the checkpointed offset, then continue.
            fh = open(self.spill, "r+b")
            fh.truncate(self._spill_offset)
            fh.seek(self._spill_offset)
        else:
            fh = open(self.spill, "wb")
        self._spill_fh = fh
        return fh

    def __getstate__(self):
        state = self.__dict__.copy()
        fh = state.pop("_spill_fh")
        state["_spill_fh"] = None
        if fh is not None:
            fh.flush()
            state["_spill_offset"] = fh.tell()
        return state


class ClusterMetricsCollector(BaseCollector):
    """Queue waits, makespan, per-node busy memory and timelines.

    With ``stream=True`` the unbounded per-dispatch wait list and the
    per-node allocation timelines are not kept — queue waits go into a
    quantile sketch plus exact running stats, and only the O(nodes)
    busy-memory integrals survive.  ``result.cluster`` is then left
    ``None`` (there is no exact timeline to report); the cluster section
    of ``result.summary`` carries the scalars instead — with numbers
    identical to an exact run's, since the same online updates feed both
    modes.

    In exact mode the per-dispatch/per-release accounting is *deferred*
    (PR 10): the hot-path callbacks append one compact row — the node's
    post-event allocation is captured at call time — and
    :meth:`contribute` replays the rows through the exact statement
    sequence of the immediate path.  Streaming mode keeps the immediate
    updates (its point is O(1) memory).

    When this collector is the *only* dispatch/release subscriber the
    kernel loop bypasses the callbacks entirely and appends to
    ``_timelines``/``_queue_waits`` (and accumulates ``_busy_mbh``)
    directly, in event order — the same entries the row replay would
    have produced.  ``_n_stat_waits`` marks how many queue waits have
    already been folded into the running stat and sketch, so
    :meth:`_flush_pending` batches exactly the unseen tail regardless
    of which path appended it.
    """

    def __init__(self, stream: bool = False) -> None:
        self.stream = stream
        self._manager: ResourceManager | None = None
        self._makespan = 0.0
        self._queue_waits: list[float] = []
        self._busy_mbh: dict[int, float] = {}
        self._timelines: dict[int, list[tuple[float, float]]] = {}
        self._wait_stat = RunningStat()
        self._wait_sketch = QuantileSketch()
        # Deferred rows: (node_id, now, alloc_after, wait) for
        # dispatches, (node_id, now, alloc_after, allocated, occupied)
        # for releases.
        self._pending: list[tuple] = []
        # Queue waits already folded into _wait_stat/_wait_sketch.
        self._n_stat_waits = 0

    def on_run_start(self, manager: ResourceManager) -> None:
        self._manager = manager
        self._makespan = 0.0
        self._queue_waits = []
        self._busy_mbh = {node.node_id: 0.0 for node in manager.nodes}
        self._timelines = (
            {}
            if self.stream
            else {node.node_id: [(0.0, 0.0)] for node in manager.nodes}
        )
        self._wait_stat = RunningStat()
        self._wait_sketch = QuantileSketch()
        self._pending = []
        self._n_stat_waits = 0

    def on_event(self, now: float) -> None:
        self._makespan = max(self._makespan, now)

    def on_events(self, now: float, n: int) -> None:
        # n same-timestamp max() updates collapse to one.
        if now > self._makespan:
            self._makespan = now

    def on_dispatch(self, state, now, node, wait_hours) -> None:
        # Every dispatch pays its wait — including re-queues after a
        # kill, which otherwise vanish from the totals.
        if not self.stream:
            self._pending.append(
                (node.node_id, now, node.allocated_mb, wait_hours)
            )
            return
        # Streaming path: immediate updates (the RunningStat update is
        # inlined — one dispatch per attempt, hot path).
        stat = self._wait_stat
        stat.n += 1
        stat.total += wait_hours
        if wait_hours < stat.min:
            stat.min = wait_hours
        if wait_hours > stat.max:
            stat.max = wait_hours
        # Inlined QuantileSketch.add (same update order as the method).
        sketch = self._wait_sketch
        stat = sketch.stat
        stat.n += 1
        stat.total += wait_hours
        if wait_hours < stat.min:
            stat.min = wait_hours
        if wait_hours > stat.max:
            stat.max = wait_hours
        buffer = sketch._buffer
        buffer.append(wait_hours)
        if len(buffer) >= sketch._cap:
            sketch._compress()

    def on_release(self, state, now, node, allocated_mb, occupied_hours) -> None:
        if not self.stream:
            self._pending.append(
                (node.node_id, now, node.allocated_mb, allocated_mb,
                 occupied_hours)
            )
            return
        self._busy_mbh[node.node_id] += allocated_mb * occupied_hours

    def _flush_pending(self) -> None:
        """Replay deferred dispatch/release rows in chronological order.

        Statement-for-statement the immediate path: same RunningStat and
        sketch update order (so compress boundaries match a streaming
        run's bit-for-bit), same timeline append order, same per-node
        busy-memory accumulation order.
        """
        pending = self._pending
        queue_waits = self._queue_waits
        if pending:
            self._pending = []
            timelines = self._timelines
            busy = self._busy_mbh
            waits_append = queue_waits.append
            # Timelines interleave dispatch and release rows per node,
            # so the order-preserving walk stays — per row it is one
            # append (plus the busy-memory integral on releases), and
            # dispatch waits land on ``_queue_waits`` in event order,
            # exactly where the kernel's direct-write fast path puts
            # them.
            for row in pending:
                if len(row) == 4:
                    node_id, now, alloc_after, wait = row
                    waits_append(wait)
                else:
                    node_id, now, alloc_after, allocated_mb, occupied_hours = (
                        row
                    )
                    busy[node_id] += allocated_mb * occupied_hours
                timelines[node_id].append((now, alloc_after))
        # Wait statistics batch over the not-yet-folded tail of the
        # chronological wait list: ``sum(list, start)`` is the same
        # sequential left-fold as per-row ``+=``, min/max are
        # order-free, and the chunk-to-the-boundary buffer fill hits
        # the same compress points as per-value ``add`` (pinned by the
        # sketch extend-equivalence tests).
        start = self._n_stat_waits
        if start == len(queue_waits):
            return
        waits = queue_waits[start:]
        self._n_stat_waits = len(queue_waits)
        stat = self._wait_stat
        sketch = self._wait_sketch
        sstat = sketch.stat
        cap = sketch._cap
        n_waits = len(waits)
        lo = min(waits)
        hi = max(waits)
        stat.n += n_waits
        stat.total = sum(waits, stat.total)
        if lo < stat.min:
            stat.min = lo
        if hi > stat.max:
            stat.max = hi
        sstat.n += n_waits
        sstat.total = sum(waits, sstat.total)
        if lo < sstat.min:
            sstat.min = lo
        if hi > sstat.max:
            sstat.max = hi
        pos = 0
        while pos < n_waits:
            buffer = sketch._buffer
            take = cap - len(buffer)
            buffer.extend(waits[pos : pos + take])
            pos += take
            if len(buffer) >= cap:
                sketch._compress()

    def contribute(self, result: SimulationResult) -> None:
        self._flush_pending()
        assert self._manager is not None, "collector never saw on_run_start"
        if not self.stream:
            result.cluster = build_cluster_metrics(
                self._manager,
                self._makespan,
                self._queue_waits,
                self._busy_mbh,
                self._timelines,
            )
        summary = result.summary
        if summary is None:
            return
        caps = self._manager.node_capacities_mb()
        summary.n_nodes = len(caps)
        summary.makespan_hours = self._makespan
        summary.queue_wait = self._wait_stat
        summary.queue_wait_sketch = self._wait_sketch
        summary.utilization_sum = (
            sum(
                busy / (caps[n] * self._makespan)
                for n, busy in self._busy_mbh.items()
            )
            if self._makespan > 0
            else 0.0
        )


class WorkflowMetricsCollector(BaseCollector):
    """Per-workflow-instance accounting for the DAG scheduling engine.

    Accumulates onto each state's :class:`WorkflowInstance` (queue wait,
    wastage attribution, failure counts, first dispatch) and reports the
    :class:`WorkflowMetrics` at the end.  Dependency state — including
    ``finish_time`` — is owned by the DAG driver; this collector only
    measures.  Preemptions charge nothing: wastage attribution must keep
    summing to the ledger, which a drain does not touch.
    """

    def __init__(self, workflows: "list[WorkflowInstance]") -> None:
        self._workflows = workflows

    def on_dispatch(self, state, now, node, wait_hours) -> None:
        wi = state.wi
        if wi is None:
            return
        wi.queue_wait_hours += wait_hours
        if wi.first_dispatch is None:
            wi.first_dispatch = now

    def on_wave(self, now, n, outcomes) -> None:
        # Whole-wave consumption (PR 10): one call per event wave
        # instead of one ``on_task_success``/``on_task_failure`` call
        # per completion.  The arithmetic is expression-for-expression
        # the old per-event bodies', in the same event order.
        for state, success, allocated_mb, occupied_hours in outcomes:
            wi = state.wi
            if wi is None:
                continue
            if success:
                inst = state.inst
                wi.wastage_gbh += (
                    (allocated_mb - inst.peak_memory_mb)
                    / _MB_PER_GB
                    * inst.runtime_hours
                )
            else:
                wi.wastage_gbh += allocated_mb / _MB_PER_GB * occupied_hours
                wi.n_failures += 1

    def contribute(self, result: SimulationResult) -> None:
        result.workflows = WorkflowMetrics(
            instances=[self._instance_metrics(wi) for wi in self._workflows]
        )
        summary = result.summary
        if summary is None:
            return
        summary.n_workflow_instances = len(result.workflows.instances)
        for w in result.workflows.instances:
            summary.workflow_makespan.add(w.makespan_hours)
            summary.workflow_stretch.add(w.stretch)
            summary.workflow_queue_wait_hours += w.queue_wait_hours

    @staticmethod
    def _instance_metrics(wi: "WorkflowInstance") -> WorkflowInstanceMetrics:
        finish = (
            wi.finish_time if wi.finish_time is not None else wi.submit_time
        )
        first = (
            wi.first_dispatch
            if wi.first_dispatch is not None
            else wi.submit_time
        )
        makespan = finish - wi.submit_time
        critical_path = wi.critical_path_hours()
        return WorkflowInstanceMetrics(
            key=wi.key,
            workflow=wi.workflow,
            tenant=wi.tenant,
            submit_time_hours=wi.submit_time,
            first_dispatch_hours=first,
            finish_time_hours=finish,
            makespan_hours=makespan,
            critical_path_hours=critical_path,
            stretch=(makespan / critical_path if critical_path > 0 else 1.0),
            queue_wait_hours=wi.queue_wait_hours,
            wastage_gbh=wi.wastage_gbh,
            n_tasks=wi.n_tasks,
            n_failures=wi.n_failures,
        )
