"""State-of-the-art baselines the paper compares against (§III-B).

- :class:`WorkflowPresets` -- the developer-provided memory defaults
  (sanity baseline; never fails, wastes the most).
- :class:`TovarPPM` -- Tovar et al. [31]: allocation chosen from the
  historical peak distribution to minimise expected waste; on failure,
  a node's maximum memory is allocated.
- :class:`WittWastage` -- Witt et al. [18]: quantile regression lines
  selected by lowest historical wastage; doubles on failure.
- :class:`WittPercentile` -- Witt et al. [32]: conservative 95th
  percentile of historical peaks.
- :class:`WittLR` -- Witt et al. [32]: linear regression on input size
  plus a residual offset.
- :mod:`repro.baselines.rl` -- the reinforcement-learning sizers of
  Bader et al. [35] (gradient bandit, Q-learning), discussed in the
  paper's related work and included here as extensions.

All baselines implement :class:`repro.sim.interface.MemoryPredictor`, so
the simulator treats them identically to Sizey.
"""

from repro.baselines.presets import WorkflowPresets
from repro.baselines.tovar import TovarPPM
from repro.baselines.witt_lr import WittLR
from repro.baselines.witt_percentile import WittPercentile
from repro.baselines.witt_wastage import WittWastage

__all__ = [
    "WorkflowPresets",
    "TovarPPM",
    "WittWastage",
    "WittPercentile",
    "WittLR",
]
