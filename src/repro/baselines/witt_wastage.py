"""Witt-Wastage: low-wastage quantile-regression allocation.

Re-implementation of Witt et al., "Learning Low-Wastage Memory
Allocations for Scientific Workflows at IceCube" (HPCS 2019), per the
Sizey paper's description (§III-B, §IV): "a low-wastage regression that
optimizes the resource wastage instead of the prediction error", based
on a linear model that "test[s] quantile regression lines and select[s]
the parameters of the one with the least wastage", doubling the
prediction upon task failure.

Per task type the method maintains a set of candidate quantile
regression lines (peak memory ~ input size).  After each refit, every
candidate is scored by the wastage it *would have* produced over the
observed history — over-allocation cost for covered tasks, lost work
plus a doubling retry for under-allocations — and the cheapest line is
used for prediction.  Because over-allocation dominates the objective on
well-behaved tasks, the selection gravitates to low quantiles, which is
exactly why this baseline shows the most failures in the paper's
Fig. 8c while remaining the strongest baseline on total wastage.

The quantile fits solve small LPs; to keep the online loop fast they are
re-run every ``refit_interval`` completions (cheap closed-form methods
between refits keep using the previous lines).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.ml.linear import QuantileRegressor
from repro.provenance.records import TaskRecord
from repro.sim.interface import MemoryPredictor, TaskSubmission, batch_by_group

__all__ = ["WittWastage"]


class WittWastage(MemoryPredictor):
    """Quantile-regression lines selected by least historical wastage."""

    name = "Witt-Wastage"

    def __init__(
        self,
        quantiles: tuple[float, ...] = (0.5, 0.75, 0.9, 0.95, 0.99),
        refit_interval: int = 8,
        min_history: int = 2,
        time_to_failure: float = 1.0,
        max_fit_points: int = 512,
    ) -> None:
        if not quantiles or any(not 0.0 < q < 1.0 for q in quantiles):
            raise ValueError(f"quantiles must lie in (0, 1), got {quantiles}")
        if refit_interval < 1 or min_history < 1:
            raise ValueError("refit_interval and min_history must be >= 1")
        self.quantiles = tuple(sorted(quantiles))
        self.refit_interval = refit_interval
        self.min_history = min_history
        self.time_to_failure = time_to_failure
        self.max_fit_points = max_fit_points
        self._inputs: dict[str, list[float]] = defaultdict(list)
        self._peaks: dict[str, list[float]] = defaultdict(list)
        self._runtimes: dict[str, list[float]] = defaultdict(list)
        self._best_line: dict[str, QuantileRegressor] = {}
        self._since_refit: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def predict(self, task: TaskSubmission) -> float:
        line = self._best_line.get(task.task_type)
        if line is None:
            return task.preset_memory_mb
        return max(float(line.predict(task.features)[0]), 1.0)

    def predict_batch(self, tasks) -> np.ndarray:
        """Batch sizing: one stacked query per task type's selected line."""

        def sizer(task_type, group):
            line = self._best_line.get(task_type)
            if line is None:
                return None
            X = np.array([[t.input_size_mb] for t in group], dtype=np.float64)
            return np.maximum(line.predict(X), 1.0)

        return batch_by_group(tasks, lambda t: t.task_type, sizer)

    def observe(self, record: TaskRecord) -> None:
        if not record.success:
            return
        t = record.task_type
        self._inputs[t].append(record.input_size_mb)
        self._peaks[t].append(record.peak_memory_mb)
        self._runtimes[t].append(record.runtime_hours)
        self._since_refit[t] += 1
        n = len(self._peaks[t])
        if n < self.min_history:
            return
        needs_first_fit = t not in self._best_line
        if needs_first_fit or self._since_refit[t] >= self.refit_interval:
            self._refit(t)
            self._since_refit[t] = 0

    def _refit(self, task_type: str) -> None:
        X = np.asarray(self._inputs[task_type]).reshape(-1, 1)
        y = np.asarray(self._peaks[task_type])
        rt = np.asarray(self._runtimes[task_type])
        if X.shape[0] > self.max_fit_points:
            X = X[-self.max_fit_points :]
            y = y[-self.max_fit_points :]
            rt = rt[-self.max_fit_points :]
        best_line: QuantileRegressor | None = None
        best_waste = np.inf
        for q in self.quantiles:
            line = QuantileRegressor(quantile=q).fit(X, y)
            waste = self._hypothetical_wastage(line.predict(X), y, rt)
            if waste < best_waste:
                best_waste = waste
                best_line = line
        assert best_line is not None
        self._best_line[task_type] = best_line

    def _hypothetical_wastage(
        self, alloc: np.ndarray, y: np.ndarray, rt: np.ndarray
    ) -> float:
        """Wastage this allocation line would have produced historically.

        The method's own objective counts *unused-but-allocated* memory:
        over-allocation for covered tasks, and the over-allocation of the
        doubled retry for under-allocated ones.  Deliberately, the work
        lost in the killed attempt is NOT part of this objective — the
        method "optimizes the resource wastage instead of the prediction
        error" and accepts failures as cheap, which is why it selects
        aggressive low quantile lines and shows the highest task-failure
        counts in the paper's Fig. 8c.
        """
        alloc = np.maximum(alloc, 1.0)
        ok = alloc >= y
        retry = np.maximum(alloc * 2.0, y)  # doubled attempt that succeeds
        waste = np.where(ok, (alloc - y) * rt, (retry - y) * rt)
        return float(waste.sum())

    def on_failure(
        self, task: TaskSubmission, failed_allocation_mb: float, attempt: int
    ) -> float:
        return failed_allocation_mb * 2.0
