"""Tovar-PPM: job sizing from historical peak probabilities.

Re-implementation of Tovar et al., "A Job Sizing Strategy for
High-Throughput Scientific Workflows" (TPDS 2017), as used by the Sizey
paper (§III-B): the first allocation of a task is chosen from the
historical peak distribution so as to minimise the expected cost of
(over-allocation waste + failure retries); "should the initial
allocation underestimate the required resource, resulting in task
failure, Tovar et al. allocate a node's maximum memory."

Candidate allocations are the observed peak values themselves (the
support of the empirical distribution); for each candidate ``a`` the
expected waste is evaluated against the empirical history::

    waste(a) = sum_{y <= a} (a - y) * rt            (over-allocation)
             + sum_{y > a}  a * rt * ttf            (lost work on kill)
             + sum_{y > a}  (M - y) * rt            (retry at node max M)

and the candidate with minimal waste wins.  The evaluation is a
vectorised O(n^2) sweep over at most ``max_candidates`` distinct peaks.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.provenance.records import TaskRecord
from repro.sim.interface import MemoryPredictor, TaskSubmission, batch_by_group

__all__ = ["TovarPPM"]


class TovarPPM(MemoryPredictor):
    """Peak-probability job sizing with node-max failure handling."""

    name = "Tovar-PPM"

    def __init__(
        self,
        node_memory_mb: float = 128.0 * 1024,
        time_to_failure: float = 1.0,
        min_history: int = 2,
        max_candidates: int = 256,
    ) -> None:
        if node_memory_mb <= 0:
            raise ValueError(f"node_memory_mb must be positive, got {node_memory_mb}")
        if min_history < 1:
            raise ValueError(f"min_history must be >= 1, got {min_history}")
        self.node_memory_mb = node_memory_mb
        self.time_to_failure = time_to_failure
        self.min_history = min_history
        self.max_candidates = max_candidates
        self._peaks: dict[str, list[float]] = defaultdict(list)
        self._runtimes: dict[str, list[float]] = defaultdict(list)

    def predict(self, task: TaskSubmission) -> float:
        peaks = self._peaks.get(task.task_type, [])
        if len(peaks) < self.min_history:
            return task.preset_memory_mb
        return self._best_allocation(task.task_type)

    def predict_batch(self, tasks) -> np.ndarray:
        """Batch sizing: the candidate sweep runs once per task type.

        The history is frozen for the duration of a batch, so every
        submission of one task type shares one O(c*n) sweep instead of
        re-running it per task.
        """
        def sizer(task_type, group):
            if len(self._peaks.get(task_type, [])) < self.min_history:
                return None
            return self._best_allocation(task_type)

        return batch_by_group(tasks, lambda t: t.task_type, sizer)

    def _best_allocation(self, task_type: str) -> float:
        """The expected-waste-minimising candidate for one task type."""
        y = np.asarray(self._peaks[task_type])
        rt = np.asarray(self._runtimes[task_type])
        candidates = np.unique(y)
        if candidates.shape[0] > self.max_candidates:
            # Thin to an evenly spaced quantile subset, always keeping the max.
            qs = np.linspace(0.0, 1.0, self.max_candidates)
            candidates = np.unique(np.quantile(y, qs))
        # (c, n) success mask: candidate row covers observation column.
        covered = candidates[:, None] >= y[None, :]
        over = (candidates[:, None] - y[None, :]) * rt[None, :]
        fail = (
            candidates[:, None] * rt[None, :] * self.time_to_failure
            + (self.node_memory_mb - y[None, :]) * rt[None, :]
        )
        waste = np.where(covered, over, fail).sum(axis=1)
        return float(candidates[int(np.argmin(waste))])

    def observe(self, record: TaskRecord) -> None:
        if record.success:
            self._peaks[record.task_type].append(record.peak_memory_mb)
            self._runtimes[record.task_type].append(record.runtime_hours)

    def on_failure(
        self, task: TaskSubmission, failed_allocation_mb: float, attempt: int
    ) -> float:
        # The defining trait of Tovar-PPM's failure handling.
        return self.node_memory_mb
