"""Witt-LR: linear regression on input size with a residual offset.

Re-implementation of the linear-regression predictor from Witt et al.
(HPCS 2019), per the Sizey paper's description: "a linear regression
(LR), using the input size as a feature and adding an offset on the
prediction", where "the predictions of the linear model are then offset
by the expected difference between the actual and the predicted peak
memory usage".

Implementation choices (the original source is unavailable; the Sizey
authors re-implemented from the description as well):

- the offset is the mean absolute residual of the fitted line over the
  task type's history — the "expected difference" between actual and
  predicted values;
- the model refits on every completion (cheap closed-form OLS);
- below ``min_history`` completions the user preset is used;
- on failure the allocation doubles.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.ml.linear import LinearRegression
from repro.provenance.records import TaskRecord
from repro.sim.interface import MemoryPredictor, TaskSubmission, batch_by_group

__all__ = ["WittLR"]


class WittLR(MemoryPredictor):
    """Per-task-type OLS on input size, padded by the mean |residual|."""

    name = "Witt-LR"

    def __init__(self, min_history: int = 2) -> None:
        if min_history < 1:
            raise ValueError(f"min_history must be >= 1, got {min_history}")
        self.min_history = min_history
        self._inputs: dict[str, list[float]] = defaultdict(list)
        self._peaks: dict[str, list[float]] = defaultdict(list)
        self._models: dict[str, LinearRegression] = {}
        self._offsets: dict[str, float] = {}

    def predict(self, task: TaskSubmission) -> float:
        model = self._models.get(task.task_type)
        if model is None:
            return task.preset_memory_mb
        raw = float(model.predict(task.features)[0])
        return max(raw + self._offsets[task.task_type], 1.0)

    def predict_batch(self, tasks) -> np.ndarray:
        """Batch sizing: one stacked OLS query per task type."""

        def sizer(task_type, group):
            model = self._models.get(task_type)
            if model is None:
                return None
            X = np.array([[t.input_size_mb] for t in group], dtype=np.float64)
            return np.maximum(model.predict(X) + self._offsets[task_type], 1.0)

        return batch_by_group(tasks, lambda t: t.task_type, sizer)

    def observe(self, record: TaskRecord) -> None:
        if not record.success:
            return
        t = record.task_type
        self._inputs[t].append(record.input_size_mb)
        self._peaks[t].append(record.peak_memory_mb)
        if len(self._peaks[t]) < self.min_history:
            return
        X = np.asarray(self._inputs[t]).reshape(-1, 1)
        y = np.asarray(self._peaks[t])
        model = LinearRegression().fit(X, y)
        residuals = y - model.predict(X)
        self._models[t] = model
        self._offsets[t] = float(np.mean(np.abs(residuals)))

    def on_failure(
        self, task: TaskSubmission, failed_allocation_mb: float, attempt: int
    ) -> float:
        return failed_allocation_mb * 2.0
