"""Workflow-Presets: the developer-default sanity baseline.

"The default workflow setups provided by the workflow developers ...
serve as a sanity baseline" (§III-B).  Presets are deliberately
conservative estimates "set to prevent task failures", so this baseline
never fails and never learns — it simply allocates the per-task-type
default every time.
"""

from __future__ import annotations

import numpy as np

from repro.provenance.records import TaskRecord
from repro.sim.interface import MemoryPredictor, TaskSubmission

__all__ = ["WorkflowPresets"]


class WorkflowPresets(MemoryPredictor):
    """Allocate the user/developer preset of the task type, always."""

    name = "Workflow-Presets"

    def predict(self, task: TaskSubmission) -> float:
        return task.preset_memory_mb

    def predict_batch(self, tasks) -> np.ndarray:
        return np.array([t.preset_memory_mb for t in tasks], dtype=np.float64)

    def observe(self, record: TaskRecord) -> None:
        # Presets are static by definition; nothing to learn.
        return

    def on_failure(
        self, task: TaskSubmission, failed_allocation_mb: float, attempt: int
    ) -> float:
        # Unreachable with well-formed presets (they exceed every peak);
        # still defined so malformed presets cannot wedge the simulator.
        return failed_allocation_mb * 2.0
