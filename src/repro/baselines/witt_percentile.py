"""Witt-Percentile: conservative percentile predictor.

Re-implementation of the percentile predictor from Witt et al.,
"Feedback-Based Resource Allocation for Batch Scheduling of Scientific
Workflows" (HPCS 2019), following the Sizey paper's description: "The
percentile predictor predicts the percentile peak memory usage of all
historical tasks.  The authors propose a conservative estimate, using
the 95th percentile to avoid task failures."  Doubles on failure.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.provenance.records import TaskRecord
from repro.sim.interface import MemoryPredictor, TaskSubmission, batch_by_group

__all__ = ["WittPercentile"]


class WittPercentile(MemoryPredictor):
    """Per-task-type percentile of historical peaks (default P95)."""

    name = "Witt-Percentile"

    def __init__(self, percentile: float = 95.0, min_history: int = 2) -> None:
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        if min_history < 1:
            raise ValueError(f"min_history must be >= 1, got {min_history}")
        self.percentile = percentile
        self.min_history = min_history
        self._peaks: dict[str, list[float]] = defaultdict(list)

    def predict(self, task: TaskSubmission) -> float:
        peaks = self._peaks.get(task.task_type, [])
        if len(peaks) < self.min_history:
            return task.preset_memory_mb
        return float(np.percentile(np.asarray(peaks), self.percentile))

    def predict_batch(self, tasks) -> np.ndarray:
        """Batch sizing: the percentile is computed once per task type."""

        def sizer(task_type, group):
            peaks = self._peaks.get(task_type, [])
            if len(peaks) < self.min_history:
                return None
            return float(np.percentile(np.asarray(peaks), self.percentile))

        return batch_by_group(tasks, lambda t: t.task_type, sizer)

    def observe(self, record: TaskRecord) -> None:
        if record.success:
            self._peaks[record.task_type].append(record.peak_memory_mb)

    def on_failure(
        self, task: TaskSubmission, failed_allocation_mb: float, attempt: int
    ) -> float:
        return failed_allocation_mb * 2.0
