"""Reinforcement-learning memory sizers (Bader et al. [35], extension).

The Sizey paper discusses two RL methods from its related work —
gradient bandits and Q-learning — whose objective is "the minimization
between allocated and used memory while avoiding task failure", without
any offsetting ("the reward functions implicitly discourage the agents
from underestimating").  They are included here as optional extensions
so the repository can reproduce the related-work comparison the paper
makes qualitatively: RL sizers "do not incorporate the dependency
between task input size and resource usage, leading to higher wastage
for tasks with fluctuating memory usage".

Both agents discretise the allocation space per task type into a fixed
number of arms spanning ``(0, preset]`` — the preset is the only prior
knowledge available before any execution, exactly as for the other
online methods.

Rewards: a successful attempt earns the negative normalised
over-allocation; a failed attempt earns ``failure_penalty``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import check_random_state
from repro.provenance.records import TaskRecord
from repro.sim.interface import MemoryPredictor, TaskSubmission

__all__ = ["GradientBanditSizer", "QLearningSizer"]


@dataclass
class _ArmState:
    """Per-task-type arm grid and learner state."""

    arms_mb: np.ndarray
    values: np.ndarray  # preferences (bandit) or Q-values (Q-learning)
    counts: np.ndarray = field(init=False)
    mean_reward: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        self.counts = np.zeros_like(self.values)


class _RLBase(MemoryPredictor):
    """Shared bookkeeping for both RL sizers."""

    def __init__(
        self,
        n_arms: int = 10,
        failure_penalty: float = -1.0,
        random_state: int = 0,
    ) -> None:
        if n_arms < 2:
            raise ValueError(f"n_arms must be >= 2, got {n_arms}")
        self.n_arms = n_arms
        self.failure_penalty = failure_penalty
        self.rng = check_random_state(random_state)
        self._state: dict[str, _ArmState] = {}
        # instance_id -> (task type, arm index) of the pending attempt.
        self._pending: dict[int, tuple[str, int]] = {}

    def _arms_for(self, task: TaskSubmission) -> _ArmState:
        st = self._state.get(task.task_type)
        if st is None:
            arms = np.linspace(
                task.preset_memory_mb / self.n_arms,
                task.preset_memory_mb,
                self.n_arms,
            )
            st = self._state[task.task_type] = _ArmState(
                arms_mb=arms, values=np.zeros(self.n_arms)
            )
        return st

    def _reward(self, arm_mb: float, record: TaskRecord) -> float:
        if not record.success:
            return self.failure_penalty
        scale = max(arm_mb, record.peak_memory_mb)
        return -(arm_mb - record.peak_memory_mb) / scale

    def _choose(self, st: _ArmState) -> int:
        raise NotImplementedError

    def _learn(self, st: _ArmState, arm: int, reward: float) -> None:
        raise NotImplementedError

    def predict(self, task: TaskSubmission) -> float:
        st = self._arms_for(task)
        arm = self._choose(st)
        self._pending[task.instance_id] = (task.task_type, arm)
        return float(st.arms_mb[arm])

    def observe(self, record: TaskRecord) -> None:
        pending = self._pending.get(record.instance_id)
        if pending is None:
            return
        task_type, arm = pending
        st = self._state[task_type]
        reward = self._reward(float(st.arms_mb[arm]), record)
        self._learn(st, arm, reward)
        if record.success:
            del self._pending[record.instance_id]

    def on_failure(
        self, task: TaskSubmission, failed_allocation_mb: float, attempt: int
    ) -> float:
        # Retry on the arm grid: the smallest arm above the failed value,
        # else double (the grid is exhausted).
        st = self._arms_for(task)
        above = st.arms_mb[st.arms_mb > failed_allocation_mb]
        if above.size:
            arm = int(np.argmax(st.arms_mb == above[0]))
            self._pending[task.instance_id] = (task.task_type, arm)
            return float(above[0])
        return failed_allocation_mb * 2.0


class GradientBanditSizer(_RLBase):
    """Softmax gradient-bandit over discrete allocations per task type."""

    name = "RL-GradientBandit"

    def __init__(
        self,
        n_arms: int = 10,
        learning_rate: float = 0.3,
        failure_penalty: float = -1.0,
        random_state: int = 0,
    ) -> None:
        super().__init__(n_arms, failure_penalty, random_state)
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate

    def _policy(self, st: _ArmState) -> np.ndarray:
        z = st.values - st.values.max()
        p = np.exp(z)
        return p / p.sum()

    def _choose(self, st: _ArmState) -> int:
        return int(self.rng.choice(self.n_arms, p=self._policy(st)))

    def _learn(self, st: _ArmState, arm: int, reward: float) -> None:
        st.n += 1
        st.mean_reward += (reward - st.mean_reward) / st.n
        pi = self._policy(st)
        advantage = reward - st.mean_reward
        one_hot = np.zeros(self.n_arms)
        one_hot[arm] = 1.0
        st.values += self.learning_rate * advantage * (one_hot - pi)
        st.counts[arm] += 1


class QLearningSizer(_RLBase):
    """Stateless epsilon-greedy Q-learning over discrete allocations."""

    name = "RL-QLearning"

    def __init__(
        self,
        n_arms: int = 10,
        learning_rate: float = 0.2,
        epsilon: float = 0.1,
        epsilon_decay: float = 0.999,
        failure_penalty: float = -1.0,
        random_state: int = 0,
    ) -> None:
        super().__init__(n_arms, failure_penalty, random_state)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        self.learning_rate = learning_rate
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self._eps: dict[str, float] = {}

    def _choose(self, st: _ArmState) -> int:
        key = id(st)  # per-state epsilon tracked via the mapping below
        eps = self._eps.setdefault(str(key), self.epsilon)
        self._eps[str(key)] = eps * self.epsilon_decay
        if self.rng.random() < eps:
            return int(self.rng.integers(0, self.n_arms))
        return int(np.argmax(st.values))

    def _learn(self, st: _ArmState, arm: int, reward: float) -> None:
        # Stateless contextual bandit form of Q-learning: no successor
        # state, so the update is Q += lr * (r - Q).
        st.values[arm] += self.learning_rate * (reward - st.values[arm])
        st.counts[arm] += 1
        st.n += 1
