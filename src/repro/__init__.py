"""Sizey reproduction: memory-efficient execution of scientific workflow tasks.

This package reproduces Bader et al., *"Sizey: Memory-Efficient Execution of
Scientific Workflow Tasks"*, IEEE CLUSTER 2024 (arXiv:2407.16353), together
with every substrate the evaluation depends on:

- :mod:`repro.ml` -- a from-scratch NumPy machine-learning library providing
  the four regressor families Sizey uses (linear, k-nearest-neighbours,
  multi-layer perceptron, random forest) plus scalers, metrics, and
  hyper-parameter search.
- :mod:`repro.workflow` -- scientific-workflow task model and a synthetic
  trace generator calibrated to the paper's six nf-core workflows.
- :mod:`repro.provenance` -- the provenance database Sizey queries online.
- :mod:`repro.cluster` -- a simulated cluster resource manager enforcing
  strict memory limits (paper assumption A3) with GBh wastage accounting.
- :mod:`repro.core` -- Sizey itself: RAQ scoring, gating, offsets,
  failure handling, and online learning.
- :mod:`repro.baselines` -- the four state-of-the-art baselines plus the
  Workflow-Presets sanity baseline.
- :mod:`repro.sim` -- the online simulator used by the evaluation, with
  pluggable execution backends behind the ``SimulatorBackend`` seam: the
  paper-faithful serialized ``"replay"`` loop and a concurrent
  discrete-``"event"`` engine that measures queueing wait, makespan, and
  per-node utilization.  Predictors speak the v2 contract: per-task
  ``predict``, vectorized ``predict_batch``, and the
  ``begin_trace``/``end_trace`` lifecycle hooks.
- :mod:`repro.sched` -- DAG-aware workflow scheduling on top of the
  event backend: whole workflow instances (multi-tenant arrivals) whose
  tasks are released only as dependencies succeed, with per-workflow
  makespan / critical-path / stretch metrics
  (``EventDrivenBackend(dag=..., workflow_arrival=...)``).
- :mod:`repro.experiments` -- regenerators for every table and figure.

Quickstart::

    from repro import SizeyPredictor, SizeyConfig
    from repro.workflow.nfcore import build_workflow_trace
    from repro.sim import OnlineSimulator

    trace = build_workflow_trace("rnaseq", seed=7)
    sizey = SizeyPredictor(SizeyConfig(alpha=0.0, gating="interpolation"))
    result = OnlineSimulator(trace).run(sizey)
    print(result.total_wastage_gbh, result.num_failures)

    # Cluster-level view: same trace, concurrent event-driven execution.
    result = OnlineSimulator(trace, backend="event").run(
        SizeyPredictor(SizeyConfig())
    )
    print(result.cluster.makespan_hours, result.cluster.mean_utilization)
"""

__version__ = "1.9.0"

__all__ = ["SizeyPredictor", "SizeyConfig", "__version__"]


def __getattr__(name: str):
    # Lazy re-exports keep `import repro.ml` cheap: the core package pulls
    # in the full prediction stack, which substrate-only users don't need.
    if name == "SizeyPredictor":
        from repro.core.predictor import SizeyPredictor

        return SizeyPredictor
    if name == "SizeyConfig":
        from repro.core.config import SizeyConfig

        return SizeyConfig
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
