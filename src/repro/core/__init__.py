"""Sizey: the paper's contribution.

- :mod:`repro.core.config` -- :class:`SizeyConfig`, all hyper-parameters.
- :mod:`repro.core.scores` -- accuracy score (Eq. 1), efficiency score
  (Eq. 2), and the composite RAQ score (Eq. 3).
- :mod:`repro.core.gating` -- Argmax and softmax Interpolation gating
  (Eq. 4).
- :mod:`repro.core.offsets` -- the four fault-tolerance offset strategies
  and the dynamic least-wastage selection among them (§II-E).
- :mod:`repro.core.models` -- the four model classes (linear, KNN, MLP,
  random forest) wrapped as online-trainable slots with hyper-parameter
  caching.
- :mod:`repro.core.pool` -- the per-(task type, machine) model pool:
  prequential accuracy tracking, full or incremental retraining.
- :mod:`repro.core.failure` -- max-observed-then-double failure handling.
- :mod:`repro.core.predictor` -- :class:`SizeyPredictor`, the public API.
- :mod:`repro.core.adaptive` -- adaptive-alpha extension (the paper's
  future-work idea, evaluated as an ablation).
"""

from repro.core.config import SizeyConfig
from repro.core.predictor import SizeyPredictor

__all__ = ["SizeyConfig", "SizeyPredictor"]
