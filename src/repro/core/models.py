"""The four Sizey model classes wrapped as online-trainable slots.

Each slot owns one model family (paper Fig. 5): linear regression, KNN
regression, MLP regression, random-forest regression.  A slot knows how
to

- **fully retrain** from the complete history, optionally running
  grid-search hyper-parameter optimisation (the cached best parameters
  are reused between HPO rounds, as in the paper's §III-D), and
- **incrementally update** with a lightweight step after one completion:
  exact recursive least squares for the linear model, sample append for
  KNN, warm-started Adam steps on a sliding window for the MLP, and
  periodic window refits for the forest.

Scale handling: the MLP standardises inputs and targets internally
(peak-memory labels span MB to tens of GB); KNN and trees are invariant
to monotone single-feature scaling, and the linear model needs none.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_random_state
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression
from repro.ml.mlp import MLPRegressor
from repro.ml.model_selection import GridSearchCV
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.sgd import RecursiveLeastSquares

__all__ = [
    "ModelSlot",
    "LinearSlot",
    "KNNSlot",
    "MLPSlot",
    "RandomForestSlot",
    "build_slots",
]

#: Model outputs are clamped to this floor before scoring/gating:
#: a non-positive memory estimate is meaningless.
MIN_PREDICTION_MB = 1.0


class ModelSlot:
    """Base class; subclasses implement the train/update/predict trio."""

    class_name: str = "base"

    def __init__(self, mode: str, random_state: int = 0) -> None:
        if mode not in ("full", "incremental"):
            raise ValueError(f"mode must be 'full' or 'incremental', got {mode!r}")
        self.mode = mode
        self.random_state = random_state
        self.fitted = False

    # -- full retraining ------------------------------------------------
    def train_full(self, X: np.ndarray, y: np.ndarray, do_hpo: bool) -> None:
        raise NotImplementedError

    # -- incremental update ---------------------------------------------
    def update_incremental(
        self,
        x_new: np.ndarray,
        y_new: float,
        X_window: np.ndarray,
        y_window: np.ndarray,
        n_seen: int,
    ) -> None:
        raise NotImplementedError

    # -- inference -------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Batch predictions, clamped to the positive floor."""
        raise NotImplementedError

    def predict_one(self, x: np.ndarray) -> float:
        return float(self.predict(x)[0])

    @staticmethod
    def _clamp(pred: np.ndarray) -> np.ndarray:
        return np.maximum(pred, MIN_PREDICTION_MB)


class LinearSlot(ModelSlot):
    """Linear regression: OLS when fully retraining, exact RLS online."""

    class_name = "linear"

    def __init__(self, mode: str, random_state: int = 0) -> None:
        super().__init__(mode, random_state)
        self._model = (
            LinearRegression()
            if mode == "full"
            else RecursiveLeastSquares(ridge=1e-3)
        )

    def train_full(self, X: np.ndarray, y: np.ndarray, do_hpo: bool) -> None:
        self._model = LinearRegression().fit(X, y)
        self.fitted = True

    def update_incremental(self, x_new, y_new, X_window, y_window, n_seen) -> None:
        self._model.partial_fit(x_new, [y_new])
        self.fitted = True

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._clamp(self._model.predict(X))


class KNNSlot(ModelSlot):
    """KNN regression; HPO over k and the weighting scheme."""

    class_name = "knn"

    PARAM_GRID = {"n_neighbors": [1, 3, 5], "weights": ["uniform", "distance"]}

    def __init__(self, mode: str, random_state: int = 0) -> None:
        super().__init__(mode, random_state)
        self._best_params: dict = {"n_neighbors": 3, "weights": "uniform"}
        self._model = KNeighborsRegressor(**self._best_params)

    def train_full(self, X: np.ndarray, y: np.ndarray, do_hpo: bool) -> None:
        if do_hpo and X.shape[0] >= 6:
            search = GridSearchCV(
                KNeighborsRegressor(), self.PARAM_GRID, cv=3
            ).fit(X, y)
            self._best_params = search.best_params_
        self._model = KNeighborsRegressor(**self._best_params).fit(X, y)
        self.fitted = True

    def update_incremental(self, x_new, y_new, X_window, y_window, n_seen) -> None:
        if not self.fitted:
            self._model = KNeighborsRegressor(**self._best_params).fit(
                x_new, [y_new]
            )
        else:
            self._model.partial_fit(x_new, [y_new])
        self.fitted = True

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._clamp(self._model.predict(X))


class MLPSlot(ModelSlot):
    """MLP regression with internal input/target standardisation.

    Full mode refits from scratch (capped at the most recent
    ``max_train_points`` so per-update cost stays bounded on long
    workflows); incremental mode warm-starts Adam on a sliding window —
    the paper's "lightweight — and thus fast — online learning step".
    """

    class_name = "mlp"

    PARAM_GRID = {"hidden_layer_sizes": [(8,), (16,)]}

    def __init__(
        self,
        mode: str,
        random_state: int = 0,
        max_train_points: int = 512,
    ) -> None:
        super().__init__(mode, random_state)
        self.max_train_points = max_train_points
        self._best_params: dict = {"hidden_layer_sizes": (16,)}
        self._model: MLPRegressor | None = None
        # Input/target standardisation state.
        self._x_mean = 0.0
        self._x_std = 1.0
        self._y_mean = 0.0
        self._y_std = 1.0
        # Welford accumulators for incremental mode.
        self._n = 0
        self._x_m2 = 0.0
        self._y_m2 = 0.0

    # -- scaling ----------------------------------------------------------
    def _refresh_scaling_from(self, X: np.ndarray, y: np.ndarray) -> None:
        self._x_mean = float(X.mean())
        self._x_std = float(X.std()) or 1.0
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0

    def _welford_update(self, x: float, y: float) -> None:
        self._n += 1
        for attr_mean, attr_m2, value in (
            ("_x_mean", "_x_m2", x),
            ("_y_mean", "_y_m2", y),
        ):
            mean = getattr(self, attr_mean)
            delta = value - mean
            mean += delta / self._n
            setattr(self, attr_mean, mean)
            setattr(self, attr_m2, getattr(self, attr_m2) + delta * (value - mean))
        if self._n > 1:
            self._x_std = float(np.sqrt(self._x_m2 / self._n)) or 1.0
            self._y_std = float(np.sqrt(self._y_m2 / self._n)) or 1.0

    def _scale_x(self, X: np.ndarray) -> np.ndarray:
        return (X - self._x_mean) / self._x_std

    def _scale_y(self, y: np.ndarray) -> np.ndarray:
        return (y - self._y_mean) / self._y_std

    def _unscale_y(self, y: np.ndarray) -> np.ndarray:
        return y * self._y_std + self._y_mean

    # -- training ----------------------------------------------------------
    def _new_model(self, max_iter: int) -> MLPRegressor:
        return MLPRegressor(
            max_iter=max_iter,
            random_state=self.random_state,
            partial_fit_steps=20,
            **self._best_params,
        )

    def train_full(self, X: np.ndarray, y: np.ndarray, do_hpo: bool) -> None:
        if X.shape[0] > self.max_train_points:
            X = X[-self.max_train_points :]
            y = y[-self.max_train_points :]
        self._refresh_scaling_from(X, y)
        Xs, ys = self._scale_x(X), self._scale_y(y)
        if do_hpo and X.shape[0] >= 8:
            search = GridSearchCV(
                self._new_model(max_iter=40), self.PARAM_GRID, cv=2
            ).fit(Xs, ys)
            self._best_params = search.best_params_
        self._model = self._new_model(max_iter=80).fit(Xs, ys)
        self.fitted = True

    def update_incremental(self, x_new, y_new, X_window, y_window, n_seen) -> None:
        self._welford_update(float(x_new[0, 0]), float(y_new))
        if self._model is None:
            self._model = self._new_model(max_iter=80)
        self._model.partial_fit(
            self._scale_x(X_window), self._scale_y(y_window)
        )
        self.fitted = True

    def predict(self, X: np.ndarray) -> np.ndarray:
        assert self._model is not None, "predict before any training step"
        raw = self._model.predict(self._scale_x(np.asarray(X, dtype=np.float64)))
        return self._clamp(self._unscale_y(raw))


class RandomForestSlot(ModelSlot):
    """Random forest; full refits each update, incremental refits on a cadence."""

    class_name = "random_forest"

    PARAM_GRID = {"max_depth": [None, 8]}

    def __init__(
        self,
        mode: str,
        random_state: int = 0,
        n_estimators: int = 20,
        window: int = 512,
        refit_interval: int = 16,
    ) -> None:
        super().__init__(mode, random_state)
        self.n_estimators = n_estimators
        self.window = window
        self.refit_interval = refit_interval
        self._best_params: dict = {"max_depth": None}
        self._model: RandomForestRegressor | None = None

    def _new_model(self, **overrides) -> RandomForestRegressor:
        params = {**self._best_params, **overrides}
        return RandomForestRegressor(
            n_estimators=self.n_estimators,
            random_state=self.random_state,
            **params,
        )

    def train_full(self, X: np.ndarray, y: np.ndarray, do_hpo: bool) -> None:
        if do_hpo and X.shape[0] >= 8:
            search = GridSearchCV(
                self._new_model(n_jobs=1), self.PARAM_GRID, cv=2
            ).fit(X, y)
            self._best_params = {
                k: v for k, v in search.best_params_.items() if k in self.PARAM_GRID
            }
        self._model = self._new_model().fit(X, y)
        self.fitted = True

    def update_incremental(self, x_new, y_new, X_window, y_window, n_seen) -> None:
        # Refit on the window every `refit_interval` completions; the
        # stale forest answers queries in between (documented deviation:
        # CART forests have no exact online update).
        if self._model is None or n_seen % self.refit_interval == 0:
            n = min(len(y_window), self.window)
            self._model = self._new_model().fit(X_window[-n:], y_window[-n:])
        self.fitted = True

    def predict(self, X: np.ndarray) -> np.ndarray:
        assert self._model is not None, "predict before any training step"
        return self._clamp(self._model.predict(X))


class GradientBoostingSlot(ModelSlot):
    """Gradient-boosted trees: an optional fifth model class.

    Not part of the paper's pool; included because the pool interface is
    explicitly extendable and boosting is the natural next candidate on
    small tabular provenance histories.  Like the forest, it refits on a
    cadence in incremental mode.
    """

    class_name = "gbrt"

    def __init__(
        self,
        mode: str,
        random_state: int = 0,
        n_estimators: int = 60,
        window: int = 512,
        refit_interval: int = 16,
    ) -> None:
        super().__init__(mode, random_state)
        self.n_estimators = n_estimators
        self.window = window
        self.refit_interval = refit_interval
        self._model = None

    def _new_model(self):
        from repro.ml.boosting import GradientBoostingRegressor

        return GradientBoostingRegressor(
            n_estimators=self.n_estimators,
            max_depth=3,
            random_state=self.random_state,
        )

    def train_full(self, X, y, do_hpo) -> None:
        self._model = self._new_model().fit(X, y)
        self.fitted = True

    def update_incremental(self, x_new, y_new, X_window, y_window, n_seen) -> None:
        if self._model is None or n_seen % self.refit_interval == 0:
            n = min(len(y_window), self.window)
            self._model = self._new_model().fit(X_window[-n:], y_window[-n:])
        self.fitted = True

    def predict(self, X):
        assert self._model is not None, "predict before any training step"
        return self._clamp(self._model.predict(X))


_SLOT_CLASSES: dict[str, type[ModelSlot]] = {
    "linear": LinearSlot,
    "knn": KNNSlot,
    "mlp": MLPSlot,
    "random_forest": RandomForestSlot,
    "gbrt": GradientBoostingSlot,
}

#: Registry for user-defined model classes ("easily extendable
#: interface"): register a ModelSlot subclass under a new name and list
#: that name in ``SizeyConfig.model_classes``... see examples/custom_model.py.
CUSTOM_SLOT_REGISTRY: dict[str, type[ModelSlot]] = {}


def register_slot(name: str, cls: type[ModelSlot]) -> None:
    """Register a custom model class for use in Sizey pools."""
    if not issubclass(cls, ModelSlot):
        raise TypeError(f"{cls!r} is not a ModelSlot subclass")
    if name in _SLOT_CLASSES:
        raise ValueError(f"{name!r} is a built-in model class")
    CUSTOM_SLOT_REGISTRY[name] = cls


def build_slots(
    model_classes: tuple[str, ...],
    mode: str,
    random_state: int,
    *,
    mlp_window: int = 64,
    rf_window: int = 512,
    rf_refit_interval: int = 16,
) -> list[ModelSlot]:
    """Instantiate the configured model slots for one pool."""
    rng = check_random_state(random_state)
    slots: list[ModelSlot] = []
    for name in model_classes:
        seed = int(rng.integers(0, 2**31 - 1))
        if name == "mlp":
            slots.append(MLPSlot(mode, seed))
        elif name == "random_forest":
            slots.append(
                RandomForestSlot(
                    mode, seed, window=rf_window, refit_interval=rf_refit_interval
                )
            )
        elif name in _SLOT_CLASSES:
            slots.append(_SLOT_CLASSES[name](mode, seed))
        elif name in CUSTOM_SLOT_REGISTRY:
            slots.append(CUSTOM_SLOT_REGISTRY[name](mode, seed))
        else:
            raise ValueError(f"unknown model class {name!r}")
    return slots
