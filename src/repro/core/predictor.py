"""The Sizey predictor: the paper's Fig. 3 pipeline as a public API.

Per submitted task (Phase 1-2): look up the (task type, machine) model
pool; unknown task types fall back to the user preset.  Otherwise every
model predicts, RAQ scores gate the predictions into one estimate, and
the dynamically selected fault-tolerance offset pads it.  Per completed
task (Phase 3): the provenance record updates the pool (prequential
accuracy + training step) and the offset tracker.

Diagnostics kept for the paper's analysis figures:

- ``selection_counts`` — how often each model class had the top RAQ
  (Fig. 11);
- ``raw_prediction_log`` — (task type, sequence, raw estimate, actual)
  tuples of un-offset predictions (Fig. 12);
- ``training_times_s`` — per-update training durations (Fig. 9).
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from repro.core.config import SizeyConfig
from repro.core.failure import FailureHandler
from repro.core.offsets import OffsetTracker
from repro.core.pool import ModelPool
from repro.provenance.database import ProvenanceDatabase
from repro.provenance.records import TaskRecord
from repro.sim.interface import (
    MemoryPredictor,
    TaskSubmission,
    TraceContext,
    batch_by_group,
)

__all__ = ["SizeyPredictor"]


class SizeyPredictor(MemoryPredictor):
    """Online multi-model memory predictor (the paper's contribution)."""

    name = "Sizey"

    def __init__(self, config: SizeyConfig | None = None) -> None:
        self.config = config if config is not None else SizeyConfig()
        self.db = ProvenanceDatabase()
        self.pools: dict[tuple[str, str], ModelPool] = {}
        self.offsets: dict[tuple[str, str], OffsetTracker] = {}
        self._failure = FailureHandler()
        # instance_id -> (pool key, raw gated estimate) awaiting completion.
        self._pending: dict[int, tuple[tuple[str, str], float]] = {}
        # Diagnostics.
        self.selection_counts: Counter[str] = Counter()
        self.raw_prediction_log: dict[str, list[tuple[int, float, float]]] = (
            defaultdict(list)
        )
        self.training_times_s: list[float] = []
        self.preset_fallbacks = 0
        #: Last TraceContext received via begin_trace (API v2 lifecycle).
        self.trace_context: TraceContext | None = None

    # ------------------------------------------------------------------
    # key handling
    # ------------------------------------------------------------------
    def _key(self, task_type: str, machine: str) -> tuple[str, str]:
        if self.config.granularity == "task":
            return (task_type, "*")
        return (task_type, machine)

    def _new_pool(self) -> ModelPool:
        c = self.config
        return ModelPool(
            c.model_classes,
            training_mode=c.training_mode,
            alpha=c.alpha,
            gating=c.gating,
            beta=c.beta,
            hpo_interval=c.hpo_interval,
            accuracy_mode=c.accuracy_mode,
            accuracy_window=c.accuracy_window,
            mlp_window=c.mlp_window,
            rf_window=c.rf_window,
            rf_refit_interval=c.rf_refit_interval,
            random_state=c.random_state,
        )

    # ------------------------------------------------------------------
    # Phase 2: prediction
    # ------------------------------------------------------------------
    def predict(self, task: TaskSubmission) -> float:
        key = self._key(task.task_type, task.machine)
        pool = self.pools.get(key)
        if pool is None or not pool.is_ready or (
            pool.n_observations < self.config.min_history
        ):
            # Unknown task type: "submitted directly to the resource
            # manager, resorting to the user-provided ... estimate".
            self.preset_fallbacks += 1
            return task.preset_memory_mb

        pp = pool.predict(task.features)
        self.selection_counts[pp.selected_model] += 1
        raw = pp.estimate
        self._pending[task.instance_id] = (key, raw)

        tracker = self.offsets.get(key)
        offset = tracker.current_offset()[0] if tracker is not None else 0.0
        return max(raw + offset, 1.0)

    def predict_batch(self, tasks) -> np.ndarray:
        """Vectorized batch sizing, grouped by (task type, machine) pool.

        Submissions sharing a pool key are stacked into one feature
        matrix and answered by a single :meth:`ModelPool.predict_batch`
        call — one model query per slot instead of one per task.  All
        per-task bookkeeping (selection counts, pending raw estimates,
        preset fallbacks) matches the loop-of-singles semantics exactly.
        """
        def sizer(key, group):
            pool = self.pools.get(key)
            if pool is None or not pool.is_ready or (
                pool.n_observations < self.config.min_history
            ):
                self.preset_fallbacks += len(group)
                return None
            X = np.vstack([task.features for task in group])
            tracker = self.offsets.get(key)
            offset = tracker.current_offset()[0] if tracker is not None else 0.0
            estimates = np.empty(len(group), dtype=np.float64)
            for j, (task, pp) in enumerate(zip(group, pool.predict_batch(X))):
                self.selection_counts[pp.selected_model] += 1
                self._pending[task.instance_id] = (key, pp.estimate)
                estimates[j] = max(pp.estimate + offset, 1.0)
            return estimates

        return batch_by_group(
            tasks, lambda t: self._key(t.task_type, t.machine), sizer
        )

    # ------------------------------------------------------------------
    # API v2 lifecycle
    # ------------------------------------------------------------------
    def begin_trace(self, context: TraceContext | None = None) -> None:
        """Record the trace context; per-trace caches start clean."""
        self.trace_context = context
        self._pending.clear()

    # ------------------------------------------------------------------
    # Phase 3: online learning
    # ------------------------------------------------------------------
    def observe(self, record: TaskRecord) -> None:
        if not record.success:
            # Failed attempts reveal only a lower bound on peak memory;
            # models train on true peaks exclusively (see ProvenanceDatabase).
            self.db.insert(record)
            return

        key = self._key(record.task_type, record.machine)
        pending = self._pending.pop(record.instance_id, None)
        if pending is not None:
            pkey, raw = pending
            tracker = self.offsets.get(pkey)
            if tracker is None:
                tracker = self.offsets[pkey] = OffsetTracker(
                    self.config.offset_strategy,
                    self.config.time_to_failure,
                    window=self.config.offset_window,
                )
            tracker.record(raw, record.peak_memory_mb, record.runtime_hours)
            self.raw_prediction_log[record.task_type].append(
                (record.timestamp, raw, record.peak_memory_mb)
            )

        self.db.insert(record)
        pool = self.pools.get(key)
        if pool is None:
            pool = self.pools[key] = self._new_pool()
        seconds = pool.update(record.features, record.peak_memory_mb)
        self.training_times_s.append(seconds)

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def on_failure(
        self, task: TaskSubmission, failed_allocation_mb: float, attempt: int
    ) -> float:
        return self._failure.next_allocation(
            failed_allocation_mb,
            attempt,
            self.db.max_observed_peak(task.task_type),
            task.preset_memory_mb,
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def model_selection_shares(self) -> dict[str, float]:
        """Fraction of predictions per selected model class (Fig. 11)."""
        total = sum(self.selection_counts.values())
        if total == 0:
            return {}
        return {
            name: count / total for name, count in self.selection_counts.items()
        }

    def median_training_time_ms(self) -> float:
        """Median per-update training time in milliseconds (Fig. 9)."""
        if not self.training_times_s:
            return float("nan")
        return float(np.median(self.training_times_s) * 1e3)
