"""Gating: combine per-model predictions into one estimate (paper §II-D).

Two strategies, mirroring a mixture-of-experts gating network:

- **Argmax** — trust the model with the highest RAQ score exclusively.
- **Interpolation** — a softmax consensus over RAQ scores (Eq. 4) with
  sharpness ``beta``; as ``beta -> inf`` it converges to Argmax.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GateDecision", "argmax_gate", "interpolation_gate", "gate"]


@dataclass(frozen=True)
class GateDecision:
    """Result of gating: the estimate, per-model weights, and the winner."""

    estimate: float
    weights: np.ndarray
    selected_index: int


def _validate(predictions: np.ndarray, raq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    preds = np.asarray(predictions, dtype=np.float64)
    scores = np.asarray(raq, dtype=np.float64)
    if preds.ndim != 1 or preds.size == 0:
        raise ValueError("predictions must be a non-empty 1-D array")
    if preds.shape != scores.shape:
        raise ValueError(f"shape mismatch: {preds.shape} vs {scores.shape}")
    return preds, scores


def argmax_gate(predictions: np.ndarray, raq: np.ndarray) -> GateDecision:
    """Weight the highest-RAQ model 1, everything else 0.

    Ties resolve to the lowest index (deterministic).
    """
    preds, scores = _validate(predictions, raq)
    idx = int(np.argmax(scores))
    weights = np.zeros_like(preds)
    weights[idx] = 1.0
    return GateDecision(estimate=float(preds[idx]), weights=weights, selected_index=idx)


def interpolation_gate(
    predictions: np.ndarray, raq: np.ndarray, beta: float
) -> GateDecision:
    """Eq. 4: softmax weights ``w_i = exp(beta RAQ_i) / sum_j exp(beta RAQ_j)``.

    ``selected_index`` reports the argmax-RAQ model — the model class
    "selected" for diagnostics like Fig. 11 — even though all models
    contribute to the estimate.
    """
    if beta < 1.0:
        raise ValueError(f"beta must be >= 1, got {beta}")
    preds, scores = _validate(predictions, raq)
    z = beta * scores
    z -= z.max()  # stabilise exp
    w = np.exp(z)
    w /= w.sum()
    return GateDecision(
        estimate=float(w @ preds),
        weights=w,
        selected_index=int(np.argmax(scores)),
    )


def gate(
    predictions: np.ndarray, raq: np.ndarray, strategy: str, beta: float = 10.0
) -> GateDecision:
    """Dispatch on the configured gating strategy."""
    if strategy == "argmax":
        return argmax_gate(predictions, raq)
    if strategy == "interpolation":
        return interpolation_gate(predictions, raq, beta)
    raise ValueError(f"unknown gating strategy {strategy!r}")
