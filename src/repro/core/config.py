"""Sizey configuration.

Defaults follow the paper's experimental setup (§III-A): all four model
classes, ``alpha = 0.0``, the Interpolation gating strategy, the dynamic
offset strategy, and per-(task type, machine) model granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SizeyConfig"]

_GATINGS = ("interpolation", "argmax")
_OFFSETS = ("dynamic", "std", "std_under", "median", "median_under", "none")
_MODES = ("full", "incremental")
_GRANULARITIES = ("task_machine", "task")
_ACCURACY_MODES = ("prequential", "retrospective")
_MODEL_CLASSES = ("linear", "knn", "mlp", "random_forest")


@dataclass
class SizeyConfig:
    """All Sizey hyper-parameters.

    Attributes
    ----------
    alpha:
        RAQ mixing weight (Eq. 3): 0 favours accurate models, 1 punishes
        outlying large estimates.  Paper experiments use 0.0.
    gating:
        ``"interpolation"`` (softmax consensus, Eq. 4 — the paper's main
        setting) or ``"argmax"`` (winner takes all).
    beta:
        Softmax sharpness for the interpolation strategy, ``beta >= 1``.
    offset_strategy:
        One of the four offset statistics, ``"dynamic"`` (online
        least-wastage selection among them, the paper's setting), or
        ``"none"`` (raw predictions — used for Fig. 12).
    offset_window:
        Sliding-window length for the offset statistics, so early-phase
        transients do not inflate offsets for the whole workflow.
    accuracy_window:
        Number of recent prequential terms the accuracy score (Eq. 1)
        averages over (``None`` = full history).  A finite window lets
        late-blooming models overtake early winners in the gating.
    training_mode:
        ``"full"`` retrains every model from scratch after each task
        completion (with periodic hyper-parameter optimisation);
        ``"incremental"`` performs lightweight update steps and caches
        the best hyper-parameters (§III-D).
    hpo_interval:
        Full mode: run grid-search HPO every N-th update (the first fit
        always optimises); between HPO rounds the cached best parameters
        are reused.
    min_history:
        Minimum completed executions of a (task type, machine) pair
        before models are trusted; below this the user preset is used.
    granularity:
        ``"task_machine"`` (paper's choice, Fig. 4 green box) trains one
        pool per (task type, machine) pair; ``"task"`` pools all machines
        together (ablation).
    model_classes:
        Which of the four model families to include.
    time_to_failure:
        Assumed failure point used when the dynamic offset selection
        replays hypothetical wastage.
    mlp_window / rf_window:
        Incremental mode: sliding-window sizes for the MLP partial fits
        and the periodic random-forest refits.
    rf_refit_interval:
        Incremental mode: refit the forest every N-th update.
    random_state:
        Seed for all stochastic model components.
    """

    alpha: float = 0.0
    gating: str = "interpolation"
    beta: float = 25.0
    offset_strategy: str = "dynamic"
    offset_window: int = 128
    accuracy_window: int | None = 50
    training_mode: str = "full"
    hpo_interval: int = 25
    min_history: int = 1
    granularity: str = "task_machine"
    model_classes: tuple[str, ...] = _MODEL_CLASSES
    accuracy_mode: str = "prequential"
    time_to_failure: float = 1.0
    mlp_window: int = 64
    rf_window: int = 512
    rf_refit_interval: int = 16
    random_state: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.gating not in _GATINGS:
            raise ValueError(f"gating must be one of {_GATINGS}, got {self.gating!r}")
        if self.beta < 1.0:
            raise ValueError(f"beta must be >= 1 (paper: beta in [1, inf)), got {self.beta}")
        if self.offset_strategy not in _OFFSETS:
            raise ValueError(
                f"offset_strategy must be one of {_OFFSETS}, got {self.offset_strategy!r}"
            )
        if self.training_mode not in _MODES:
            raise ValueError(
                f"training_mode must be one of {_MODES}, got {self.training_mode!r}"
            )
        if self.hpo_interval < 1:
            raise ValueError(f"hpo_interval must be >= 1, got {self.hpo_interval}")
        if self.min_history < 1:
            raise ValueError(f"min_history must be >= 1, got {self.min_history}")
        if self.granularity not in _GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {_GRANULARITIES}, got {self.granularity!r}"
            )
        if self.accuracy_mode not in _ACCURACY_MODES:
            raise ValueError(
                f"accuracy_mode must be one of {_ACCURACY_MODES}, "
                f"got {self.accuracy_mode!r}"
            )
        # Model-class names are validated at pool-build time so that
        # custom classes registered via repro.core.models.register_slot
        # remain usable.
        if not self.model_classes:
            raise ValueError("at least one model class is required")
        if not 0.0 < self.time_to_failure <= 1.0:
            raise ValueError(
                f"time_to_failure must be in (0, 1], got {self.time_to_failure}"
            )
        if self.mlp_window < 1 or self.rf_window < 1 or self.rf_refit_interval < 1:
            raise ValueError("window/interval parameters must be >= 1")
        if self.offset_window < 1:
            raise ValueError(f"offset_window must be >= 1, got {self.offset_window}")
        if self.accuracy_window is not None and self.accuracy_window < 1:
            raise ValueError(
                f"accuracy_window must be >= 1 or None, got {self.accuracy_window}"
            )
