"""Failure handling (paper §II-E).

"If a task instance still fails due to underprediction, the maximum
amount of task memory ever observed is allocated.  For each subsequent
attempt to size a previously failed task instance, the given resource
estimate is continuously doubled until the machine resources are
exhausted."

The machine-capacity cap itself is enforced by the resource manager; the
handler guarantees strict growth so the retry loop terminates.
"""

from __future__ import annotations

__all__ = ["FailureHandler"]


class FailureHandler:
    """Stateless retry-allocation policy."""

    def __init__(self, doubling_factor: float = 2.0) -> None:
        if doubling_factor <= 1.0:
            raise ValueError(
                f"doubling_factor must exceed 1, got {doubling_factor}"
            )
        self.doubling_factor = doubling_factor

    def next_allocation(
        self,
        failed_allocation_mb: float,
        attempt: int,
        max_observed_mb: float | None,
        preset_mb: float,
    ) -> float:
        """Allocation for the attempt after ``attempt`` failed.

        First failure: jump to the maximum peak ever observed for the
        task type (falling back to the user preset when no history
        exists).  If that is not above the failed allocation — the failed
        attempt already exceeded historical peaks — escalate by doubling
        immediately.  Later failures: keep doubling.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if failed_allocation_mb <= 0:
            raise ValueError(
                f"failed_allocation_mb must be positive, got {failed_allocation_mb}"
            )
        doubled = failed_allocation_mb * self.doubling_factor
        if attempt == 1:
            candidate = max_observed_mb if max_observed_mb else preset_mb
            if candidate > failed_allocation_mb:
                return candidate
        return doubled
