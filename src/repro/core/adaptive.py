"""Adaptive alpha: the paper's future-work extension (§III-E).

The alpha analysis (Fig. 10) shows no single value wins everywhere:
"Switching between alpha parameters adaptively during workflow
execution, as we do with the models, could address this problem and is
an idea for future work."  This module implements that idea.

Per (task type, machine) pool, a small set of candidate alphas is
tracked.  Every prediction gates the model outputs once per candidate;
when the task completes, each candidate's *hypothetical* estimate is
scored with the same wastage model the offset selection uses (over-
allocation for covered tasks, lost work + max-observed retry for
misses).  The candidate with the least accumulated hypothetical wastage
is used for the real prediction — a bandit-with-full-feedback, since
every arm's outcome is observable from the same completion record.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.config import SizeyConfig
from repro.core.gating import gate
from repro.core.predictor import SizeyPredictor
from repro.core.scores import raq_scores
from repro.sim.interface import TaskSubmission

__all__ = ["AdaptiveAlphaSizey", "DEFAULT_ALPHA_CANDIDATES"]

DEFAULT_ALPHA_CANDIDATES = (0.0, 0.25, 0.5, 0.75, 1.0)


class AdaptiveAlphaSizey(SizeyPredictor):
    """Sizey with per-task-type online alpha selection."""

    name = "Sizey-AdaptiveAlpha"

    def __init__(
        self,
        config: SizeyConfig | None = None,
        alpha_candidates: tuple[float, ...] = DEFAULT_ALPHA_CANDIDATES,
    ) -> None:
        if config is None:
            config = SizeyConfig(training_mode="incremental")
        super().__init__(config)
        if not alpha_candidates or any(not 0.0 <= a <= 1.0 for a in alpha_candidates):
            raise ValueError(
                f"alpha candidates must lie in [0, 1], got {alpha_candidates}"
            )
        self.alpha_candidates = tuple(alpha_candidates)
        # Accumulated hypothetical wastage (MBh) per pool per candidate.
        self._alpha_waste: dict[tuple[str, str], np.ndarray] = {}
        # instance_id -> per-candidate raw estimates awaiting completion.
        self._pending_candidates: dict[int, tuple[tuple[str, str], np.ndarray]] = {}
        self.alpha_choices: dict[str, list[float]] = defaultdict(list)

    def current_alpha(self, key: tuple[str, str]) -> float:
        """The currently preferred alpha for a pool (least waste so far)."""
        waste = self._alpha_waste.get(key)
        if waste is None:
            return self.alpha_candidates[0]
        return self.alpha_candidates[int(np.argmin(waste))]

    def predict(self, task: TaskSubmission) -> float:
        key = self._key(task.task_type, task.machine)
        pool = self.pools.get(key)
        if pool is None or not pool.is_ready or (
            pool.n_observations < self.config.min_history
        ):
            self.preset_fallbacks += 1
            return task.preset_memory_mb

        pp = pool.predict(task.features)
        self.selection_counts[pp.selected_model] += 1

        # Gate once per candidate alpha from the same model outputs.
        estimates = np.empty(len(self.alpha_candidates))
        for i, a in enumerate(self.alpha_candidates):
            raq = raq_scores(pp.accuracy, pp.efficiency, a)
            estimates[i] = gate(
                pp.predictions, raq, self.config.gating, self.config.beta
            ).estimate
        self._pending_candidates[task.instance_id] = (key, estimates)

        alpha = self.current_alpha(key)
        self.alpha_choices[task.task_type].append(alpha)
        chosen = float(estimates[self.alpha_candidates.index(alpha)])
        self._pending[task.instance_id] = (key, chosen)

        tracker = self.offsets.get(key)
        offset = tracker.current_offset()[0] if tracker is not None else 0.0
        return max(chosen + offset, 1.0)

    def observe(self, record) -> None:
        if record.success:
            pending = self._pending_candidates.pop(record.instance_id, None)
            if pending is not None:
                key, estimates = pending
                waste = self._alpha_waste.setdefault(
                    key, np.zeros(len(self.alpha_candidates))
                )
                y = record.peak_memory_mb
                rt = record.runtime_hours
                max_peak = self.db.max_observed_peak(record.task_type) or y
                covered = estimates >= y
                waste += np.where(
                    covered,
                    (estimates - y) * rt,
                    estimates * rt * self.config.time_to_failure
                    + max(max_peak - y, 0.0) * rt,
                )
        super().observe(record)
