"""The per-(task type, machine) model pool.

One pool per task-machine configuration (the paper's finest granularity,
Fig. 4): it owns the four model slots, their prequential accuracy
scores, and the pool-local training history.  ``update`` is Phase 3 of
Fig. 3 (online learning); ``predict`` is Phase 2 steps 2.1-2.2
(individual predictions, RAQ scoring, gating).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.gating import gate
from repro.core.models import ModelSlot, build_slots
from repro.core.scores import (
    RunningAccuracy,
    accuracy_terms,
    efficiency_scores,
    raq_scores,
)

__all__ = ["PoolPrediction", "ModelPool"]


@dataclass(frozen=True)
class PoolPrediction:
    """Full transparency record of one gated pool prediction."""

    model_names: tuple[str, ...]
    predictions: np.ndarray
    accuracy: np.ndarray
    efficiency: np.ndarray
    raq: np.ndarray
    weights: np.ndarray
    estimate: float
    selected_index: int

    @property
    def selected_model(self) -> str:
        """The argmax-RAQ model class (Fig. 11 counts these)."""
        return self.model_names[self.selected_index]


class _History:
    """Growable (X, y) history with contiguous float64 storage.

    The feature dimension is sized lazily from the first appended
    vector, so multi-feature submissions (d > 1) work; every later
    vector must keep that dimension.
    """

    _INITIAL_CAP = 32

    def __init__(self) -> None:
        self._X: np.ndarray | None = None
        self._y = np.empty(self._INITIAL_CAP, dtype=np.float64)
        self.size = 0

    def append(self, x: np.ndarray, y: float) -> None:
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if self._X is None:
            self._X = np.empty(
                (self._INITIAL_CAP, x.size), dtype=np.float64
            )
        elif x.size != self._X.shape[1]:
            raise ValueError(
                f"feature dimension changed: history holds "
                f"{self._X.shape[1]}-d vectors, got {x.size}-d"
            )
        if self.size == self._X.shape[0]:
            cap = self._X.shape[0] * 2
            X_new = np.empty((cap, self._X.shape[1]), dtype=np.float64)
            y_new = np.empty(cap, dtype=np.float64)
            X_new[: self.size] = self._X[: self.size]
            y_new[: self.size] = self._y[: self.size]
            self._X, self._y = X_new, y_new
        self._X[self.size] = x
        self._y[self.size] = y
        self.size += 1

    @property
    def X(self) -> np.ndarray:
        if self._X is None:
            return np.empty((0, 1), dtype=np.float64)
        return self._X[: self.size]

    @property
    def y(self) -> np.ndarray:
        return self._y[: self.size]


class ModelPool:
    """Trains and queries the model set for one (task type, machine) pair.

    Parameters mirror :class:`repro.core.config.SizeyConfig`; the pool is
    deliberately config-agnostic (plain arguments) so it can be unit
    tested and reused without a full Sizey predictor around it.
    """

    def __init__(
        self,
        model_classes: tuple[str, ...] = ("linear", "knn", "mlp", "random_forest"),
        *,
        training_mode: str = "full",
        alpha: float = 0.0,
        gating: str = "interpolation",
        beta: float = 10.0,
        hpo_interval: int = 25,
        accuracy_mode: str = "prequential",
        accuracy_window: int | None = 50,
        mlp_window: int = 64,
        rf_window: int = 512,
        rf_refit_interval: int = 16,
        random_state: int = 0,
    ) -> None:
        self.training_mode = training_mode
        self.alpha = alpha
        self.gating = gating
        self.beta = beta
        self.hpo_interval = hpo_interval
        self.accuracy_mode = accuracy_mode
        self.mlp_window = mlp_window
        self.slots: list[ModelSlot] = build_slots(
            model_classes,
            training_mode,
            random_state,
            mlp_window=mlp_window,
            rf_window=rf_window,
            rf_refit_interval=rf_refit_interval,
        )
        self._accuracy = [RunningAccuracy(accuracy_window) for _ in self.slots]
        self._history = _History()
        self._n_updates = 0
        self.last_update_seconds = 0.0
        # Hot-path cache: which slots are fitted, their names, and their
        # accuracy scores only change inside update(), so predict() /
        # predict_batch() reuse these instead of re-filtering the slots
        # and rebuilding the scores array on every call.
        self._active: list[ModelSlot] = []
        self._active_names: tuple[str, ...] = ()
        self._active_accuracy = np.empty(0, dtype=np.float64)
        # One pool may now be shared by concurrently interleaved
        # predict/observe callers (the sizing server's event loop, the
        # threaded regression tests): a single reentrant lock serializes
        # update() against predict()/predict_batch(), so a reader never
        # queries a half-trained slot or a fitted-slot cache mid-rebuild.
        # Uncontended acquisition is ~100 ns per *call* (not per task),
        # which is noise next to a model query.
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        # Locks are not picklable; a deserialized pool gets a fresh one.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def n_observations(self) -> int:
        return self._history.size

    @property
    def is_ready(self) -> bool:
        """Whether at least one slot can produce predictions."""
        return any(s.fitted for s in self.slots)

    def accuracy_scores(self) -> np.ndarray:
        with self._lock:
            return np.array(
                [a.score for a in self._accuracy], dtype=np.float64
            )

    # ------------------------------------------------------------------
    # Phase 3: online learning
    # ------------------------------------------------------------------
    def update(self, x: np.ndarray, y: float) -> float:
        """Ingest one completed execution; returns the training seconds.

        Order of operations matters: fitted models first predict the new
        point (prequential accuracy update, honest out-of-sample), then
        the point joins the history, then every model trains.
        """
        with self._lock:
            x = np.asarray(x, dtype=np.float64).reshape(1, -1)
            if self.accuracy_mode == "prequential":
                for slot, acc in zip(self.slots, self._accuracy):
                    if slot.fitted:
                        acc.update(slot.predict_one(x), y)

            self._history.append(x, float(y))
            self._n_updates += 1
            n = self._n_updates

            t0 = time.perf_counter()
            X_all, y_all = self._history.X, self._history.y
            if self.training_mode == "full":
                do_hpo = n == 1 or (n % self.hpo_interval == 0)
                for slot in self.slots:
                    slot.train_full(X_all, y_all, do_hpo=do_hpo)
            else:
                w = min(self.mlp_window, n)
                X_win, y_win = X_all[-w:], y_all[-w:]
                for slot in self.slots:
                    slot.update_incremental(x, float(y), X_win, y_win, n)
            self.last_update_seconds = time.perf_counter() - t0

            if self.accuracy_mode == "retrospective":
                # Re-score the whole history with the just-trained models.
                for slot, acc in zip(self.slots, self._accuracy):
                    if slot.fitted:
                        terms = accuracy_terms(slot.predict(X_all), y_all)
                        acc.reset_to(terms)
            self._refresh_active()
            return self.last_update_seconds

    def _refresh_active(self) -> None:
        """Rebuild the fitted-slot cache after training/scoring changed."""
        active = [
            (slot, acc)
            for slot, acc in zip(self.slots, self._accuracy)
            if slot.fitted
        ]
        self._active = [slot for slot, _ in active]
        self._active_names = tuple(slot.class_name for slot, _ in active)
        self._active_accuracy = np.array(
            [acc.score for _, acc in active], dtype=np.float64
        )

    # ------------------------------------------------------------------
    # Phase 2: prediction
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> PoolPrediction:
        """Gated prediction for feature vector ``x`` (shape ``(1, d)``)."""
        with self._lock:
            if not self._active:
                raise RuntimeError(
                    "pool has no fitted models; call update() first"
                )
            x = np.asarray(x, dtype=np.float64).reshape(1, -1)
            names = self._active_names
            preds = np.array([slot.predict_one(x) for slot in self._active])
            # Copy: PoolPrediction is a transparency record callers may
            # hold onto; handing out the cache itself would let them
            # corrupt it.
            acc = self._active_accuracy.copy()
        eff = efficiency_scores(preds)
        raq = raq_scores(acc, eff, self.alpha)
        decision = gate(preds, raq, self.gating, self.beta)
        return PoolPrediction(
            model_names=names,
            predictions=preds,
            accuracy=acc,
            efficiency=eff,
            raq=raq,
            weights=decision.weights,
            estimate=decision.estimate,
            selected_index=decision.selected_index,
        )

    def predict_batch(self, X: np.ndarray) -> list[PoolPrediction]:
        """Gated predictions for a feature matrix ``X`` (shape ``(n, d)``).

        Equivalent to ``[self.predict(x) for x in X]`` but issues exactly
        one query per fitted model slot (the expensive part — e.g. the
        whole random forest traverses once for all ``n`` rows) instead of
        ``n`` queries per slot.  Scoring and gating stay per-row because
        efficiency scores compare the models within one submission.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must have shape (n, d), got {X.shape}")
        with self._lock:
            if not self._active:
                raise RuntimeError(
                    "pool has no fitted models; call update() first"
                )
            names = self._active_names
            # (n_models, n_rows): the single vectorized query per slot.
            pred_matrix = np.stack([slot.predict(X) for slot in self._active])
            acc = self._active_accuracy.copy()
        out: list[PoolPrediction] = []
        for j in range(X.shape[0]):
            # Copies: rows must not be views into the shared matrix (a
            # retained PoolPrediction would pin it alive and expose it
            # to mutation), and rows must not share one accuracy array.
            preds = np.ascontiguousarray(pred_matrix[:, j])
            eff = efficiency_scores(preds)
            raq = raq_scores(acc, eff, self.alpha)
            decision = gate(preds, raq, self.gating, self.beta)
            out.append(
                PoolPrediction(
                    model_names=names,
                    predictions=preds,
                    accuracy=acc.copy(),
                    efficiency=eff,
                    raq=raq,
                    weights=decision.weights,
                    estimate=decision.estimate,
                    selected_index=decision.selected_index,
                )
            )
        return out
