"""RAQ scoring: accuracy (Eq. 1), efficiency (Eq. 2), composite (Eq. 3).

All three scores are normalised scalars in [0, 1], 1 best.

Accuracy is evaluated *prequentially* by default: each time a new
measurement arrives, every already-trained model first predicts it, the
bounded relative-error term enters that model's running mean, and only
then does the model train on the point.  This matches the paper's "the
prediction accuracy of individual models is permanently assessed" while
costing O(1) per update.  A retrospective mode (re-scoring the whole
history with the current model) is available for ablation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_term",
    "accuracy_terms",
    "RunningAccuracy",
    "efficiency_scores",
    "raq_scores",
]


def accuracy_term(y_pred: float, y_true: float) -> float:
    """One summand of Eq. 1: ``1 - min(|yhat - y| / y, 1)``.

    The error is bounded at 1 "to prohibit large estimation outliers from
    skewing the computed scores".  ``y_true`` must be positive (peak
    memory always is).
    """
    if y_true <= 0:
        raise ValueError(f"y_true must be positive, got {y_true}")
    return 1.0 - min(abs(y_pred - y_true) / y_true, 1.0)


def accuracy_terms(y_pred: np.ndarray, y_true: np.ndarray) -> np.ndarray:
    """Vectorised Eq. 1 summands for retrospective scoring."""
    y_pred = np.asarray(y_pred, dtype=np.float64)
    y_true = np.asarray(y_true, dtype=np.float64)
    if np.any(y_true <= 0):
        raise ValueError("y_true must be strictly positive")
    return 1.0 - np.minimum(np.abs(y_pred - y_true) / y_true, 1.0)


class RunningAccuracy:
    """Prequential accumulator of the Eq. 1 mean.

    ``score`` is 0.0 until the first observation — an untested model gets
    the worst accuracy, so gating will not trust it over tested peers
    when ``alpha < 1``.

    With ``window=None`` the mean runs over the full history in O(1).
    A finite ``window`` averages only the most recent terms, so a model
    that *becomes* better once enough data arrives (the MLP on a
    non-linear task) can overtake one that merely started well — this is
    what lets Sizey "switch to more complex models once more data become
    available" (paper §III-D discussion of Fig. 11).
    """

    __slots__ = ("_sum", "_count", "_window", "_terms")

    def __init__(self, window: int | None = None) -> None:
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1 or None, got {window}")
        self._sum = 0.0
        self._count = 0
        self._window = window
        self._terms: list[float] = []

    def update(self, y_pred: float, y_true: float) -> None:
        term = accuracy_term(y_pred, y_true)
        self._count += 1
        if self._window is None:
            self._sum += term
            return
        self._terms.append(term)
        if len(self._terms) > self._window:
            self._terms.pop(0)

    def reset_to(self, terms: np.ndarray) -> None:
        """Replace the accumulated state (retrospective mode)."""
        self._count = int(terms.shape[0])
        if self._window is None:
            self._sum = float(np.sum(terms))
        else:
            self._terms = [float(t) for t in terms[-self._window :]]

    @property
    def count(self) -> int:
        return self._count

    @property
    def score(self) -> float:
        if self._count == 0:
            return 0.0
        if self._window is None:
            return self._sum / self._count
        if not self._terms:
            return 0.0
        return float(np.mean(self._terms))


def efficiency_scores(predictions: np.ndarray) -> np.ndarray:
    """Eq. 2: ``ES_i = 1 - yhat_i / max_j yhat_j``.

    Predictions must be positive (callers clamp model outputs to a small
    positive floor first).  The largest estimate always scores 0; with a
    single model the score is 0 as well, consistent with Eq. 2.
    """
    preds = np.asarray(predictions, dtype=np.float64)
    if preds.ndim != 1 or preds.size == 0:
        raise ValueError("predictions must be a non-empty 1-D array")
    if np.any(preds <= 0):
        raise ValueError("predictions must be positive (clamp before scoring)")
    return 1.0 - preds / preds.max()


def raq_scores(
    accuracy: np.ndarray, efficiency: np.ndarray, alpha: float
) -> np.ndarray:
    """Eq. 3: ``RAQ_i = (1 - alpha) * AS_i + alpha * ES_i``."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    acc = np.asarray(accuracy, dtype=np.float64)
    eff = np.asarray(efficiency, dtype=np.float64)
    if acc.shape != eff.shape:
        raise ValueError(f"shape mismatch: {acc.shape} vs {eff.shape}")
    if np.any((acc < -1e-12) | (acc > 1 + 1e-12)) or np.any(
        (eff < -1e-12) | (eff > 1 + 1e-12)
    ):
        raise ValueError("scores must lie in [0, 1]")
    return (1.0 - alpha) * acc + alpha * eff
