"""Fault-tolerance offsets (paper §II-E).

Sizey pads its aggregate prediction with an offset so that small
underpredictions do not turn into task failures.  Four offset statistics
are maintained over the pool's own prediction history:

- ``std``          — standard deviation of the prediction errors;
- ``std_under``    — standard deviation of underprediction errors only;
- ``median``       — median absolute prediction error;
- ``median_under`` — median underprediction error.

The *dynamic* strategy replays, after every completion, which of the four
offsets "would have caused the least wastage based on the tasks already
executed" and uses that one for the next prediction.  The hypothetical
wastage of an offset replays the paper's execution model: an attempt
whose padded prediction covers the actual peak wastes the over-allocation
for the task's runtime; one that does not wastes its whole allocation for
``time_to_failure`` of the runtime plus a retry at the maximum observed
peak.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OFFSET_STRATEGIES", "compute_offset", "OffsetTracker"]

OFFSET_STRATEGIES = ("std", "std_under", "median", "median_under")


def compute_offset(
    strategy: str, predictions: np.ndarray, actuals: np.ndarray
) -> float:
    """Offset value of one strategy given prediction/actual history.

    Underpredictions are the cases ``actual > prediction`` (positive
    error).  Strategies over an empty relevant set return 0.0 — with no
    evidence of underprediction there is nothing to pad.
    """
    preds = np.asarray(predictions, dtype=np.float64)
    acts = np.asarray(actuals, dtype=np.float64)
    if preds.shape != acts.shape:
        raise ValueError(f"shape mismatch: {preds.shape} vs {acts.shape}")
    if preds.size == 0:
        return 0.0
    errors = acts - preds  # positive = underprediction
    under = errors[errors > 0]
    if strategy == "std":
        return float(np.std(errors))
    if strategy == "std_under":
        return float(np.std(under)) if under.size else 0.0
    if strategy == "median":
        return float(np.median(np.abs(errors)))
    if strategy == "median_under":
        return float(np.median(under)) if under.size else 0.0
    raise ValueError(
        f"unknown offset strategy {strategy!r}; choose from {OFFSET_STRATEGIES}"
    )


class OffsetTracker:
    """Per-(task type, machine) offset bookkeeping and dynamic selection.

    Statistics are computed over a sliding window of the most recent
    ``window`` predictions.  Without the window, the early online phase
    (large transient errors while models warm up) would keep the standard
    deviation inflated for the rest of the workflow, padding thousands of
    later predictions for a spread that no longer exists.
    """

    def __init__(
        self,
        strategy: str = "dynamic",
        time_to_failure: float = 1.0,
        window: int = 128,
        scales: tuple[float, ...] = (1.0, 2.0),
    ) -> None:
        if strategy not in ("dynamic", "none", *OFFSET_STRATEGIES):
            raise ValueError(f"unknown offset strategy {strategy!r}")
        if not 0.0 < time_to_failure <= 1.0:
            raise ValueError(
                f"time_to_failure must be in (0, 1], got {time_to_failure}"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not scales or any(s <= 0 for s in scales):
            raise ValueError(f"scales must be positive, got {scales}")
        self.strategy = strategy
        self.time_to_failure = time_to_failure
        self.window = window
        self.scales = tuple(scales)
        self._preds: list[float] = []
        self._acts: list[float] = []
        self._runtimes: list[float] = []

    def __len__(self) -> int:
        return len(self._preds)

    def record(self, prediction: float, actual: float, runtime_hours: float) -> None:
        """Store one (raw prediction, measured peak, runtime) triple."""
        if actual <= 0 or runtime_hours < 0:
            raise ValueError("actual must be positive, runtime non-negative")
        self._preds.append(float(prediction))
        self._acts.append(float(actual))
        self._runtimes.append(float(runtime_hours))
        if len(self._preds) > self.window:
            del self._preds[0], self._acts[0], self._runtimes[0]

    def _hypothetical_wastage(self, offset: float) -> float:
        """Wastage (MB-hours) this offset would have produced historically."""
        preds = np.asarray(self._preds)
        acts = np.asarray(self._acts)
        rts = np.asarray(self._runtimes)
        alloc = preds + offset
        ok = alloc >= acts
        waste = np.where(
            ok,
            (alloc - acts) * rts,
            # Failure: whole allocation held until the kill, then a retry
            # at the maximum observed peak (the paper's failure handler),
            # which over-allocates by (max_peak - actual).
            alloc * rts * self.time_to_failure + (acts.max() - acts) * rts,
        )
        return float(waste.sum())

    def current_offset(self) -> tuple[float, str]:
        """Return ``(offset_mb, strategy_used)`` for the next prediction.

        Dynamic mode evaluates each of the four statistics at each
        configured scale (failure-heavy pools rationally prefer the
        scaled-up variants; cheap-failure pools the plain ones) and keeps
        whichever candidate would have wasted the least historically.
        """
        if self.strategy == "none" or not self._preds:
            return 0.0, "none"
        preds = np.asarray(self._preds)
        acts = np.asarray(self._acts)
        if self.strategy != "dynamic":
            return compute_offset(self.strategy, preds, acts), self.strategy
        best_name = OFFSET_STRATEGIES[0]
        best_offset = 0.0
        best_waste = np.inf
        for name in OFFSET_STRATEGIES:
            base = compute_offset(name, preds, acts)
            for scale in self.scales:
                off = base * scale
                waste = self._hypothetical_wastage(off)
                if waste < best_waste:
                    best_name, best_offset, best_waste = name, off, waste
        return best_offset, best_name
