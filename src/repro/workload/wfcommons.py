"""WfCommons instance JSON as a workload source.

WfCommons (wfcommons.org) is the community-standard format for real
workflow execution traces — the kind of provenance the paper's
evaluation replays from six nf-core pipelines.  This module ingests a
WfCommons *instance* file into the substrate's native
:class:`~repro.workflow.task.WorkflowTrace` +
:class:`~repro.workflow.dag.WorkflowDAG`, so every recorded workflow in
the public WfCommons collections becomes a runnable workload for the
replay backend, the event kernel, and the DAG scheduling engine.

Two schema generations are understood:

- **modern** (schemaVersion >= 1.4): ``workflow.specification.tasks``
  (structure: parents/children/input files) joined with
  ``workflow.execution.tasks`` (measurements: ``runtimeInSeconds``,
  ``memoryInBytes``, ``avgCPU``, ``readBytes``, ``writtenBytes``) and
  ``specification.files`` (``sizeInBytes``);
- **legacy** (<= 1.3): flat ``workflow.tasks`` (or ``jobs``) rows with
  ``runtime`` in seconds, ``memory`` in KB, and per-task ``files``
  entries with ``size`` in bytes.

Unit normalization targets the substrate's conventions: memory and file
sizes in MB (binary, 1 MB = 2**20 bytes; 1 MB = 1024 KB), runtimes in
hours.

Missing or zero measurements (real traces are full of them — failed
probes, un-instrumented tools) fall back to *seeded* draws: a task with
no usable memory sample gets the median of its task type's known peaks
jittered log-normally, or a generic prior when the whole type is
unmeasured.  The same seed always fills the same values, so a partially
measured file is still a deterministic workload.

Dependencies are recorded per *instance* in WfCommons.  The instance
edges are kept on :attr:`WorkflowTrace.instance_edges` (round-tripped by
trace schema v2) and additionally collapsed to the type-level
:class:`WorkflowDAG` the scheduling engine consumes: each task type
takes the minimum topological depth of its instances, and an edge
``u -> v`` survives iff ``depth(type(u)) < depth(type(v))`` — acyclic by
construction even when a naive type collapse would cycle.  Cyclic
*instance* links are a format error and raise
:class:`~repro.workflow.io.TraceFormatError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.workflow.dag import WorkflowDAG
from repro.workflow.io import TraceFormatError
from repro.workflow.task import TaskInstance, TaskType, WorkflowTrace

__all__ = [
    "WfCommonsSource",
    "load_wfcommons",
    "wfcommons_to_trace",
    "trace_to_wfcommons",
]

_BYTES_PER_MB = 1024.0 * 1024.0
_KB_PER_MB = 1024.0
_SECONDS_PER_HOUR = 3600.0

#: Seeded-fallback priors for wholly unmeasured task types.
_FALLBACK_MEMORY_MB = 1024.0
_FALLBACK_RUNTIME_HOURS = 0.01
_FALLBACK_INPUT_MB = 100.0


@dataclass
class _Row:
    """One task, normalized across schema generations (MB / hours)."""

    uid: str
    type_name: str
    order: int  # position in the file, the deterministic tie-breaker
    parents: list[str] = field(default_factory=list)
    children: list[str] = field(default_factory=list)
    memory_mb: float | None = None
    runtime_hours: float | None = None
    input_mb: float | None = None
    cpu_percent: float = 100.0
    io_read_mb: float = 0.0
    io_write_mb: float = 0.0
    machine: str = "default"


def _number(value: object, path: str, what: str) -> float:
    """Convert a raw field to float or raise the typed error with path."""
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise TraceFormatError(
            f"{what} must be a number, got {value!r}", path=path
        ) from None


def _positive_or_none(
    value: object, path: str, what: str
) -> float | None:
    """Normalize a raw measurement: None/0 -> missing, negative -> error."""
    if value is None:
        return None
    number = _number(value, path, what)
    if number < 0:
        raise TraceFormatError(
            f"{what} must be >= 0, got {number}", path=path
        )
    return number if number > 0 else None


def _type_of(task: dict, uid: str) -> str:
    """Task-type name: ``category`` when present, else the id stem.

    WfCommons instance ids conventionally look like
    ``blast_ID0000042``; stripping the ``_ID...`` suffix recovers the
    tool name when no explicit category is given.
    """
    category = task.get("category")
    if isinstance(category, str) and category:
        return category
    stem, sep, tail = uid.rpartition("_ID")
    if sep and stem and tail.isdigit():
        return stem
    return uid


def _rows_modern(wf: dict) -> list[_Row]:
    spec = wf["specification"]
    tasks = spec.get("tasks")
    if not isinstance(tasks, list):
        raise TraceFormatError(
            "missing required key 'tasks'", path="workflow.specification"
        )
    file_sizes: dict[str, float] = {}
    for i, f in enumerate(spec.get("files", []) or []):
        fid = f.get("id")
        if fid is None:
            raise TraceFormatError(
                "missing required key 'id'",
                path=f"workflow.specification.files[{i}]",
            )
        size = _positive_or_none(
            f.get("sizeInBytes"),
            f"workflow.specification.files[{i}].sizeInBytes",
            "sizeInBytes",
        )
        file_sizes[str(fid)] = (size or 0.0) / _BYTES_PER_MB

    execution: dict[str, dict] = {}
    for i, t in enumerate((wf.get("execution") or {}).get("tasks", []) or []):
        tid = t.get("id")
        if tid is None:
            raise TraceFormatError(
                "missing required key 'id'",
                path=f"workflow.execution.tasks[{i}]",
            )
        execution[str(tid)] = t

    rows: list[_Row] = []
    for i, task in enumerate(tasks):
        path = f"workflow.specification.tasks[{i}]"
        if not isinstance(task, dict):
            raise TraceFormatError("task must be an object", path=path)
        uid = task.get("id") or task.get("name")
        if not uid:
            raise TraceFormatError(
                "task has neither 'id' nor 'name'", path=path
            )
        uid = str(uid)
        row = _Row(uid=uid, type_name=_type_of(task, uid), order=i)
        row.parents = [str(p) for p in task.get("parents", []) or []]
        input_files = task.get("inputFiles")
        if input_files is not None:
            row.input_mb = float(
                sum(file_sizes.get(str(f), 0.0) for f in input_files)
            )
        measured = execution.get(uid, {})
        row.memory_mb = _positive_or_none(
            measured.get("memoryInBytes"),
            f"workflow.execution.tasks[{uid}].memoryInBytes",
            "memoryInBytes",
        )
        if row.memory_mb is not None:
            row.memory_mb /= _BYTES_PER_MB
        row.runtime_hours = _positive_or_none(
            measured.get("runtimeInSeconds"),
            f"workflow.execution.tasks[{uid}].runtimeInSeconds",
            "runtimeInSeconds",
        )
        if row.runtime_hours is not None:
            row.runtime_hours /= _SECONDS_PER_HOUR
        exec_path = f"workflow.execution.tasks[{uid}]"
        if measured.get("avgCPU") is not None:
            row.cpu_percent = _number(
                measured["avgCPU"], f"{exec_path}.avgCPU", "avgCPU"
            )
        if measured.get("readBytes") is not None:
            row.io_read_mb = _number(
                measured["readBytes"], f"{exec_path}.readBytes", "readBytes"
            ) / _BYTES_PER_MB
        if measured.get("writtenBytes") is not None:
            row.io_write_mb = _number(
                measured["writtenBytes"],
                f"{exec_path}.writtenBytes",
                "writtenBytes",
            ) / _BYTES_PER_MB
        machines = measured.get("machines") or []
        if machines:
            row.machine = str(machines[0])
        row.children = [str(c) for c in task.get("children", []) or []]
        rows.append(row)
    return rows


def _rows_legacy(wf: dict) -> list[_Row]:
    tasks = wf.get("tasks", wf.get("jobs"))
    if not isinstance(tasks, list):
        raise TraceFormatError(
            "workflow has neither 'specification' nor 'tasks'/'jobs'",
            path="workflow",
        )
    rows: list[_Row] = []
    for i, task in enumerate(tasks):
        path = f"workflow.tasks[{i}]"
        if not isinstance(task, dict):
            raise TraceFormatError("task must be an object", path=path)
        uid = task.get("id") or task.get("name")
        if not uid:
            raise TraceFormatError(
                "task has neither 'id' nor 'name'", path=path
            )
        uid = str(uid)
        row = _Row(uid=uid, type_name=_type_of(task, uid), order=i)
        row.parents = [str(p) for p in task.get("parents", []) or []]
        row.children = [str(c) for c in task.get("children", []) or []]
        memory_kb = _positive_or_none(
            task.get("memory"), f"{path}.memory", "memory"
        )
        if memory_kb is not None:
            row.memory_mb = memory_kb / _KB_PER_MB
        runtime_s = _positive_or_none(
            task.get("runtime"), f"{path}.runtime", "runtime"
        )
        if runtime_s is not None:
            row.runtime_hours = runtime_s / _SECONDS_PER_HOUR
        files = task.get("files")
        if files is not None:
            total = 0.0
            for j, f in enumerate(files):
                if not isinstance(f, dict):
                    raise TraceFormatError(
                        "file entry must be an object",
                        path=f"{path}.files[{j}]",
                    )
                if f.get("link") != "input":
                    continue
                size = _positive_or_none(
                    f.get("size"), f"{path}.files[{j}].size", "size"
                )
                total += (size or 0.0) / _BYTES_PER_MB
            row.input_mb = total
        if task.get("avgCPU") is not None:
            row.cpu_percent = _number(
                task["avgCPU"], f"{path}.avgCPU", "avgCPU"
            )
        if task.get("bytesRead") is not None:
            row.io_read_mb = _number(
                task["bytesRead"], f"{path}.bytesRead", "bytesRead"
            ) / _BYTES_PER_MB
        if task.get("bytesWritten") is not None:
            row.io_write_mb = _number(
                task["bytesWritten"], f"{path}.bytesWritten", "bytesWritten"
            ) / _BYTES_PER_MB
        machine = task.get("machine")
        if machine:
            row.machine = str(machine)
        rows.append(row)
    return rows


def _link_and_sort(rows: list[_Row]) -> tuple[list[_Row], dict[str, int]]:
    """Merge parents/children, topo-sort, return (ordered rows, depths).

    Depth is the longest-path distance from any source, computed with
    Kahn's algorithm; cyclic links raise :class:`TraceFormatError`
    naming the cycle members.  Rows come back in submission order:
    (depth, file position).
    """
    by_id: dict[str, _Row] = {}
    for row in rows:
        if row.uid in by_id:
            raise TraceFormatError(
                f"duplicate task id {row.uid!r}",
                path=f"workflow.tasks[{row.order}].id",
            )
        by_id[row.uid] = row
    # Union the two redundant link directions into parents-only form.
    for row in rows:
        for parent in row.parents:
            if parent not in by_id:
                raise TraceFormatError(
                    f"parent {parent!r} references an unknown task",
                    path=f"workflow.tasks[{row.order}].parents",
                )
        for child in row.children:
            if child not in by_id:
                raise TraceFormatError(
                    f"child {child!r} references an unknown task",
                    path=f"workflow.tasks[{row.order}].children",
                )
            if row.uid not in by_id[child].parents:
                by_id[child].parents.append(row.uid)
    for row in rows:
        if row.uid in row.parents:
            raise TraceFormatError(
                f"task {row.uid!r} lists itself as a parent",
                path=f"workflow.tasks[{row.order}].parents",
            )

    children: dict[str, list[str]] = {row.uid: [] for row in rows}
    indegree: dict[str, int] = {row.uid: 0 for row in rows}
    for row in rows:
        unique_parents = sorted(set(row.parents))
        row.parents = unique_parents
        indegree[row.uid] = len(unique_parents)
        for parent in unique_parents:
            children[parent].append(row.uid)
    depth: dict[str, int] = {}
    frontier = [row.uid for row in rows if indegree[row.uid] == 0]
    for uid in frontier:
        depth[uid] = 0
    processed = 0
    while frontier:
        nxt: list[str] = []
        for uid in frontier:
            processed += 1
            for child in children[uid]:
                indegree[child] -= 1
                depth[child] = max(depth.get(child, 0), depth[uid] + 1)
                if indegree[child] == 0:
                    nxt.append(child)
        frontier = nxt
    if processed != len(rows):
        # Kahn leaves every node downstream of a cycle unprocessed;
        # blame only actual cycle members — a node that can reach
        # itself — so the error points at the links to fix rather than
        # at innocent descendants (same convention as WorkflowDAG).
        remaining = {uid for uid, deg in indegree.items() if deg > 0}

        def reaches_itself(start: str) -> bool:
            seen: set[str] = set()
            stack = [c for c in children[start] if c in remaining]
            while stack:
                current = stack.pop()
                if current == start:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(c for c in children[current] if c in remaining)
            return False

        members = sorted(uid for uid in remaining if reaches_itself(uid))
        raise TraceFormatError(
            f"cyclic parent/child links involving {members}",
            path="workflow.tasks",
        )
    ordered = sorted(rows, key=lambda r: (depth[r.uid], r.order))
    return ordered, depth


def _fill_missing(rows: list[_Row], rng: np.random.Generator) -> None:
    """Seeded fallback for missing memory/runtime/input measurements.

    Draws happen in submission order, only for missing fields, so the
    same (file, seed) pair always fills the same values.  The per-type
    pools (and hence every fill's center) are fixed before any fill
    happens, so all draws can be planned first and taken in one
    vectorized ``lognormal`` call — the ``Generator`` bit stream is
    consumed identically to per-draw scalar calls, keeping values
    bit-for-bit stable while making million-task files import fast.
    """
    known_memory: dict[str, list[float]] = {}
    known_runtime: dict[str, list[float]] = {}
    known_input: dict[str, list[float]] = {}
    for row in rows:
        if row.memory_mb is not None:
            known_memory.setdefault(row.type_name, []).append(row.memory_mb)
        if row.runtime_hours is not None:
            known_runtime.setdefault(row.type_name, []).append(
                row.runtime_hours
            )
        if row.input_mb is not None:
            known_input.setdefault(row.type_name, []).append(row.input_mb)

    medians: dict[int, float] = {}

    def center_of(pool: list[float] | None, prior: float) -> float:
        if not pool:
            return prior
        key = id(pool)
        if key not in medians:
            medians[key] = float(np.median(pool))
        return medians[key]

    #: (row, field, center) per missing value, in draw (submission) order.
    plan: list[tuple[_Row, str, float]] = []
    sigmas: list[float] = []

    for row in rows:
        if row.memory_mb is None:
            plan.append((row, "memory_mb", center_of(
                known_memory.get(row.type_name), _FALLBACK_MEMORY_MB)))
            sigmas.append(0.1)
        if row.runtime_hours is None:
            plan.append((row, "runtime_hours", center_of(
                known_runtime.get(row.type_name), _FALLBACK_RUNTIME_HOURS)))
            sigmas.append(0.1)
        if row.input_mb is None:
            plan.append((row, "input_mb", center_of(
                known_input.get(row.type_name), _FALLBACK_INPUT_MB)))
            sigmas.append(0.5)
    if not plan:
        return
    factors = rng.lognormal(0.0, np.asarray(sigmas, dtype=np.float64))
    for (row, field, center), factor in zip(plan, factors):
        setattr(row, field, center * float(factor))


def _ceil_to_gb(mb: float) -> float:
    return float(np.ceil(mb / 1024.0) * 1024.0)


def _collapse_type_dag(
    rows: list[_Row], depth: dict[str, int]
) -> WorkflowDAG:
    """Type-level DAG from instance links via minimum-depth staging."""
    type_order: list[str] = []
    type_depth: dict[str, int] = {}
    for row in rows:  # rows are in (depth, order) submission order
        if row.type_name not in type_depth:
            type_order.append(row.type_name)
            type_depth[row.type_name] = depth[row.uid]
        else:
            type_depth[row.type_name] = min(
                type_depth[row.type_name], depth[row.uid]
            )
    by_id = {row.uid: row for row in rows}
    edges: set[tuple[str, str]] = set()
    for row in rows:
        for parent in row.parents:
            up, down = by_id[parent].type_name, row.type_name
            if up != down and type_depth[up] < type_depth[down]:
                edges.add((up, down))
    return WorkflowDAG(type_order, sorted(edges))


def wfcommons_to_trace(
    data: dict, seed: int = 0, workflow: str | None = None
) -> WorkflowTrace:
    """Convert a parsed WfCommons instance document into a trace.

    Returns a :class:`WorkflowTrace` whose ``dag`` is the collapsed
    type-level dependency graph and whose ``instance_edges`` preserve
    the original per-instance links (new ids are submission positions).
    ``workflow`` overrides the document's ``name``.
    """
    if not isinstance(data, dict):
        raise TraceFormatError(
            f"WfCommons document must be a JSON object, got "
            f"{type(data).__name__}",
            path="$",
        )
    wf = data.get("workflow")
    if not isinstance(wf, dict):
        raise TraceFormatError("missing required key 'workflow'", path="$")
    name = workflow or str(data.get("name") or "wfcommons")
    if "specification" in wf:
        rows = _rows_modern(wf)
    else:
        rows = _rows_legacy(wf)
    if not rows:
        raise TraceFormatError(
            "WfCommons instance declares no tasks", path="workflow.tasks"
        )
    ordered, depth = _link_and_sort(rows)
    _fill_missing(ordered, np.random.default_rng(seed))
    dag = _collapse_type_dag(ordered, depth)

    peaks: dict[str, float] = {}
    for row in ordered:
        assert row.memory_mb is not None
        peaks[row.type_name] = max(
            peaks.get(row.type_name, 0.0), row.memory_mb
        )
    # Preset convention mirrors the synthetic generator: conservative
    # round-number defaults with a 4 GB floor, derived from the peaks.
    types = {
        t: TaskType(
            name=t,
            workflow=name,
            preset_memory_mb=max(_ceil_to_gb(peak * 2.0), 4096.0),
        )
        for t, peak in peaks.items()
    }
    new_id = {row.uid: i for i, row in enumerate(ordered)}
    instances = [
        TaskInstance(
            task_type=types[row.type_name],
            instance_id=new_id[row.uid],
            input_size_mb=float(row.input_mb or 0.0),
            peak_memory_mb=float(row.memory_mb),  # type: ignore[arg-type]
            runtime_hours=float(row.runtime_hours),  # type: ignore[arg-type]
            cpu_percent=float(row.cpu_percent),
            io_read_mb=float(row.io_read_mb),
            io_write_mb=float(row.io_write_mb),
            machine=row.machine,
        )
        for row in ordered
    ]
    instance_edges = sorted(
        (new_id[parent], new_id[row.uid])
        for row in ordered
        for parent in row.parents
    )
    return WorkflowTrace(
        name, instances, dag=dag, instance_edges=instance_edges
    )


def load_wfcommons(
    path: str | Path, seed: int = 0, workflow: str | None = None
) -> WorkflowTrace:
    """Read a WfCommons instance JSON file into a trace."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            f"not valid JSON: {exc}", path=str(path)
        ) from None
    return wfcommons_to_trace(data, seed=seed, workflow=workflow)


def trace_to_wfcommons(trace: WorkflowTrace) -> dict:
    """Export a trace as a modern-schema WfCommons instance document.

    The inverse (lossy only in float runtime seconds) of
    :func:`wfcommons_to_trace` — used to fabricate WfCommons files from
    synthetic traces for demos, benchmarks, and round-trip tests.
    Instance-level links come from ``trace.instance_edges`` when
    present; otherwise each type-level DAG edge ``u -> v`` is thinned to
    instance links ``v_i -> u_(i mod n_u)`` deterministically.
    """
    uid = {
        inst.instance_id: f"{inst.task_type.name}_ID{inst.instance_id:07d}"
        for inst in trace
    }
    parents: dict[int, list[int]] = {inst.instance_id: [] for inst in trace}
    children: dict[int, list[int]] = {inst.instance_id: [] for inst in trace}
    if trace.instance_edges is not None:
        links = list(trace.instance_edges)
    elif trace.dag is not None:
        by_type: dict[str, list[int]] = {}
        for inst in trace:
            by_type.setdefault(inst.task_type.name, []).append(
                inst.instance_id
            )
        links = []
        for up, down in trace.dag.edges:
            ups, downs = by_type.get(up, []), by_type.get(down, [])
            if not ups:
                continue
            links.extend(
                (ups[i % len(ups)], child) for i, child in enumerate(downs)
            )
    else:
        links = []
    for up, down in links:
        parents[down].append(up)
        children[up].append(down)

    spec_tasks, exec_tasks, files = [], [], []
    for inst in trace:
        iid = inst.instance_id
        file_id = f"in_{iid:07d}"
        files.append(
            {
                "id": file_id,
                "sizeInBytes": inst.input_size_mb * _BYTES_PER_MB,
            }
        )
        spec_tasks.append(
            {
                "name": inst.task_type.name,
                "id": uid[iid],
                "category": inst.task_type.name,
                "parents": [uid[p] for p in sorted(parents[iid])],
                "children": [uid[c] for c in sorted(children[iid])],
                "inputFiles": [file_id],
                "outputFiles": [],
            }
        )
        exec_tasks.append(
            {
                "id": uid[iid],
                "runtimeInSeconds": inst.runtime_hours * _SECONDS_PER_HOUR,
                "memoryInBytes": inst.peak_memory_mb * _BYTES_PER_MB,
                "avgCPU": inst.cpu_percent,
                "readBytes": inst.io_read_mb * _BYTES_PER_MB,
                "writtenBytes": inst.io_write_mb * _BYTES_PER_MB,
                "machines": [inst.machine],
            }
        )
    return {
        "name": trace.workflow,
        "schemaVersion": "1.5",
        "workflow": {
            "specification": {"tasks": spec_tasks, "files": files},
            "execution": {"tasks": exec_tasks},
        },
    }


class WfCommonsSource:
    """A WfCommons instance file as a :class:`WorkloadSource`.

    Parameters
    ----------
    path:
        WfCommons instance JSON file.
    seed:
        Seed of the missing-field fallback draws (and of subsampling
        when ``scale < 1``); the same (file, seed) always yields the
        same trace.
    scale:
        Subsampling fraction in ``(0, 1]``.
    """

    def __init__(
        self, path: str | Path, seed: int = 0, scale: float = 1.0
    ) -> None:
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self.path = Path(path)
        if not self.path.exists():
            raise TraceFormatError(
                f"WfCommons file does not exist: {self.path}",
                path=str(self.path),
            )
        self.seed = seed
        self.scale = scale
        self._trace: WorkflowTrace | None = None

    @property
    def name(self) -> str:
        return f"wfcommons:{self.path}"

    @property
    def workflow(self) -> str:
        return self.trace().workflow

    @property
    def n_tasks(self) -> int | None:
        return len(self.trace())

    def trace(self) -> WorkflowTrace:
        if self._trace is None:
            trace = load_wfcommons(self.path, seed=self.seed)
            if self.scale != 1.0:
                trace = trace.subsample(self.scale, seed=self.seed + 1)
            self._trace = trace
        return self._trace

    def iter_tasks(self) -> Iterator[TaskInstance]:
        return iter(self.trace())

    def iter_traces(self) -> Iterator[WorkflowTrace]:
        yield self.trace()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_trace"] = None  # workers re-read the file
        return state
