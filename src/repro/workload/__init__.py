"""Unified workload layer: where simulated work comes from.

The :class:`WorkloadSource` protocol (:mod:`repro.workload.base`)
decouples every consumer — replay backend, event kernel, DAG scheduling
engine, grid runner, CLI — from materialized task lists.  Sources
produce task instances and whole trace+DAG instances lazily and
deterministically under a seed:

- :class:`SyntheticSource` / :class:`NfCoreSource`
  (:mod:`repro.workload.synthetic`) — the seeded generator and the six
  paper workflows, bit-for-bit identical to the direct helpers;
- :class:`TraceFileSource` (:mod:`repro.workload.tracefile`) —
  repro-trace JSON v1/v2 files and streaming ``.jsonl`` traces;
- :class:`WfCommonsSource` (:mod:`repro.workload.wfcommons`) — the
  community-standard WfCommons instance format, with unit normalization
  and seeded fallbacks for missing measurements.

Spec strings (``synthetic:iwd``, ``trace:runs/mag.jsonl``,
``wfcommons:traces/blast.json``) address registered sources everywhere
a ``workload`` option exists: :func:`~repro.sim.runner.run_cell`,
:func:`~repro.sim.runner.run_grid`,
:class:`~repro.sim.engine.OnlineSimulator`, and the CLI's
``--workload``.
"""

from repro.workload.base import (
    TraceSource,
    WorkloadSource,
    as_source,
    parse_workload,
    register_workload,
    workload_schemes,
)
from repro.workload.synthetic import NfCoreSource, SyntheticSource
from repro.workload.tracefile import TraceFileSource
from repro.workload.wfcommons import (
    WfCommonsSource,
    load_wfcommons,
    trace_to_wfcommons,
    wfcommons_to_trace,
)

register_workload(
    "synthetic", lambda arg, seed, scale: NfCoreSource(arg, seed, scale)
)
register_workload(
    "nfcore", lambda arg, seed, scale: NfCoreSource(arg, seed, scale)
)
register_workload(
    "trace", lambda arg, seed, scale: TraceFileSource(arg, seed, scale)
)
register_workload(
    "wfcommons", lambda arg, seed, scale: WfCommonsSource(arg, seed, scale)
)

__all__ = [
    "WorkloadSource",
    "TraceSource",
    "SyntheticSource",
    "NfCoreSource",
    "TraceFileSource",
    "WfCommonsSource",
    "as_source",
    "parse_workload",
    "register_workload",
    "workload_schemes",
    "load_wfcommons",
    "wfcommons_to_trace",
    "trace_to_wfcommons",
]
