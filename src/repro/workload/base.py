"""The workload seam: where task streams come from.

Every consumer in the stack — the replay backend, the event kernel, the
DAG scheduling engine, the grid runner, the CLI — used to require a
fully materialized :class:`~repro.workflow.task.WorkflowTrace` before
anything could run.  The :class:`WorkloadSource` protocol inverts that:
a source *produces* task instances and whole trace+DAG instances on
demand, lazily and deterministically under its construction-time seed,
and the consumers pull.

Four adapters ship (registered under CLI-addressable schemes):

========================  ==============================================
``synthetic:<name>``      :class:`~repro.workload.synthetic.NfCoreSource`
                          — the six paper workflows through the seeded
                          generator (``nfcore:`` is an alias)
``trace:<path>``          :class:`~repro.workload.tracefile.TraceFileSource`
                          — repro-trace JSON v1/v2, or a ``.jsonl`` file
                          streamed instance by instance
``wfcommons:<path>``      :class:`~repro.workload.wfcommons.WfCommonsSource`
                          — community-standard WfCommons instance JSON
========================  ==============================================

plus :class:`~repro.workload.synthetic.SyntheticSource` for programmatic
:class:`~repro.workflow.generator.WorkflowSpec` objects.  Third-party
sources register via :func:`register_workload` and become addressable
from ``run_cell(workload=...)`` and the CLI's ``--workload``.
"""

from __future__ import annotations

from typing import Callable, Iterator, Protocol, runtime_checkable

from repro.workflow.task import TaskInstance, WorkflowTrace

__all__ = [
    "WorkloadSource",
    "TraceSource",
    "as_source",
    "register_workload",
    "workload_schemes",
    "parse_workload",
]


@runtime_checkable
class WorkloadSource(Protocol):
    """Lazy, seeded producer of task instances and workflow traces.

    Implementations are deterministic: two sources constructed with the
    same parameters (including seed) yield identical streams.  ``name``
    identifies the source in results/logs (e.g. ``"synthetic:iwd"``);
    ``workflow`` names the produced workflow.

    ``n_tasks`` is the number of tasks :meth:`iter_tasks` will yield, or
    ``None`` when the source streams and cannot know without exhausting
    itself (consumers then either stream arrival times or materialize).
    """

    @property
    def name(self) -> str:
        ...

    @property
    def workflow(self) -> str:
        ...

    @property
    def n_tasks(self) -> int | None:
        ...

    def iter_tasks(self) -> Iterator[TaskInstance]:
        """Task instances in submission order, produced lazily."""
        ...

    def iter_traces(self) -> Iterator[WorkflowTrace]:
        """Whole trace+DAG instances (one for single-workflow sources)."""
        ...

    def trace(self) -> WorkflowTrace:
        """The first (often only) trace, materialized and cached."""
        ...


class TraceSource:
    """Adapter presenting an in-memory trace as a :class:`WorkloadSource`.

    Everything that accepts a ``workload`` also still accepts a plain
    :class:`WorkflowTrace`; this wrapper is how the two meet.  It is the
    identity adapter: iteration yields the trace's instances unchanged.
    """

    def __init__(self, trace: WorkflowTrace) -> None:
        self._trace = trace

    @property
    def name(self) -> str:
        return f"trace-object:{self._trace.workflow}"

    @property
    def workflow(self) -> str:
        return self._trace.workflow

    @property
    def n_tasks(self) -> int | None:
        return len(self._trace)

    def iter_tasks(self) -> Iterator[TaskInstance]:
        return iter(self._trace)

    def iter_traces(self) -> Iterator[WorkflowTrace]:
        yield self._trace

    def trace(self) -> WorkflowTrace:
        return self._trace


def as_source(
    workload: "WorkloadSource | WorkflowTrace | str",
    seed: int = 0,
    scale: float = 1.0,
) -> WorkloadSource:
    """Normalize whatever a caller handed us into a :class:`WorkloadSource`.

    Accepts a ready-made source (returned as-is), a materialized
    :class:`WorkflowTrace` (wrapped in :class:`TraceSource`), or a spec
    string (parsed via :func:`parse_workload`, with ``seed``/``scale``
    applied).  This is the single entry point every consumer uses, so
    traces, sources, and picklable spec strings are interchangeable
    across the whole stack.
    """
    if isinstance(workload, WorkflowTrace):
        return TraceSource(workload)
    if isinstance(workload, str):
        return parse_workload(workload, seed=seed, scale=scale)
    if isinstance(workload, WorkloadSource):
        return workload
    raise TypeError(
        f"workload must be a WorkloadSource, WorkflowTrace, or spec "
        f"string, got {type(workload)!r}"
    )


#: scheme -> factory(argument, seed, scale).
_SCHEMES: dict[str, Callable[[str, int, float], WorkloadSource]] = {}


def register_workload(
    scheme: str, factory: Callable[[str, int, float], WorkloadSource]
) -> None:
    """Make ``factory(arg, seed, scale)`` addressable as ``scheme:arg``."""
    if not scheme or ":" in scheme:
        raise ValueError(f"bad workload scheme {scheme!r}")
    _SCHEMES[scheme] = factory


def workload_schemes() -> tuple[str, ...]:
    """Registered scheme names, in registration order."""
    return tuple(_SCHEMES)


def parse_workload(
    spec: str, seed: int = 0, scale: float = 1.0
) -> WorkloadSource:
    """Parse a workload spec string into a source.

    Specs are ``scheme:argument`` — ``synthetic:iwd``,
    ``wfcommons:traces/blast.json``, ``trace:runs/mag.jsonl``.  A bare
    name with no scheme is shorthand for ``synthetic:<name>`` so the
    CLI's historical ``--workflow iwd`` keeps meaning the same thing.
    ``seed`` and ``scale`` parameterize the source (generation seed and
    subsampling fraction).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"workload spec must be a non-empty string, got {spec!r}")
    scheme, sep, arg = spec.strip().partition(":")
    if not sep:
        scheme, arg = "synthetic", spec.strip()
    if scheme not in _SCHEMES:
        raise ValueError(
            f"unknown workload scheme {scheme!r} in {spec!r}; "
            f"registered: {sorted(_SCHEMES)}"
        )
    if not arg:
        raise ValueError(f"workload spec {spec!r} is missing its argument")
    return _SCHEMES[scheme](arg, seed, scale)
