"""Recorded-trace files as workload sources (repro-trace JSON/JSONL).

:class:`TraceFileSource` reads the versioned ``repro-trace`` schema
(:mod:`repro.workflow.io`): v1 documents, v2 documents carrying
per-instance DAG edges, and the JSONL streaming layout.  For ``.jsonl``
files :meth:`TraceFileSource.iter_tasks` parses one instance per line —
consumers that pull lazily (the replay backend, ingestion benchmarks)
never materialize the whole trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.workflow.io import (
    TraceFormatError,
    iter_trace_jsonl,
    load_trace,
    load_trace_jsonl,
)
from repro.workflow.task import TaskInstance, WorkflowTrace

__all__ = ["TraceFileSource"]


class TraceFileSource:
    """A repro-trace JSON (``.json``) or JSONL (``.jsonl``) file.

    Parameters
    ----------
    path:
        File to read.  ``.jsonl`` selects the streaming layout; anything
        else is parsed as a single JSON document.
    seed:
        Subsampling seed (only consulted when ``scale < 1``).
    scale:
        Subsampling fraction in ``(0, 1]``; applied on the materialized
        trace, so a scaled source is no longer streaming.
    """

    def __init__(
        self, path: str | Path, seed: int = 0, scale: float = 1.0
    ) -> None:
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self.path = Path(path)
        if not self.path.exists():
            raise TraceFormatError(
                f"trace file does not exist: {self.path}", path=str(self.path)
            )
        self.seed = seed
        self.scale = scale
        self._trace: WorkflowTrace | None = None
        self._workflow: str | None = None

    @property
    def streaming(self) -> bool:
        """True when iteration parses lazily (JSONL at full scale)."""
        return self.path.suffix == ".jsonl" and self.scale == 1.0

    @property
    def name(self) -> str:
        return f"trace:{self.path}"

    @property
    def workflow(self) -> str:
        if self._workflow is None:
            if self._trace is not None:
                self._workflow = self._trace.workflow
            elif self.path.suffix == ".jsonl":
                # Header-only read; cached so repeated accesses (the
                # kernel reads it for the trace context and again for
                # the result) don't re-parse the file.
                header, _ = iter_trace_jsonl(self.path)
                self._workflow = header["workflow"]
            else:
                self._workflow = self.trace().workflow
        return self._workflow

    @property
    def n_tasks(self) -> int | None:
        # A streaming file's length is unknown until exhausted; anything
        # materialized (plain JSON, or a scaled source) knows its size.
        if self.streaming and self._trace is None:
            return None
        return len(self.trace())

    def trace(self) -> WorkflowTrace:
        if self._trace is None:
            if self.path.suffix == ".jsonl":
                trace = load_trace_jsonl(self.path)
            else:
                trace = load_trace(self.path)
            if self.scale != 1.0:
                trace = trace.subsample(self.scale, seed=self.seed + 1)
            self._trace = trace
        return self._trace

    def iter_tasks(self) -> Iterator[TaskInstance]:
        if self.streaming and self._trace is None:
            _, instances = iter_trace_jsonl(self.path)
            return instances
        return iter(self.trace())

    def iter_traces(self) -> Iterator[WorkflowTrace]:
        yield self.trace()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_trace"] = None  # workers re-read the file
        return state
