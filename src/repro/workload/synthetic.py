"""Synthetic workload sources: the seeded generator behind a source.

:class:`SyntheticSource` wraps
:func:`repro.workflow.generator.generate_trace` — any programmatic
:class:`~repro.workflow.generator.WorkflowSpec` becomes a workload
source.  :class:`NfCoreSource` narrows it to the six paper workflows
from :mod:`repro.workflow.nfcore` by name.

Both yield *bit-for-bit* the traces the direct helpers yield today:
``NfCoreSource("iwd", seed=3, scale=0.05).trace()`` is the exact same
sequence of instances as ``build_workflow_trace("iwd", seed=3,
scale=0.05)`` — pinned by the golden regression tests, which now run
through the source layer.
"""

from __future__ import annotations

from typing import Iterator

from repro.workflow.generator import WorkflowSpec, generate_trace
from repro.workflow.task import TaskInstance, WorkflowTrace

__all__ = ["SyntheticSource", "NfCoreSource"]


class SyntheticSource:
    """Seeded synthetic generation of one workflow spec.

    Parameters
    ----------
    spec:
        The workflow specification to generate from.
    seed:
        Generator seed; the same (spec, seed, scale) triple always
        produces an identical trace.
    scale:
        Subsampling fraction in ``(0, 1]`` applied after generation
        (seeded with ``seed + 1``, matching
        :func:`~repro.workflow.nfcore.build_workflow_trace`).
    """

    scheme = "synthetic"

    def __init__(
        self, spec: WorkflowSpec, seed: int = 0, scale: float = 1.0
    ) -> None:
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self.spec = spec
        self.seed = seed
        self.scale = scale
        self._trace: WorkflowTrace | None = None

    @property
    def name(self) -> str:
        return f"{self.scheme}:{self.spec.name}"

    @property
    def workflow(self) -> str:
        return self.spec.name

    @property
    def n_tasks(self) -> int | None:
        return len(self.trace())

    def trace(self) -> WorkflowTrace:
        if self._trace is None:
            trace = generate_trace(self.spec, seed=self.seed)
            if self.scale != 1.0:
                trace = trace.subsample(self.scale, seed=self.seed + 1)
            self._trace = trace
        return self._trace

    def iter_tasks(self) -> Iterator[TaskInstance]:
        return iter(self.trace())

    def iter_traces(self) -> Iterator[WorkflowTrace]:
        yield self.trace()

    def __getstate__(self) -> dict:
        # Drop the cached trace so pickled cells (process-pool grids)
        # ship the small spec, not thousands of instances; workers
        # regenerate deterministically from (spec, seed, scale).
        state = self.__dict__.copy()
        state["_trace"] = None
        return state


class NfCoreSource(SyntheticSource):
    """One of the six paper workflows (eager, methylseq, chipseq,
    rnaseq, mag, iwd) by name — the registry target behind
    ``synthetic:<name>`` / ``nfcore:<name>`` specs.  ``name`` reports
    the canonical ``synthetic:`` scheme regardless of which alias the
    spec used, matching how the docs and the CLI label sources."""

    def __init__(self, name: str, seed: int = 0, scale: float = 1.0) -> None:
        from repro.workflow.nfcore import build_workflow_spec

        super().__init__(build_workflow_spec(name), seed=seed, scale=scale)
