"""Command-line interface: ``python -m repro <command>``.

Commands
--------
simulate      replay one workload with one method, print the result
profile       run one workload with the kernel phase profiler, print timings
figures       regenerate paper artifacts (all or a selection)
trace         generate a synthetic workflow trace to JSON/JSONL/CSV/WfCommons
compare       run the full method grid on selected workloads
serve         run the resident sizing server (see repro.serve)
client        talk to a running sizing server (healthz/metrics/predict/observe)
loadgen       replay a workload source against a running sizing server

Every command accepts the global ``--log-level``/``--log-json`` flags
(before or after the command name) to enable structured run logs on
stderr; see :mod:`repro.obs.log`.

Workloads are addressed by spec strings (``--workload``): the six
synthetic paper workflows (``synthetic:iwd``), recorded repro-trace
files including streaming JSONL (``trace:runs/mag.jsonl``), and
WfCommons instance JSON (``wfcommons:traces/blast.json``).
``--workflow iwd`` remains as the historical alias for
``--workload synthetic:iwd``.

Examples::

    python -m repro simulate --workflow rnaseq --method Sizey --scale 0.3
    python -m repro simulate --workload wfcommons:blast.json --backend event
    python -m repro simulate --workload wfcommons:blast.json --backend event \
        --dag trace --workflow-arrival 4@poisson:2 --cluster "128g:4,256g:4"
    python -m repro simulate --workflow iwd --backend event \
        --cluster "128g:4,256g:4" --placement best-fit --arrival poisson:0.5
    python -m repro simulate --workflow iwd --backend event \
        --node-outage 0.05:0.2:0 --cluster "64g:4"
    python -m repro serve --port 8713
    python -m repro client predict --tenant alice --task-type align \
        --input-mb 1024
    python -m repro loadgen --workload synthetic:rnaseq --tenants 2 \
        --rate 200 --max-tasks 256
    python -m repro simulate --workflow iwd --backend event \
        --profile --trace timeline.json
    python -m repro profile --workflow rnaseq --scale 0.3
    python -m repro figures --only fig11 fig12
    python -m repro trace --workflow mag --scale 0.1 --out mag.json --csv mag.csv
    python -m repro trace --workflow iwd --wfcommons iwd_wfcommons.json
    python -m repro compare --workflows chipseq iwd --scale 0.2 --backend event
    python -m repro compare --workloads wfcommons:blast.json synthetic:iwd
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro.cluster.policies import placement_names
from repro.experiments.factories import METHOD_ORDER, method_factories
from repro.experiments.report import render_table
from repro.sim.backends import backend_names
from repro.sim.engine import OnlineSimulator
from repro.sim.runner import run_grid
from repro.workflow.io import export_csv, save_trace
from repro.workflow.nfcore import WORKFLOW_NAMES, build_workflow_trace

__all__ = ["main", "build_parser"]

_ARTIFACTS = (
    "table1",
    "fig1",
    "fig2",
    "fig7",
    "fig8",
    "table2",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ablations",
    "cluster",
    "workflow-sched",
    "wfcommons-replay",
)


def _nonnegative_hours(value: str) -> float:
    hours = float(value)
    if hours < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 hours, got {hours}")
    return hours


def _positive_hours(value: str) -> float:
    hours = float(value)
    if hours <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0 hours, got {hours}")
    return hours


def _cluster_spec(value: str) -> str:
    """Validate a --cluster spec eagerly so bad specs fail at parse time."""
    from repro.cluster.machine import parse_cluster_spec

    try:
        parse_cluster_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _arrival_spec(value: str) -> str:
    """Validate an --arrival spec eagerly so bad specs fail at parse time."""
    from repro.sim.arrivals import parse_arrival

    try:
        parse_arrival(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _node_outage_spec(value: str) -> str:
    """Validate a --node-outage spec eagerly so bad specs fail at parse time."""
    from repro.sim.kernel.outage import parse_node_outage

    try:
        parse_node_outage(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _workflow_arrival_spec(value: str) -> str:
    """Validate a --workflow-arrival spec eagerly (fail at parse time)."""
    from repro.sim.arrivals import parse_workflow_arrival

    try:
        parse_workflow_arrival(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _workload_spec(value: str) -> str:
    """Validate a --workload spec eagerly so bad specs fail at parse time.

    Construction checks the scheme and (for file-backed sources) that
    the file exists; the actual parse/ingestion stays lazy.
    """
    from repro.workload import parse_workload

    try:
        parse_workload(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _add_cluster_options(sub: argparse.ArgumentParser) -> None:
    """Cluster-scenario options shared by ``simulate`` and ``compare``."""
    sub.add_argument("--cluster", type=_cluster_spec, default=None,
                     help="cluster spec as SIZE:COUNT pools, e.g. "
                          "'128g:4,256g:4' (default: the paper's 8x128g)")
    sub.add_argument("--placement", choices=placement_names(),
                     default="first-fit",
                     help="node-placement policy")
    sub.add_argument("--arrival", type=_arrival_spec, default=None,
                     help="arrival model for the event backend: "
                          "'fixed:0.25', 'poisson:0.5', or 'bursty:8x0.5' "
                          "(default: batch submission at t=0)")
    sub.add_argument("--dag", choices=("trace", "linear"), default=None,
                     help="DAG-aware scheduling (event backend only): "
                          "release tasks as dependencies resolve, using "
                          "the trace's generated DAG ('trace') or a "
                          "linear task-type chain ('linear')")
    sub.add_argument("--workflow-arrival", type=_workflow_arrival_spec,
                     default=None, metavar="SPEC",
                     help="inject whole workflow instances (implies "
                          "--dag trace): 'N', 'N@poisson:R', 'N@fixed:H', "
                          "'N@bursty:SxG', optionally '@tenants:K'")
    sub.add_argument("--node-outage", type=_node_outage_spec,
                     action="append", default=None, metavar="SPEC",
                     help="schedule a node drain 'START:DURATION:NODE' "
                          "(hours, hours, node id): placement on the node "
                          "pauses and its running tasks are preempted and "
                          "re-queued; repeatable; works in flat and DAG "
                          "modes (event backend)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sizey reproduction (CLUSTER 2024) command-line tools",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    parser.add_argument("--log-level", default=None, metavar="LEVEL",
                        help="enable structured run logs on stderr at LEVEL "
                             "(debug, info, warning, error)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit logs as JSON lines (implies "
                             "--log-level info unless given)")
    # The same flags are accepted after the subcommand too (a shared
    # parent with SUPPRESS defaults, so a subcommand parse that omits
    # them never clobbers a value parsed at the top level).
    log_parent = argparse.ArgumentParser(add_help=False)
    log_parent.add_argument("--log-level", default=argparse.SUPPRESS,
                            metavar="LEVEL", help=argparse.SUPPRESS)
    log_parent.add_argument("--log-json", action="store_true",
                            default=argparse.SUPPRESS,
                            help=argparse.SUPPRESS)
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", parents=[log_parent],
                         help="replay one workload with one method")
    # Not required=True: --resume carries the workload inside the
    # checkpoint; _validate_args enforces the choice for fresh runs.
    which = sim.add_mutually_exclusive_group(required=False)
    which.add_argument("--workflow", choices=WORKFLOW_NAMES,
                       help="synthetic paper workflow (alias for "
                            "--workload synthetic:NAME)")
    which.add_argument("--workload", type=_workload_spec, metavar="SPEC",
                       help="workload source spec: 'synthetic:iwd', "
                            "'wfcommons:path.json', or 'trace:path.json[l]'")
    sim.add_argument("--method", choices=METHOD_ORDER, default="Sizey")
    sim.add_argument("--scale", type=float, default=1.0)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--ttf", type=float, default=1.0,
                     help="time-to-failure fraction (paper parameter)")
    sim.add_argument("--backend", choices=backend_names(), default="replay",
                     help="simulation backend (replay = paper-faithful "
                          "serial loop; event = concurrent discrete-event "
                          "engine with cluster metrics)")
    sim.add_argument("--arrival-interval", type=_nonnegative_hours, default=0.0,
                     help="hours between submissions (event backend only; "
                          "0 = submit the whole trace at once; shorthand "
                          "for --arrival fixed:H)")
    _add_cluster_options(sim)
    scale_grp = sim.add_argument_group(
        "scale-out (event backend only)",
        "streaming collectors, kernel checkpoint/resume, sharded fan-out",
    )
    scale_grp.add_argument("--stream-collectors", action="store_true",
                           help="bounded-memory online aggregates instead "
                                "of per-task logs; prints/exports the run "
                                "summary (quantile sketches, totals)")
    scale_grp.add_argument("--spill", metavar="PATH", default=None,
                           help="append per-task prediction logs to this "
                                "JSONL file in completion order")
    scale_grp.add_argument("--shards", type=int, default=1, metavar="N",
                           help="partition the workload and cluster across "
                                "N worker processes and merge their "
                                "summaries (implies --stream-collectors)")
    scale_grp.add_argument("--shard-workers", type=int, default=None,
                           metavar="N",
                           help="process-pool size for --shards (default: "
                                "min(shards, cpu count); 1 = sequential)")
    scale_grp.add_argument("--checkpoint", metavar="PATH", default=None,
                           help="write the paused kernel state here "
                                "(with --checkpoint-every / --stop-after)")
    scale_grp.add_argument("--checkpoint-every", type=_positive_hours,
                           default=None, metavar="HOURS",
                           help="overwrite --checkpoint at least every "
                                "HOURS of simulation time")
    scale_grp.add_argument("--stop-after", type=_positive_hours,
                           default=None, metavar="HOURS",
                           help="stop once the simulation clock passes "
                                "HOURS, leaving --checkpoint resumable")
    scale_grp.add_argument("--resume", metavar="PATH", default=None,
                           help="continue a checkpointed run (bit-for-bit "
                                "equal to the uninterrupted run); replaces "
                                "the workload/method/cluster options")
    scale_grp.add_argument("--summary-json", metavar="PATH", default=None,
                           help="write the run summary as JSON ('-' for "
                                "stdout)")
    obs_grp = sim.add_argument_group(
        "observability (event backend only)",
        "kernel phase profiler and Chrome trace_event export",
    )
    obs_grp.add_argument("--profile", action="store_true",
                         help="time the kernel phases and print the "
                              "per-phase table after the run summary")
    obs_grp.add_argument("--trace", metavar="PATH", default=None,
                         help="write a Chrome trace_event JSON timeline "
                              "of the run here (load in Perfetto or "
                              "chrome://tracing)")
    obs_grp.add_argument("--trace-limit", type=int, default=None, metavar="N",
                         help="keep only the last N trace events "
                              "(bounded ring buffer)")

    prof = sub.add_parser(
        "profile",
        parents=[log_parent],
        help="run one workload with the kernel phase profiler",
        description="Replay one workload on the event backend with the "
                    "phase profiler enabled, then print the per-phase "
                    "wall-time table (calls, seconds, %% of total) and "
                    "the events/sec throughput.",
    )
    which_prof = prof.add_mutually_exclusive_group(required=True)
    which_prof.add_argument("--workflow", choices=WORKFLOW_NAMES,
                            help="synthetic paper workflow (alias for "
                                 "--workload synthetic:NAME)")
    which_prof.add_argument("--workload", type=_workload_spec, metavar="SPEC",
                            help="workload source spec (see simulate "
                                 "--workload)")
    prof.add_argument("--method", choices=METHOD_ORDER, default="Sizey")
    prof.add_argument("--scale", type=float, default=1.0)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--ttf", type=float, default=1.0,
                      help="time-to-failure fraction (paper parameter)")
    prof.add_argument("--trace", metavar="PATH", default=None,
                      help="also write a Chrome trace_event JSON timeline")
    prof.add_argument("--trace-limit", type=int, default=None, metavar="N",
                      help="keep only the last N trace events")
    prof.add_argument("--repeat", type=int, default=1, metavar="N",
                      help="profile the workload N times and merge the "
                           "runs (phase shares average out scheduler "
                           "noise; events/sec reports the best run)")
    prof.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                      help="write the profile as JSON ('-' for stdout)")
    _add_cluster_options(prof)
    # The profiler lives in the kernel, so this command is always
    # event-backend; the defaults make _validate_args and the backend
    # resolver treat it exactly like `simulate --backend event`.
    prof.set_defaults(backend="event", arrival_interval=0.0)

    fig = sub.add_parser("figures", parents=[log_parent],
                         help="regenerate paper artifacts")
    fig.add_argument("--only", nargs="*", choices=_ARTIFACTS, default=None)
    fig.add_argument("--scale", type=float, default=0.15)
    fig.add_argument("--seed", type=int, default=0)

    tr = sub.add_parser("trace", parents=[log_parent],
                        help="generate a synthetic trace")
    tr.add_argument("--workflow", choices=WORKFLOW_NAMES, required=True)
    tr.add_argument("--scale", type=float, default=1.0)
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--out", help="write JSON trace here")
    tr.add_argument("--jsonl", help="write streaming JSONL trace here")
    tr.add_argument("--csv", help="write CSV table here")
    tr.add_argument("--wfcommons",
                    help="write a WfCommons instance document here")

    cmp_ = sub.add_parser("compare", parents=[log_parent],
                          help="run the method grid")
    which_cmp = cmp_.add_mutually_exclusive_group()
    which_cmp.add_argument("--workflows", nargs="+", choices=WORKFLOW_NAMES,
                           default=None)
    which_cmp.add_argument("--workloads", nargs="+", type=_workload_spec,
                           default=None, metavar="SPEC",
                           help="workload source specs (see simulate "
                                "--workload)")
    cmp_.add_argument("--scale", type=float, default=0.2)
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.add_argument("--ttf", type=float, default=1.0)
    cmp_.add_argument("--workers", type=int, default=1)
    cmp_.add_argument("--backend", choices=backend_names(), default="replay",
                      help="simulation backend used for every grid cell")
    cmp_.add_argument("--arrival-interval", type=_nonnegative_hours,
                      default=0.0,
                      help="hours between submissions (event backend only; "
                           "shorthand for --arrival fixed:H)")
    _add_cluster_options(cmp_)

    _add_serve_parsers(sub, log_parent)
    return parser


def _add_serve_parsers(sub, log_parent) -> None:
    """The ``serve`` / ``client`` / ``loadgen`` command trio."""
    from repro.serve.server import DEFAULT_PORT

    def _endpoint(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=DEFAULT_PORT)

    srv = sub.add_parser("serve", parents=[log_parent],
                         help="run the resident sizing server")
    _endpoint(srv)
    srv.add_argument("--seed", type=int, default=0,
                     help="base seed mixed into every tenant's model seed")
    srv.add_argument("--max-tenants", type=int, default=64,
                     help="LRU capacity of the tenant registry")

    cli = sub.add_parser("client", parents=[log_parent],
                         help="talk to a running sizing server")
    actions = cli.add_subparsers(dest="action", required=True)

    hz = actions.add_parser("healthz", help="liveness probe")
    _endpoint(hz)
    mt = actions.add_parser("metrics", help="dump the /metrics payload")
    _endpoint(mt)
    mt.add_argument("--format", choices=("json", "prometheus"),
                    default="json",
                    help="payload format: JSON (default) or the "
                         "Prometheus text exposition")

    pr = actions.add_parser("predict", help="size one task")
    _endpoint(pr)
    pr.add_argument("--tenant", default="default")
    pr.add_argument("--task-type", required=True)
    pr.add_argument("--input-mb", type=float, required=True)
    pr.add_argument("--machine", default="default")
    pr.add_argument("--task-workflow", default="serve", metavar="NAME")
    pr.add_argument("--preset-mb", type=float, default=4096.0)
    pr.add_argument("--instance-id", type=int, default=-1)

    ob = actions.add_parser("observe", help="report one measured peak")
    _endpoint(ob)
    ob.add_argument("--tenant", default="default")
    ob.add_argument("--task-type", required=True)
    ob.add_argument("--input-mb", type=float, required=True)
    ob.add_argument("--peak-mb", type=float, required=True)
    ob.add_argument("--machine", default="default")
    ob.add_argument("--task-workflow", default="serve", metavar="NAME")
    ob.add_argument("--runtime-h", type=float, default=0.0)
    ob.add_argument("--allocated-mb", type=float, default=0.0)
    ob.add_argument("--instance-id", type=int, default=-1)

    lg = sub.add_parser(
        "loadgen", parents=[log_parent],
        help="replay a workload against a running server"
    )
    _endpoint(lg)
    lg.add_argument("--workload", type=_workload_spec, required=True,
                    metavar="SPEC",
                    help="workload source spec (see simulate --workload)")
    lg.add_argument("--tenants", type=int, default=2)
    lg.add_argument("--rate", type=float, default=200.0,
                    help="predict-request arrival rate (requests/sec)")
    lg.add_argument("--batch", type=int, default=8,
                    help="tasks per /predict request")
    lg.add_argument("--max-tasks", type=int, default=256,
                    help="stop after this many tasks (0 = whole workload)")
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--no-observe", action="store_true",
                    help="skip the /observe feedback after each batch")
    lg.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                    help="also write the report as JSON here")


def _validate_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Reject option combinations that would be silently ignored."""
    has_arrival = getattr(args, "arrival", None) is not None
    has_interval = getattr(args, "arrival_interval", 0.0) > 0.0
    if has_arrival and has_interval:
        parser.error("--arrival and --arrival-interval are mutually "
                     "exclusive (use --arrival fixed:H)")
    if (has_arrival or has_interval) and args.backend != "event":
        parser.error("--arrival/--arrival-interval only shape the event "
                     "backend; add --backend event")
    has_dag = getattr(args, "dag", None) is not None
    has_wf_arrival = getattr(args, "workflow_arrival", None) is not None
    if (has_dag or has_wf_arrival) and args.backend != "event":
        parser.error("--dag/--workflow-arrival only shape the event "
                     "backend; add --backend event")
    node_outages = getattr(args, "node_outage", None)
    if node_outages:
        if args.backend != "event":
            parser.error("--node-outage only shapes the event backend; "
                         "add --backend event")
        # Check node ids against the cluster now, so a typo fails with a
        # clean message like every other bad CLI combination.
        from repro.cluster.machine import parse_cluster_spec
        from repro.sim.kernel.outage import parse_node_outage

        if args.cluster is not None:
            n_nodes = sum(c for _, c in parse_cluster_spec(args.cluster))
        else:
            n_nodes = 8  # the paper's default cluster
        for spec in node_outages:
            node_id = parse_node_outage(spec).node_id
            if node_id >= n_nodes:
                parser.error(
                    f"--node-outage {spec} names node {node_id}, but the "
                    f"cluster has nodes 0..{n_nodes - 1}")
    if (has_dag or has_wf_arrival) and (has_arrival or has_interval):
        parser.error("DAG-aware scheduling replaces per-task arrivals; "
                     "drop --arrival/--arrival-interval")
    if args.command == "simulate":
        _validate_scale_args(parser, args, node_outages)
    if args.command == "profile":
        _validate_trace_limit(parser, args)


def _validate_trace_limit(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    if args.trace_limit is not None:
        if args.trace is None:
            parser.error("--trace-limit needs --trace")
        if args.trace_limit <= 0:
            parser.error(f"--trace-limit must be >= 1, got {args.trace_limit}")


def _validate_scale_args(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    node_outages,
) -> None:
    """Scale-out flag combinations for ``simulate``."""
    resume = args.resume is not None
    if not resume and args.workflow is None and args.workload is None:
        parser.error("one of --workflow or --workload is required "
                     "(or --resume to continue a checkpointed run)")
    if resume and (args.workflow is not None or args.workload is not None):
        parser.error("--resume restores the workload from the checkpoint; "
                     "drop --workflow/--workload")
    scale_flags = (
        args.stream_collectors
        or args.spill is not None
        or args.shards != 1
        or args.checkpoint is not None
        or args.checkpoint_every is not None
        or args.stop_after is not None
    )
    if scale_flags and not resume and args.backend != "event":
        parser.error("--stream-collectors/--spill/--shards/--checkpoint "
                     "options only shape the event backend; add "
                     "--backend event")
    obs_flags = args.profile or args.trace is not None
    if obs_flags and not resume and args.backend != "event":
        parser.error("--profile/--trace instrument the kernel; add "
                     "--backend event")
    if obs_flags and resume:
        parser.error("--profile/--trace cannot be combined with --resume "
                     "(the checkpoint pins the kernel's collectors)")
    if args.trace is not None and args.shards > 1:
        parser.error("--trace cannot be combined with --shards (each "
                     "shard would overwrite the same trace file)")
    _validate_trace_limit(parser, args)
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.shards > 1:
        if args.checkpoint or args.checkpoint_every or args.stop_after or resume:
            parser.error("--shards cannot be combined with checkpoint/"
                         "resume options (checkpoint single-shard runs)")
        if node_outages:
            parser.error("--shards cannot be combined with --node-outage "
                         "(node ids are renumbered per shard)")
    if (args.checkpoint_every is not None or args.stop_after is not None) \
            and args.checkpoint is None and not resume:
        parser.error("--checkpoint-every/--stop-after need --checkpoint "
                     "(or --resume) to keep the paused state")


def _resolve_cli_workload(args: argparse.Namespace):
    """The simulate command's workload source (--workload or --workflow)."""
    from repro.workload import parse_workload

    spec = args.workload or f"synthetic:{args.workflow}"
    return parse_workload(spec, seed=args.seed, scale=args.scale)


def _resolve_cli_backend(args: argparse.Namespace):
    """Backend name, or a configured instance when options require one."""
    dag = getattr(args, "dag", None)
    workflow_arrival = getattr(args, "workflow_arrival", None)
    node_outage = getattr(args, "node_outage", None)
    if args.backend == "event" and (
        args.arrival is not None
        or args.arrival_interval > 0.0
        or dag is not None
        or workflow_arrival is not None
        or node_outage
    ):
        from repro.sim.backends import EventDrivenBackend

        if dag is not None or workflow_arrival is not None:
            return EventDrivenBackend(
                dag=dag,
                workflow_arrival=workflow_arrival,
                seed=args.seed,
                node_outage=node_outage,
            )
        if args.arrival is not None:
            return EventDrivenBackend(
                arrival=args.arrival, seed=args.seed, node_outage=node_outage
            )
        return EventDrivenBackend(
            arrival_interval_hours=args.arrival_interval,
            seed=args.seed,
            node_outage=node_outage,
        )
    return args.backend


def _render_profile_table(profile) -> str:
    """The per-phase timing table shared by ``profile`` and ``--profile``."""
    d = profile.to_dict()
    rows = [
        [
            row["phase"],
            row["calls"],
            f"{row['seconds'] * 1e3:.3f}",
            f"{row['share'] * 100:.1f}%",
        ]
        for row in profile.render_rows()
    ]
    rows.append(
        ["(all phases)", d["n_events"], f"{d['phase_seconds'] * 1e3:.3f}", ""]
    )
    runs = f" across {d['n_runs']} runs" if d["n_runs"] > 1 else ""
    title = (
        f"kernel phases{runs}: {d['n_events']} events in "
        f"{d['wall_seconds']:.3f}s wall ({d['events_per_sec']:,.0f} events/sec)"
    )
    return render_table(
        ["phase", "calls", "ms", "% of wall"], rows, title=title
    )


def _write_summary_json(res, path: str) -> None:
    import json

    from repro.sim.results import summary_to_dict

    payload = json.dumps(summary_to_dict(res.summary), indent=1,
                         sort_keys=True)
    if path == "-":
        print(payload)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.resume is not None:
        res = OnlineSimulator.resume(
            args.resume,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            stop_after=args.stop_after,
        )
        if res is None:
            ck = args.checkpoint or args.resume
            print(f"paused at --stop-after; state checkpointed to {ck}")
            return 0
        workload_name = res.workflow
        args.backend = "event"  # checkpoints only come from kernel runs
    elif args.shards > 1:
        from repro.sim.runner import run_sharded

        source = _resolve_cli_workload(args)
        res = run_sharded(
            source,
            method_factories()[args.method],
            shards=args.shards,
            time_to_failure=args.ttf,
            backend=_resolve_cli_backend(args),
            cluster=args.cluster,
            placement=args.placement,
            dag=args.dag,
            workflow_arrival=args.workflow_arrival,
            n_workers=args.shard_workers,
            profile=args.profile,
        )
        workload_name = source.name
    else:
        source = _resolve_cli_workload(args)
        predictor = method_factories()[args.method]()
        res = OnlineSimulator(
            source,
            time_to_failure=args.ttf,
            backend=_resolve_cli_backend(args),
            cluster=args.cluster,
            placement=args.placement,
            stream_collectors=args.stream_collectors,
            spill=args.spill,
            profile=args.profile,
            trace_path=args.trace,
            trace_limit=args.trace_limit,
        ).run(
            predictor,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            stop_after=args.stop_after,
        )
        if res is None:
            print(f"paused at --stop-after; state checkpointed to "
                  f"{args.checkpoint}")
            return 0
        workload_name = source.name
    if args.summary_json is not None:
        if res.summary is None:
            raise SystemExit(
                "--summary-json needs a kernel run (event backend)"
            )
        _write_summary_json(res, args.summary_json)
        if args.summary_json == "-":
            return 0
    rows = [
        ["workload", workload_name],
        ["workflow", res.workflow],
        ["method", res.method],
        ["backend", args.backend],
        ["tasks", res.num_tasks],
        ["wastage GBh", res.total_wastage_gbh],
        ["failures", res.num_failures],
        ["runtime h", res.total_runtime_hours],
        ["mean over-allocation ratio", res.over_allocation_ratio()],
    ]
    if args.shards > 1:
        rows.insert(4, ["shards", args.shards])
    if res.cluster is not None:
        rows += [
            ["makespan h", res.cluster.makespan_hours],
            ["mean queue wait h", res.cluster.mean_queue_wait_hours],
            ["max queue wait h", res.cluster.max_queue_wait_hours],
            ["mean node utilization", res.cluster.mean_utilization],
        ]
        for node_id, util in sorted(res.cluster.node_utilization.items()):
            cap = res.cluster.node_capacity_gb.get(node_id)
            label = f"node {node_id} utilization"
            if cap is not None:
                label += f" ({cap:.0f}G)"
            rows.append([label, util])
    if res.workflows is not None:
        wm = res.workflows
        rows += [
            ["workflow instances", wm.n_instances],
            ["mean workflow makespan h", wm.mean_makespan_hours],
            ["max workflow makespan h", wm.max_makespan_hours],
            ["mean stretch", wm.mean_stretch],
            ["max stretch", wm.max_stretch],
        ]
    summary = res.summary
    if summary is not None and res.cluster is None and summary.n_nodes:
        # Streaming/sharded runs: the raw metrics objects were dropped,
        # but the online summary still carries the cluster view.
        rows += [
            ["nodes", summary.n_nodes],
            ["makespan h", summary.makespan_hours],
            ["mean queue wait h", summary.queue_wait.mean],
            ["p99 queue wait h", summary.queue_wait_sketch.quantile(0.99)],
            ["mean node utilization", summary.mean_utilization],
        ]
    if (
        summary is not None
        and res.workflows is None
        and summary.n_workflow_instances
    ):
        rows += [
            ["workflow instances", summary.n_workflow_instances],
            ["mean workflow makespan h", summary.workflow_makespan.mean],
            ["mean stretch", summary.workflow_stretch.mean],
        ]
    print(render_table(["metric", "value"], rows))
    if res.workflows is not None:
        print()
        print(
            render_table(
                ["workflow", "tenant", "submit h", "makespan h",
                 "crit path h", "stretch", "wait h", "wastage GBh",
                 "failures"],
                [
                    [w.key, w.tenant, w.submit_time_hours, w.makespan_hours,
                     w.critical_path_hours, w.stretch, w.queue_wait_hours,
                     w.wastage_gbh, w.n_failures]
                    for w in res.workflows.instances
                ],
                title="per-workflow-instance metrics",
            )
        )
    if args.profile and res.profile is not None:
        print()
        print(_render_profile_table(res.profile))
    if args.trace is not None:
        print(f"wrote Chrome trace to {args.trace}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    repeat = max(1, args.repeat)
    profile = None
    best_eps = 0.0
    for _ in range(repeat):
        # Fresh source + predictor per run: identical replay, no state
        # carried over, so merged phase shares are honest averages.
        source = _resolve_cli_workload(args)
        predictor = method_factories()[args.method]()
        res = OnlineSimulator(
            source,
            time_to_failure=args.ttf,
            backend=_resolve_cli_backend(args),
            cluster=args.cluster,
            placement=args.placement,
            profile=True,
            trace_path=args.trace,
            trace_limit=args.trace_limit,
        ).run(predictor)
        if profile is None:
            profile = res.profile
        else:
            profile.merge(res.profile)
        best_eps = max(best_eps, res.profile.events_per_sec)
    if args.json_out is not None:
        import json

        payload = json.dumps(profile.to_dict(), indent=1, sort_keys=True)
        if args.json_out == "-":
            print(payload)
        else:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
    if args.json_out != "-":
        print(
            f"{source.name} x {res.method}: {res.num_tasks} tasks, "
            f"{res.num_failures} failures"
        )
        print(_render_profile_table(profile))
        if repeat > 1:
            print(
                f"best of {repeat} runs: {best_eps:,.0f} events/sec "
                "(merged table averages out per-run scheduler noise)"
            )
        if args.trace is not None:
            print(f"wrote Chrome trace to {args.trace}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ablations,
        cluster_scenarios,
        wfcommons_replay,
        workflow_scheduling,
        fig1_distributions,
        fig2_input_relation,
        fig7_utilization,
        fig8_main_results,
        fig9_training_time,
        fig10_alpha_sweep,
        fig11_model_selection,
        fig12_error_trend,
        table1_workflow_stats,
        table2_per_workflow,
    )

    wanted = set(args.only or _ARTIFACTS)
    s, seed = args.scale, args.seed
    if "table1" in wanted:
        table1_workflow_stats.run(seed=seed)
    if "fig1" in wanted:
        fig1_distributions.run(seed=seed)
    if "fig2" in wanted:
        fig2_input_relation.run(seed=seed)
    if "fig7" in wanted:
        fig7_utilization.run(seed=seed)
    grid = None
    if "fig8" in wanted:
        grids = fig8_main_results.run(seed=seed, scale=s)
        grid = grids[1.0]
    if "table2" in wanted:
        table2_per_workflow.run(seed=seed, scale=s, grid=grid)
    if "fig9" in wanted:
        fig9_training_time.run(seed=seed, scale=s)
    if "fig10" in wanted:
        fig10_alpha_sweep.run(seed=seed, scale=max(s, 0.2))
    if "fig11" in wanted:
        fig11_model_selection.run(seed=seed, scale=max(s, 0.3))
    if "fig12" in wanted:
        fig12_error_trend.run(seed=seed, scale=max(s, 0.3))
    if "ablations" in wanted:
        ablations.run(seed=seed, scale=max(s, 0.2))
    if "cluster" in wanted:
        cluster_scenarios.run(seed=seed, scale=min(s, 0.1))
    if "workflow-sched" in wanted:
        workflow_scheduling.run(seed=seed, scale=min(s, 0.05))
    if "wfcommons-replay" in wanted:
        wfcommons_replay.run(seed=seed, scale=min(s, 0.1))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = build_workflow_trace(args.workflow, seed=args.seed, scale=args.scale)
    stats = trace.stats()
    print(
        f"{trace.workflow}: {stats['n_instances']:.0f} instances, "
        f"{stats['n_task_types']:.0f} task types"
    )
    if args.out:
        save_trace(trace, args.out)
        print(f"wrote JSON trace to {args.out}")
    if args.jsonl:
        from repro.workflow.io import save_trace_jsonl

        save_trace_jsonl(trace, args.jsonl)
        print(f"wrote JSONL trace to {args.jsonl}")
    if args.csv:
        export_csv(trace, args.csv)
        print(f"wrote CSV table to {args.csv}")
    if args.wfcommons:
        import json as _json

        from repro.workload import trace_to_wfcommons

        with open(args.wfcommons, "w") as fh:
            _json.dump(trace_to_wfcommons(trace), fh)
        print(f"wrote WfCommons instance to {args.wfcommons}")
    if not (args.out or args.jsonl or args.csv or args.wfcommons):
        print("(use --out/--jsonl/--csv/--wfcommons to persist the trace)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.workloads is not None:
        from repro.workload import parse_workload

        workloads = {
            spec: parse_workload(spec, seed=args.seed, scale=args.scale)
            for spec in args.workloads
        }
        names = list(workloads)
    else:
        wanted = args.workflows or list(WORKFLOW_NAMES)
        workloads = {
            wf: build_workflow_trace(wf, seed=args.seed, scale=args.scale)
            for wf in wanted
        }
        names = list(workloads)
    results = run_grid(
        workloads,
        method_factories(),
        time_to_failure=args.ttf,
        n_workers=args.workers,
        backend=_resolve_cli_backend(args),
        cluster=args.cluster,
        placement=args.placement,
    )
    with_cluster = args.backend == "event"
    with_workflows = args.dag is not None or args.workflow_arrival is not None
    header = ["method", "wastage GBh", "failures", "runtime h"]
    if with_cluster:
        # Each workflow simulates on its own fresh cluster, so the only
        # honest aggregates are the back-to-back wall-clock (sum of
        # makespans) and the task-weighted mean queue wait.
        header += ["makespan h", "mean wait h"]
    if with_workflows:
        header += ["mean wf makespan h", "mean stretch"]
    rows = []
    for method in METHOD_ORDER:
        per_wf = results[method]
        row = [
            method,
            sum(r.total_wastage_gbh for r in per_wf.values()),
            sum(r.num_failures for r in per_wf.values()),
            sum(r.total_runtime_hours for r in per_wf.values()),
        ]
        if with_cluster:
            clustered = [
                r for r in per_wf.values() if r.cluster is not None
            ]
            n_tasks = sum(r.num_tasks for r in clustered)
            row += [
                sum(r.cluster.makespan_hours for r in clustered),
                (
                    sum(r.cluster.total_queue_wait_hours for r in clustered)
                    / n_tasks
                    if n_tasks
                    else 0.0
                ),
            ]
        if with_workflows:
            instances = [
                w
                for r in per_wf.values()
                if r.workflows is not None
                for w in r.workflows.instances
            ]
            n = len(instances)
            row += [
                sum(w.makespan_hours for w in instances) / n if n else 0.0,
                sum(w.stretch for w in instances) / n if n else 0.0,
            ]
        rows.append(row)
    print(
        render_table(
            header,
            rows,
            title=f"workloads: {', '.join(names)} "
            f"(scale={args.scale}, ttf={args.ttf}, backend={args.backend})",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve.server import SizingServer

    server = SizingServer(
        args.host,
        args.port,
        base_seed=args.seed,
        max_tenants=args.max_tenants,
    )

    async def _main() -> None:
        await server.start()
        print(f"sizing server listening on {server.url}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(server.stop())
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - fallback path
        pass
    print("sizing server stopped")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.client import SizingClient

    with SizingClient(args.host, args.port) as client:
        if args.action == "healthz":
            payload = client.healthz()
        elif args.action == "metrics":
            if args.format == "prometheus":
                print(client.metrics(format="prometheus"), end="")
                return 0
            payload = client.metrics()
        elif args.action == "predict":
            payload = client.predict(
                args.tenant,
                [
                    {
                        "task_type": args.task_type,
                        "workflow": args.task_workflow,
                        "machine": args.machine,
                        "input_size_mb": args.input_mb,
                        "preset_memory_mb": args.preset_mb,
                        "instance_id": args.instance_id,
                    }
                ],
            )
        else:
            payload = client.observe(
                args.tenant,
                [
                    {
                        "task_type": args.task_type,
                        "workflow": args.task_workflow,
                        "machine": args.machine,
                        "input_size_mb": args.input_mb,
                        "peak_memory_mb": args.peak_mb,
                        "runtime_hours": args.runtime_h,
                        "allocated_mb": args.allocated_mb,
                        "instance_id": args.instance_id,
                    }
                ],
            )
    print(_json.dumps(payload, indent=2))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.loadgen import run_loadgen

    report = run_loadgen(
        args.workload,
        host=args.host,
        port=args.port,
        tenants=args.tenants,
        rate_rps=args.rate,
        batch=args.batch,
        max_tasks=args.max_tasks or None,
        observe=not args.no_observe,
        seed=args.seed,
    )
    rows = [
        [key, value]
        for key, value in report.as_dict().items()
        if not isinstance(value, dict)  # histograms go to --json only
    ]
    print(render_table(["metric", "value"], rows, title="loadgen report"))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            _json.dump(report.as_dict(), fh, indent=2)
        print(f"wrote JSON report to {args.json_out}")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "profile": _cmd_profile,
    "figures": _cmd_figures,
    "trace": _cmd_trace,
    "compare": _cmd_compare,
    "serve": _cmd_serve,
    "client": _cmd_client,
    "loadgen": _cmd_loadgen,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None or args.log_json:
        from repro.obs.log import configure_logging

        try:
            configure_logging(
                level=args.log_level or "info", json_mode=args.log_json
            )
        except ValueError as exc:
            parser.error(str(exc))
    if hasattr(args, "backend"):
        _validate_args(parser, args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
