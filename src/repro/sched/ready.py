"""The ready-set scheduler: dependency-gated FCFS release across tenants.

A real SWMS keeps a *ready set* — tasks whose DAG predecessors have all
succeeded — and dispatches from it as cluster resources free up.
:class:`ReadySetScheduler` is that component for the DAG-aware event
engine: it admits whole :class:`~repro.sched.instance.WorkflowInstance`\\ s
(possibly from many tenants), releases a task only when every
predecessor type's instances have succeeded, and orders the global ready
queue FCFS by release time.  A killed-and-requeued task re-enters at its
*original* priority (mirroring the flat event backend's requeue rule)
and — because its type stays unsatisfied — continues to hold all of its
DAG successors back until the retry lands.

The scheduler is generic over the engine's per-task state objects: it
never inspects them beyond identity, so the engine keeps ownership of
allocation/attempt bookkeeping.
"""

from __future__ import annotations

import heapq
from typing import Generic, Hashable, TypeVar

from repro.sched.instance import WorkflowInstance
from repro.workflow.task import TaskInstance

__all__ = ["ReadySetScheduler"]

S = TypeVar("S")


class ReadySetScheduler(Generic[S]):
    """Dependency-driven release + FCFS ready queue over many workflows.

    The engine registers each workflow instance's per-task states via
    :meth:`admit`, then drives the queue through :meth:`pop` /
    :meth:`head` during scheduling passes and reports outcomes through
    :meth:`on_success` / :meth:`requeue`.
    """

    def __init__(self) -> None:
        #: (priority, tie, state) heap; priority is the release sequence.
        self._ready: list[tuple[int, int, S]] = []
        #: Index heap over *fresh* releases (same (priority, tie) keys):
        #: every state enters the queue exactly once through
        #: :meth:`_push_all`, so :meth:`take_unsized` can drain sizing
        #: waves from here without scanning the whole ready set.
        self._unsized: list[tuple[int, int, S]] = []
        self._priority: dict[Hashable, int] = {}
        self._states: dict[tuple[str, int], S] = {}
        self._seq = 0
        self._tie = 0

    # ------------------------------------------------------------------
    def admit(
        self, wi: WorkflowInstance, states: dict[int, S]
    ) -> list[S]:
        """Register a workflow instance's task states and release roots.

        ``states`` maps each task's ``instance_id`` to the engine's state
        object.  Returns the states made ready immediately (root types),
        which are also pushed onto the queue.
        """
        missing = {t.instance_id for t in wi.tasks} - set(states)
        if missing:
            raise ValueError(
                f"admit of {wi.key!r} is missing states for instance ids "
                f"{sorted(missing)}"
            )
        for instance_id, state in states.items():
            self._states[(wi.key, instance_id)] = state
        return self._push_all(wi, wi.release_roots())

    def on_success(self, wi: WorkflowInstance, task: TaskInstance) -> list[S]:
        """Record a success; returns (and enqueues) newly released states."""
        return self._push_all(wi, wi.complete(task.task_type.name))

    def requeue(self, wi: WorkflowInstance, task: TaskInstance) -> S:
        """Re-enqueue a killed task at its original release priority."""
        state = self._states[(wi.key, task.instance_id)]
        priority = self._priority[(wi.key, task.instance_id)]
        heapq.heappush(self._ready, (priority, self._next_tie(), state))
        return state

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ready)

    def __bool__(self) -> bool:
        return bool(self._ready)

    def head(self) -> S:
        """The state that must dispatch next (strict FCFS)."""
        return self._ready[0][2]

    def pop(self) -> S:
        return heapq.heappop(self._ready)[2]

    def queued(self) -> list[S]:
        """All queued states, FCFS order (non-destructive)."""
        return [s for _, _, s in sorted(self._ready)]

    def queued_matching(self, predicate, limit: int) -> list[S]:
        """The first ``limit`` queued states (FCFS) passing ``predicate``.

        ``nsmallest`` over the filtered heap entries is O(n log limit)
        versus ``queued()``'s full O(n log n) sort — the sizing wave asks
        for a small fixed chunk out of a ready set that can hold every
        queued task on a saturated cluster.
        """
        return [
            s
            for _, _, s in heapq.nsmallest(
                limit, (e for e in self._ready if predicate(e[2]))
            )
        ]

    def take_unsized(self, predicate, limit: int) -> list[S]:
        """Pop up to ``limit`` index entries (FCFS) passing ``predicate``.

        Amortized replacement for :meth:`queued_matching` on the sizing
        hot path: entries are *consumed* from the fresh-release index —
        skipped entries (predicate false) are discarded too, so the
        caller's predicate must be permanently false once false (true
        for "still unsized": the kernel sizes every returned state
        immediately and a sized state never loses its allocation).
        Fresh releases are pushed with the same (priority, tie) keys as
        the ready heap, so the wave order matches
        ``queued_matching(predicate, limit)`` exactly.
        """
        wave: list[S] = []
        index = self._unsized
        while index and len(wave) < limit:
            state = heapq.heappop(index)[2]
            if predicate(state):
                wave.append(state)
        return wave

    # ------------------------------------------------------------------
    def _push_all(
        self, wi: WorkflowInstance, released: list[TaskInstance]
    ) -> list[S]:
        out: list[S] = []
        for task in released:
            key = (wi.key, task.instance_id)
            state = self._states[key]
            self._priority[key] = self._seq
            entry = (self._seq, self._next_tie(), state)
            heapq.heappush(self._ready, entry)
            heapq.heappush(self._unsized, entry)
            self._seq += 1
            out.append(state)
        return out

    def _next_tie(self) -> int:
        self._tie += 1
        return self._tie
