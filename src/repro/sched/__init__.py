"""DAG-aware workflow scheduling: from task simulator to SWMS simulator.

The paper's framing (§I) is a scientific workflow management system that
walks a DAG and "releases ready tasks"; related work (Ponder, Lehmann et
al. 2024) embeds online memory prediction inside exactly such an engine.
This package is that engine for the reproduction — whole workflows,
dependency-driven, multi-tenant:

- :mod:`repro.sched.instance` — :class:`WorkflowInstance`: one submitted
  execution of a workflow (DAG + task instances + live dependency
  state + per-instance accounting).
- :mod:`repro.sched.ready` — :class:`ReadySetScheduler`: releases a task
  only when all DAG predecessor types' instances have succeeded;
  killed-and-requeued tasks hold their successors back; global FCFS
  queue across all tenants' instances.
- :class:`~repro.sim.arrivals.WorkflowArrivals` (canonically defined in
  :mod:`repro.sim.arrivals`, re-exported here) — injects whole
  workflow instances (fixed / Poisson / bursty, seeded) owned by
  round-robin tenants.
- :mod:`repro.sched.engine` — the discrete-event loop gluing the above
  to the cluster manager and predictor contract, producing
  :class:`~repro.sim.results.WorkflowMetrics` (per-workflow makespan,
  critical-path lower bound, stretch) alongside the usual cluster and
  wastage metrics.

Reached through ``EventDrivenBackend(dag=..., workflow_arrival=...)``,
``OnlineSimulator(..., dag=..., workflow_arrival=...)``, ``run_cell`` /
``run_grid``, and the CLI's ``--dag`` / ``--workflow-arrival``.
"""

from repro.sim.arrivals import WorkflowArrivals, parse_workflow_arrival
from repro.sched.engine import resolve_dag, run_dag_simulation
from repro.sched.instance import WorkflowInstance
from repro.sched.ready import ReadySetScheduler

__all__ = [
    "WorkflowInstance",
    "ReadySetScheduler",
    "WorkflowArrivals",
    "parse_workflow_arrival",
    "resolve_dag",
    "run_dag_simulation",
]
