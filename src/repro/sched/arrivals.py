"""Workflow-level arrival model: whole workflow instances, many tenants.

The task-level :mod:`repro.sim.arrivals` models stagger *tasks* of one
trace.  On a shared cluster the unit of submission is the whole
workflow: users hand the SWMS complete DAGs, and several users' runs
contend for the same nodes.  :class:`WorkflowArrivals` captures that —
it fixes how many workflow instances are injected, reuses the task-level
:class:`~repro.sim.arrivals.ArrivalModel` machinery (fixed / Poisson /
bursty, all drawing from the run's seeded RNG) for the instance arrival
times, and assigns each instance to a tenant round-robin.

Spec strings, accepted everywhere a ``workflow_arrival`` option exists
(backend, runner, CLI ``--workflow-arrival``)::

    "4"               four instances, all submitted at t=0
    "4@fixed:1.5"     four instances, 1.5 h apart
    "4@poisson:2"     four instances, Poisson process at 2/h
    "6@bursty:2x0.5"  six instances in bursts of two, 0.5 h apart
    "4@poisson:2@tenants:2"   same, shared by two users round-robin
"""

from __future__ import annotations

import numpy as np

from repro.sim.arrivals import ArrivalModel, FixedArrivals, parse_arrival

__all__ = ["WorkflowArrivals", "parse_workflow_arrival"]


class WorkflowArrivals:
    """How many workflow instances arrive, when, and for which tenants.

    Parameters
    ----------
    n_instances:
        Number of whole-workflow copies injected into the simulation.
    arrival:
        Inter-instance arrival process — a task-level arrival spec
        string or :class:`~repro.sim.arrivals.ArrivalModel` (default: all
        instances submitted at t=0, a batch of competing runs).
    n_tenants:
        Number of distinct users owning the instances, assigned
        round-robin (``user0``, ``user1``, ...).  Defaults to one tenant
        per instance — every run belongs to a different user.
    """

    def __init__(
        self,
        n_instances: int = 1,
        arrival: str | ArrivalModel | None = None,
        n_tenants: int | None = None,
    ) -> None:
        if n_instances < 1:
            raise ValueError(f"n_instances must be >= 1, got {n_instances}")
        if n_tenants is not None and n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {n_tenants}")
        self.n_instances = n_instances
        self.arrival = parse_arrival(
            FixedArrivals(0.0) if arrival is None else arrival
        )
        self.n_tenants = min(n_tenants or n_instances, n_instances)

    @property
    def name(self) -> str:
        return f"{self.n_instances}@{self.arrival.name}"

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Non-decreasing submission times for all instances (hours)."""
        return self.arrival.sample(self.n_instances, rng)

    def tenant(self, index: int) -> str:
        """Owning tenant of workflow instance ``index`` (round-robin)."""
        return f"user{index % self.n_tenants}"


def parse_workflow_arrival(
    spec: str | int | WorkflowArrivals,
) -> WorkflowArrivals:
    """Parse a workflow-arrival spec (see module docstring for forms)."""
    if isinstance(spec, WorkflowArrivals):
        return spec
    if isinstance(spec, int):
        return WorkflowArrivals(n_instances=spec)
    if not isinstance(spec, str):
        raise TypeError(
            f"workflow_arrival must be a spec string, an int count, or a "
            f"WorkflowArrivals, got {type(spec)!r}"
        )
    parts = spec.strip().split("@")
    n_tenants: int | None = None
    if len(parts) == 3:
        kind, _, arg = parts[2].partition(":")
        if kind != "tenants" or not arg:
            raise ValueError(
                f"bad workflow-arrival spec {spec!r}: third segment must "
                f"be 'tenants:K'"
            )
        try:
            n_tenants = int(arg)
        except ValueError:
            raise ValueError(
                f"bad workflow-arrival spec {spec!r}: tenant count "
                f"{arg!r} is not an integer"
            ) from None
        parts = parts[:2]
    if len(parts) > 2:
        raise ValueError(
            f"bad workflow-arrival spec {spec!r}: expected "
            f"'N', 'N@ARRIVAL', or 'N@ARRIVAL@tenants:K'"
        )
    try:
        count = int(parts[0])
    except ValueError:
        raise ValueError(
            f"bad workflow-arrival spec {spec!r}: instance count "
            f"{parts[0]!r} is not an integer"
        ) from None
    arrival = parts[1] if len(parts) == 2 else None
    try:
        return WorkflowArrivals(
            n_instances=count, arrival=arrival, n_tenants=n_tenants
        )
    except ValueError as exc:
        raise ValueError(f"bad workflow-arrival spec {spec!r}: {exc}") from None
