"""Deprecated shim — workflow arrivals moved to :mod:`repro.sim.arrivals`.

The task-level and workflow-level arrival models used to live in two
near-duplicate modules (``repro.sim.arrivals`` and this one), kept in
sync by hand.  They are now one module: import
:class:`~repro.sim.arrivals.WorkflowArrivals` and
:func:`~repro.sim.arrivals.parse_workflow_arrival` from
``repro.sim.arrivals`` instead.  This shim re-exports them unchanged and
will be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.sim.arrivals import (  # noqa: F401  (re-exports)
    WorkflowArrivals,
    parse_workflow_arrival,
)

__all__ = ["WorkflowArrivals", "parse_workflow_arrival"]

warnings.warn(
    "repro.sched.arrivals is deprecated; import WorkflowArrivals and "
    "parse_workflow_arrival from repro.sim.arrivals instead",
    DeprecationWarning,
    stacklevel=2,
)
