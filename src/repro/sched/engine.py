"""DAG-aware scheduling: a workflow driver over the simulation kernel.

The flat event backend consumes a pre-ordered task stream, so memory
sizing can never feed back into *workflow* makespan — there is no
workflow, only tasks.  This engine closes that gap: it injects whole
:class:`~repro.sched.instance.WorkflowInstance`\\ s via a
:class:`~repro.sim.arrivals.WorkflowArrivals` model, releases a task
through the :class:`~repro.sched.ready.ReadySetScheduler` only when all
of its DAG predecessors' instances have succeeded (a killed-and-requeued
task holds its successors back until its retry lands), and attributes
queue wait, wastage, and failures to each workflow instance — producing
the :class:`~repro.sim.results.WorkflowMetrics` (per-workflow makespan,
critical-path lower bound, stretch) that show how better memory sizing
shortens workflows, not just wastage.

Execution semantics are not re-implemented here: the clock, event heap,
dispatch/placement pass, chunked ``predict_batch`` sizing, kill at
``time_to_failure``, doubling-factor re-sizing, wastage formulas, and
node-drain scenarios all come from the shared
:class:`~repro.sim.kernel.core.SimulationKernel` — the same code the
flat backend runs — so with a linear-chain DAG, a single workflow
instance, and a non-learning predictor the per-task results reproduce
the flat stream's exactly, by construction rather than by vigilance.
This module contributes only the DAG notions of arrival (whole
instances) and release (dependency resolution) via
:class:`DagWorkflowDriver`.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

from repro.cluster.manager import ResourceManager
from repro.sched.instance import WorkflowInstance
from repro.sched.ready import ReadySetScheduler
from repro.sim.arrivals import WorkflowArrivals, parse_workflow_arrival
from repro.sim.interface import MemoryPredictor, TaskSubmission
from repro.sim.kernel.collectors import (
    ClusterMetricsCollector,
    WorkflowMetricsCollector,
)
from repro.sim.kernel.core import SimulationKernel, TaskState
from repro.sim.kernel.events import ARRIVAL
from repro.sim.kernel.outage import NodeOutage
from repro.sim.results import SimulationResult
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskInstance, WorkflowTrace
from repro.workload.base import WorkloadSource, as_source

__all__ = [
    "resolve_dag",
    "run_dag_simulation",
    "build_dag_kernel",
    "DagWorkflowDriver",
]


def resolve_dag(dag: object | None, trace: WorkflowTrace) -> WorkflowDAG:
    """Resolve a ``dag=`` option against a trace.

    - ``None`` / ``"trace"`` — the DAG the trace generator exported on
      :attr:`WorkflowTrace.dag` (one dependency source of truth between
      generation and scheduling);
    - ``"linear"`` — a chain over the trace's task types in
      first-appearance order;
    - a :class:`WorkflowDAG` — used as-is; every task type occurring in
      the trace must be one of its nodes.
    """
    if dag is None or dag == "trace":
        if trace.dag is None:
            raise ValueError(
                f"trace {trace.workflow!r} carries no DAG; generate it via "
                f"generate_trace (which exports the spec's DAG) or pass "
                f"dag='linear' / an explicit WorkflowDAG"
            )
        resolved = trace.dag
    elif dag == "linear":
        resolved = WorkflowDAG.linear_pipeline(
            [t.name for t in trace.task_types]
        )
    elif isinstance(dag, WorkflowDAG):
        resolved = dag
    else:
        raise ValueError(
            f"dag must be None, 'trace', 'linear', or a WorkflowDAG, "
            f"got {dag!r}"
        )
    missing = {t.name for t in trace.task_types} - set(resolved.nodes)
    if missing:
        raise ValueError(
            f"DAG is missing task types present in trace "
            f"{trace.workflow!r}: {sorted(missing)}"
        )
    return resolved


def _offset_task_ids(
    trace: WorkflowTrace, id_offset: int
) -> list[TaskInstance]:
    """Copy a trace's tasks with ``instance_id`` shifted by ``id_offset``.

    Copy 0 (offset 0) shares the trace's frozen instances directly; later
    copies clone via ``__dict__`` instead of ``dataclasses.replace`` —
    every field except the id comes from an already-validated instance,
    so re-running ``__post_init__`` per task is pure overhead (it
    dominated the DAG driver's seed phase at high replication counts).
    """
    if id_offset == 0:
        return list(trace)
    tasks: list[TaskInstance] = []
    for inst in trace:
        clone = object.__new__(TaskInstance)
        clone.__dict__.update(inst.__dict__)
        clone.__dict__["instance_id"] = inst.instance_id + id_offset
        tasks.append(clone)
    return tasks


def _instantiate_workflows(
    source: WorkloadSource,
    dag_option: object | None,
    arrivals: WorkflowArrivals,
    rng: np.random.Generator,
    *,
    shard: int = 0,
    shards: int = 1,
) -> list[WorkflowInstance]:
    """Draw arriving workflow instances from a workload source.

    The source's traces are consumed in order; when it yields fewer
    traces than ``arrivals.n_instances``, the produced ones are reused
    round-robin — a single-trace source (every synthetic workload)
    therefore replicates exactly as before.  Each copy keeps the
    ground-truth task data; copy ``k`` offsets every task's *original*
    instance id past all earlier copies' id ranges (``k * stride`` for
    a single-trace source, stride = largest trace id + 1), so ids stay
    globally unique yet joinable back to the source trace — copy 0
    preserves them exactly, even for subsampled traces with sparse ids.
    Each copy gets its sampled submit time, a round-robin tenant, and
    its trace's resolved DAG.

    Sharding (``shard`` of ``shards``): only copies with
    ``k % shards == shard`` are materialized, but the arrival schedule,
    trace round-robin, and id-offset accounting run over *all* copies —
    a sharded instance therefore has exactly the submit time, tenant,
    and task ids it would have in the unsharded run, which is what makes
    shard merges meaningful.
    """
    times = arrivals.sample(rng)
    trace_iter: "object | None" = source.iter_traces()
    produced: list[WorkflowTrace] = []
    resolved: dict[int, WorkflowDAG] = {}
    instances: list[WorkflowInstance] = []
    id_offset = 0
    for k in range(arrivals.n_instances):
        trace: WorkflowTrace | None = None
        if trace_iter is not None:
            trace = next(trace_iter, None)  # type: ignore[arg-type]
            if trace is None:
                trace_iter = None
            else:
                produced.append(trace)
        if trace is None:
            if not produced:
                raise ValueError(
                    f"workload source {source.name!r} yielded no traces"
                )
            trace = produced[k % len(produced)]
        offset = id_offset
        id_offset += 1 + max((t.instance_id for t in trace), default=0)
        if k % shards != shard:
            continue
        if id(trace) not in resolved:
            resolved[id(trace)] = resolve_dag(dag_option, trace)
        instances.append(
            WorkflowInstance(
                key=f"{trace.workflow}#{k}",
                workflow=trace.workflow,
                dag=resolved[id(trace)],
                tasks=_offset_task_ids(trace, offset),
                submit_time=float(times[k]),
                tenant=arrivals.tenant(k),
            )
        )
    return instances


class _DagQueue:
    """:class:`~repro.sim.kernel.core.ReadyQueue` view of the ready set.

    ``head``/``pop`` bind the scheduler's ready heap directly (the list
    object is owned and never rebound by the scheduler) — the kernel
    calls them once per dispatch, so the extra delegation layer was
    measurable.
    """

    __slots__ = ("_scheduler", "_ready", "order")

    def __init__(self, scheduler: ReadySetScheduler[TaskState]) -> None:
        self._scheduler = scheduler
        self._ready = scheduler._ready
        #: Kernel-internal contract (shared with ``_FlatQueue``): the
        #: live ready-heap list; entries sort FCFS and end with the
        #: state, so the kernel peeks ``order[0][-1]`` and pops with
        #: ``heappop`` directly.
        self.order = self._ready

    def head(self) -> TaskState:
        return self._ready[0][2]

    def pop(self) -> TaskState:
        return heapq.heappop(self._ready)[2]

    def unsized(self, limit: int) -> list[TaskState]:
        return self._scheduler.take_unsized(
            lambda st: st.allocation is None, limit
        )

    def requeue(self, state: TaskState) -> None:
        assert state.wi is not None
        self._scheduler.requeue(state.wi, state.inst)

    def __len__(self) -> int:
        return len(self._ready)

    def __bool__(self) -> bool:
        return bool(self._ready)


class DagWorkflowDriver:
    """Kernel driver that releases tasks as DAG dependencies resolve.

    Arrival events carry whole :class:`WorkflowInstance`\\ s; a task's
    success may satisfy its type and release downstream types' instances
    into the ready queue.  ``workflows`` is populated during
    :meth:`seed` and shared (by reference) with the
    :class:`~repro.sim.kernel.collectors.WorkflowMetricsCollector`.
    """

    def __init__(
        self,
        dag: object | None,
        arrivals: WorkflowArrivals,
        seed: int,
        *,
        shard: int = 0,
        shards: int = 1,
    ) -> None:
        #: Raw ``dag=`` option; resolved per produced trace during
        #: :meth:`seed` (multi-trace sources may carry distinct DAGs).
        self.dag = dag
        self.arrivals = arrivals
        self.rng_seed = seed
        #: This driver's shard of the instance stream (copy ``k`` belongs
        #: to shard ``k % shards``); the default is the whole stream.
        self.shard = shard
        self.shards = shards
        self.scheduler: ReadySetScheduler[TaskState] = ReadySetScheduler()
        self.queue = _DagQueue(self.scheduler)
        self.workflows: list[WorkflowInstance] = []
        self._states: dict[str, dict[int, TaskState]] = {}
        self.n_tasks = 0

    def seed(self, kernel: SimulationKernel) -> None:
        rng = np.random.default_rng(self.rng_seed)
        self.workflows.extend(
            _instantiate_workflows(
                kernel.source,
                self.dag,
                self.arrivals,
                rng,
                shard=self.shard,
                shards=self.shards,
            )
        )
        self.n_tasks = sum(wi.n_tasks for wi in self.workflows)
        offset = 0
        new = object.__new__
        for wi in self.workflows:
            # ``index`` is the dense submission position (copy k owns
            # the positions past all earlier copies' tasks) — the flat
            # backends' timestamp convention — while instance ids keep
            # their trace values.  In a sharded run the positions are
            # dense *within the shard*.  Submission/state assembly
            # bypasses the dataclass constructors (``object.__new__`` +
            # direct stores — one pair per task, seed hot path at
            # million-task scale).
            submit = wi.submit_time
            states = {}
            for i, t in enumerate(wi.tasks, offset):
                task_type = t.task_type
                sub = new(TaskSubmission)
                # Direct __dict__ bind: one dict build instead of
                # build-then-merge (frozen dataclass, no slots).
                sub.__dict__.update(
                    task_type=task_type.name,
                    workflow=task_type.workflow,
                    machine=t.machine,
                    instance_id=t.instance_id,
                    input_size_mb=t.input_size_mb,
                    preset_memory_mb=task_type.preset_memory_mb,
                    timestamp=i,
                )
                state = new(TaskState)
                state.inst = t
                state.submission = sub
                state.index = i
                state.arrival = submit
                state.wi = wi
                state.allocation = None
                state.first_allocation = None
                state.attempt = 0
                state.queued_at = 0.0
                state.running = None
                state.dispatch_gen = 0
                states[t.instance_id] = state
            self._states[wi.key] = states
            offset += wi.n_tasks
        try:
            # Bulk-load the whole submission timetable into the event
            # calendar's scheduled lane (arrival models produce
            # non-decreasing times, and the shard filter keeps a
            # subsequence).
            kernel.events.schedule_batch(
                [wi.submit_time for wi in self.workflows],
                ARRIVAL,
                list(self.workflows),
            )
        except ValueError:
            for wi in self.workflows:
                kernel.events.push(wi.submit_time, ARRIVAL, wi)

    def on_arrival(self, payload: object, now: float) -> Iterable[TaskState]:
        wi = payload
        assert isinstance(wi, WorkflowInstance)
        released = self.scheduler.admit(wi, self._states[wi.key])
        if wi.done:  # a workflow with no tasks finishes on arrival
            wi.finish_time = now
        return released

    def on_success(self, state: TaskState, now: float) -> Iterable[TaskState]:
        # Dependency bookkeeping: this success may satisfy the task's
        # type and release downstream types' instances into the queue.
        wi = state.wi
        assert wi is not None
        released = self.scheduler.on_success(wi, state.inst)
        if wi.done:
            wi.finish_time = now
        return released

    def finish(self, kernel: SimulationKernel) -> None:
        unfinished = [wi.key for wi in self.workflows if not wi.done]
        if unfinished:  # engine invariant, not a user-facing condition
            raise RuntimeError(
                f"DAG simulation ended with unfinished workflow instances: "
                f"{unfinished}"
            )


def build_dag_kernel(
    workload: "WorkloadSource | WorkflowTrace | str",
    predictor: MemoryPredictor,
    manager: ResourceManager,
    time_to_failure: float,
    *,
    dag: object | None = None,
    workflow_arrival: object | None = None,
    prediction_chunk: int = 32,
    doubling_factor: float = 2.0,
    seed: int = 0,
    backend_name: str = "event",
    node_outage: Sequence[NodeOutage | str] | None = None,
    stream_collectors: bool = False,
    spill: str | None = None,
    shard: int = 0,
    shards: int = 1,
    profile: bool = False,
    trace: str | None = None,
    trace_limit: int | None = None,
) -> SimulationKernel:
    """Assemble (but do not run) the DAG-mode kernel.

    The build/run split is the checkpoint and sharding seam: callers
    that need pause/resume drive the returned kernel through
    :func:`repro.sim.kernel.checkpoint.drive_kernel`, and the sharded
    runner builds one kernel per ``(shard, shards)`` slice of the
    instance stream.  ``stream_collectors`` / ``spill`` configure the
    streaming-collector mode (see :class:`SimulationKernel`).

    Note: in a sharded run, prediction-log timestamps/indices are dense
    within the shard, not globally; streaming mode (which sharded runs
    use) drops the logs anyway.
    """
    source = as_source(workload)
    # Validate the dag option eagerly against the source's first trace,
    # so a missing/mismatched DAG fails here with the resolve_dag error
    # rather than deep inside the event loop.
    resolve_dag(dag, source.trace())
    if shards < 1 or not 0 <= shard < shards:
        raise ValueError(
            f"shard must satisfy 0 <= shard < shards, got "
            f"shard={shard} shards={shards}"
        )
    arrivals = parse_workflow_arrival(
        workflow_arrival if workflow_arrival is not None else 1
    )
    driver = DagWorkflowDriver(dag, arrivals, seed, shard=shard, shards=shards)
    collectors: list = [
        ClusterMetricsCollector(stream=stream_collectors),
        WorkflowMetricsCollector(driver.workflows),
    ]
    if trace is not None:
        from repro.obs.trace import TraceCollector

        collectors.append(TraceCollector(trace, limit=trace_limit))
    return SimulationKernel(
        source,
        predictor,
        manager,
        time_to_failure,
        driver=driver,
        collectors=collectors,
        prediction_chunk=prediction_chunk,
        doubling_factor=doubling_factor,
        outages=node_outage or (),
        backend_name=backend_name,
        stream_collectors=stream_collectors,
        spill=spill,
        profile=profile,
    )


def run_dag_simulation(
    workload: "WorkloadSource | WorkflowTrace | str",
    predictor: MemoryPredictor,
    manager: ResourceManager,
    time_to_failure: float,
    *,
    dag: object | None = None,
    workflow_arrival: object | None = None,
    prediction_chunk: int = 32,
    doubling_factor: float = 2.0,
    seed: int = 0,
    backend_name: str = "event",
    node_outage: Sequence[NodeOutage | str] | None = None,
    stream_collectors: bool = False,
    spill: str | None = None,
    shard: int = 0,
    shards: int = 1,
    profile: bool = False,
    trace: str | None = None,
    trace_limit: int | None = None,
) -> SimulationResult:
    """Execute ``workflow_arrival`` source-produced instances under ``dag``.

    The entry point :class:`~repro.sim.backends.event.EventDrivenBackend`
    delegates to when ``dag=`` / ``workflow_arrival=`` is configured.
    ``workload`` is anything :func:`~repro.workload.base.as_source`
    accepts; the driver pulls whole workflow instances from it.  Returns
    a :class:`SimulationResult` whose ``cluster`` *and* ``workflows``
    metrics are populated.
    """
    kernel = build_dag_kernel(
        workload,
        predictor,
        manager,
        time_to_failure,
        dag=dag,
        workflow_arrival=workflow_arrival,
        prediction_chunk=prediction_chunk,
        doubling_factor=doubling_factor,
        seed=seed,
        backend_name=backend_name,
        node_outage=node_outage,
        stream_collectors=stream_collectors,
        spill=spill,
        shard=shard,
        shards=shards,
        profile=profile,
        trace=trace,
        trace_limit=trace_limit,
    )
    result = kernel.run()
    assert result is not None
    return result
