"""DAG-aware discrete-event engine: whole workflows under dependencies.

The flat event backend consumes a pre-ordered task stream, so memory
sizing can never feed back into *workflow* makespan — there is no
workflow, only tasks.  This engine closes that gap: it injects whole
:class:`~repro.sched.instance.WorkflowInstance`\\ s via a
:class:`~repro.sched.arrivals.WorkflowArrivals` model, releases a task
through the :class:`~repro.sched.ready.ReadySetScheduler` only when all
of its DAG predecessors' instances have succeeded (a killed-and-requeued
task holds its successors back until its retry lands), and attributes
queue wait, wastage, and failures to each workflow instance — producing
the :class:`~repro.sim.results.WorkflowMetrics` (per-workflow makespan,
critical-path lower bound, stretch) that show how better memory sizing
shortens workflows, not just wastage.

Execution semantics shared with the flat event backend: FCFS dispatch in
release order, placement through the manager's policy, kill at
``time_to_failure`` of the runtime, predictor-driven re-sizing with the
doubling-factor escalation floor, chunked ``predict_batch`` sizing, and
the same wastage ledger formulas — so with a linear-chain DAG, a single
workflow instance, and a non-learning predictor the per-task results
reproduce the flat stream's exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.accounting import WastageLedger
from repro.cluster.machine import Machine
from repro.cluster.manager import ResourceManager
from repro.sched.arrivals import WorkflowArrivals, parse_workflow_arrival
from repro.sched.instance import WorkflowInstance
from repro.sched.ready import ReadySetScheduler
from repro.sim.backends.base import (
    MAX_ATTEMPTS,
    build_cluster_metrics,
    commit_failure_and_resize,
    commit_success,
    size_first_attempts,
)
from repro.sim.interface import MemoryPredictor, TaskSubmission, TraceContext
from repro.sim.results import (
    PredictionLog,
    SimulationResult,
    WorkflowInstanceMetrics,
    WorkflowMetrics,
)
from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskInstance, WorkflowTrace

__all__ = ["resolve_dag", "run_dag_simulation"]

_MB_PER_GB = 1024.0

#: Event kinds, ordered so completions at time t free their memory
#: before workflow arrivals at t release new ready tasks.
_COMPLETION = 0
_WF_ARRIVAL = 1


def resolve_dag(dag: object | None, trace: WorkflowTrace) -> WorkflowDAG:
    """Resolve a ``dag=`` option against a trace.

    - ``None`` / ``"trace"`` — the DAG the trace generator exported on
      :attr:`WorkflowTrace.dag` (one dependency source of truth between
      generation and scheduling);
    - ``"linear"`` — a chain over the trace's task types in
      first-appearance order;
    - a :class:`WorkflowDAG` — used as-is; every task type occurring in
      the trace must be one of its nodes.
    """
    if dag is None or dag == "trace":
        if trace.dag is None:
            raise ValueError(
                f"trace {trace.workflow!r} carries no DAG; generate it via "
                f"generate_trace (which exports the spec's DAG) or pass "
                f"dag='linear' / an explicit WorkflowDAG"
            )
        resolved = trace.dag
    elif dag == "linear":
        resolved = WorkflowDAG.linear_pipeline(
            [t.name for t in trace.task_types]
        )
    elif isinstance(dag, WorkflowDAG):
        resolved = dag
    else:
        raise ValueError(
            f"dag must be None, 'trace', 'linear', or a WorkflowDAG, "
            f"got {dag!r}"
        )
    missing = {t.name for t in trace.task_types} - set(resolved.nodes)
    if missing:
        raise ValueError(
            f"DAG is missing task types present in trace "
            f"{trace.workflow!r}: {sorted(missing)}"
        )
    return resolved


@dataclass
class _DagTaskState:
    """Mutable per-task bookkeeping of the DAG engine."""

    inst: TaskInstance
    submission: TaskSubmission
    wi: WorkflowInstance
    index: int
    allocation: float | None = None
    first_allocation: float | None = None
    attempt: int = 0
    queued_at: float = 0.0
    #: (node, task_id, allocated_mb, start_time) while executing.
    running: tuple[Machine, int, float, float] | None = None


def _instantiate_workflows(
    trace: WorkflowTrace,
    dag: WorkflowDAG,
    arrivals: WorkflowArrivals,
    rng: np.random.Generator,
) -> list[WorkflowInstance]:
    """Replicate the trace into arriving workflow instances.

    Each copy keeps the ground-truth task data; copy ``k`` offsets every
    task's *original* instance id by ``k * stride`` (stride = largest
    trace id + 1), so ids stay globally unique yet joinable back to
    ``trace.instances`` — copy 0 preserves them exactly, even for
    subsampled traces with sparse ids.  Each copy gets its sampled
    submit time and a round-robin tenant.
    """
    times = arrivals.sample(rng)
    id_stride = 1 + max((t.instance_id for t in trace), default=0)
    instances: list[WorkflowInstance] = []
    for k in range(arrivals.n_instances):
        tasks = [
            replace(inst, instance_id=inst.instance_id + k * id_stride)
            for inst in trace
        ]
        instances.append(
            WorkflowInstance(
                key=f"{trace.workflow}#{k}",
                workflow=trace.workflow,
                dag=dag,
                tasks=tasks,
                submit_time=float(times[k]),
                tenant=arrivals.tenant(k),
            )
        )
    return instances


def run_dag_simulation(
    trace: WorkflowTrace,
    predictor: MemoryPredictor,
    manager: ResourceManager,
    time_to_failure: float,
    *,
    dag: object | None = None,
    workflow_arrival: object | None = None,
    prediction_chunk: int = 32,
    doubling_factor: float = 2.0,
    seed: int = 0,
    backend_name: str = "event",
) -> SimulationResult:
    """Execute ``workflow_arrival`` copies of ``trace`` under ``dag``.

    The entry point :class:`~repro.sim.backends.event.EventDrivenBackend`
    delegates to when ``dag=`` / ``workflow_arrival=`` is configured.
    Returns a :class:`SimulationResult` whose ``cluster`` *and*
    ``workflows`` metrics are populated.
    """
    resolved_dag = resolve_dag(dag, trace)
    arrivals = parse_workflow_arrival(
        workflow_arrival if workflow_arrival is not None else 1
    )
    rng = np.random.default_rng(seed)

    manager.release_all()
    workflows = _instantiate_workflows(trace, resolved_dag, arrivals, rng)
    n_total = sum(wi.n_tasks for wi in workflows)
    predictor.begin_trace(
        TraceContext(
            workflow=trace.workflow,
            n_tasks=n_total,
            time_to_failure=time_to_failure,
            backend=backend_name,
        )
    )
    ledger = WastageLedger()
    logs: list[PredictionLog] = []

    scheduler: ReadySetScheduler[_DagTaskState] = ReadySetScheduler()
    states: dict[str, dict[int, _DagTaskState]] = {}
    n = len(trace)
    for k, wi in enumerate(workflows):
        # ``index`` is the dense submission position (copy k owns
        # positions [k*n, (k+1)*n)) — the flat backends' timestamp
        # convention — while instance ids keep their trace values.
        states[wi.key] = {
            t.instance_id: _DagTaskState(
                inst=t,
                submission=TaskSubmission.from_instance(t, k * n + i),
                wi=wi,
                index=k * n + i,
            )
            for i, t in enumerate(wi.tasks)
        }

    # Event heap entries: (time, kind, seq, payload) with payload a
    # workflow instance (arrival) or a task state (completion).
    events: list[tuple[float, int, int, object]] = []
    seq = 0
    for wi in workflows:
        events.append((wi.submit_time, _WF_ARRIVAL, seq, wi))
        seq += 1
    heapq.heapify(events)

    queue_waits: list[float] = []
    makespan = 0.0
    busy_mbh = {node.node_id: 0.0 for node in manager.nodes}
    timelines: dict[int, list[tuple[float, float]]] = {
        node.node_id: [(0.0, 0.0)] for node in manager.nodes
    }

    def release(st: _DagTaskState, now: float) -> tuple[float, float]:
        """Free the task's node slice; returns (allocated, occupied h)."""
        assert st.running is not None
        node, task_id, allocated, start = st.running
        st.running = None
        node.release(task_id)
        occupied = now - start
        busy_mbh[node.node_id] += allocated * occupied
        timelines[node.node_id].append((now, node.allocated_mb))
        return allocated, occupied

    def handle_finish(st: _DagTaskState, now: float) -> None:
        inst = st.inst
        allocated, _ = release(st, now)
        commit_success(
            ledger,
            predictor,
            logs,
            inst,
            attempt=st.attempt,
            allocated_mb=allocated,
            timestamp=st.index,
            first_allocation_mb=st.first_allocation,
            final_allocation_mb=st.allocation,
        )
        st.wi.wastage_gbh += (
            (allocated - inst.peak_memory_mb) / _MB_PER_GB * inst.runtime_hours
        )
        # Dependency bookkeeping: this success may satisfy the task's
        # type and release downstream types' instances into the queue.
        for released_st in scheduler.on_success(st.wi, inst):
            released_st.queued_at = now
        if st.wi.done:
            st.wi.finish_time = now

    def handle_kill(st: _DagTaskState, now: float) -> None:
        inst = st.inst
        allocated, occupied = release(st, now)
        st.allocation = commit_failure_and_resize(
            ledger,
            predictor,
            manager,
            inst,
            st.submission,
            attempt=st.attempt,
            allocated_mb=allocated,
            occupied_hours=occupied,
            timestamp=st.index,
            doubling_factor=doubling_factor,
        )
        st.wi.wastage_gbh += allocated / _MB_PER_GB * occupied
        st.wi.n_failures += 1
        st.queued_at = now
        scheduler.requeue(st.wi, inst)

    def predict_chunk(now: float) -> None:
        """Size the first ``prediction_chunk`` unsized queued tasks."""
        chunk = [
            st for st in scheduler.queued() if st.allocation is None
        ][:prediction_chunk]
        size_first_attempts(predictor, manager, chunk)

    def schedule(now: float) -> None:
        nonlocal seq
        while scheduler:
            head = scheduler.head()
            if head.allocation is None:
                predict_chunk(now)
            node = manager.try_place(head.allocation)
            if node is None:
                # Strict FCFS: the head blocks until memory frees up.
                break
            scheduler.pop()
            if head.attempt + 1 > MAX_ATTEMPTS:
                raise RuntimeError(
                    f"task {head.inst.instance_id} "
                    f"({head.inst.task_type.key}) did not finish within "
                    f"{MAX_ATTEMPTS} attempts; last allocation "
                    f"{head.allocation:.0f} MB, "
                    f"peak {head.inst.peak_memory_mb:.0f} MB"
                )
            task_id = manager.next_task_id()
            node.allocate(task_id, head.allocation)
            timelines[node.node_id].append((now, node.allocated_mb))
            head.attempt += 1
            wait = now - head.queued_at
            queue_waits.append(wait)
            head.wi.queue_wait_hours += wait
            if head.wi.first_dispatch is None:
                head.wi.first_dispatch = now
            head.running = (node, task_id, head.allocation, now)
            success = head.allocation >= head.inst.peak_memory_mb
            duration = (
                head.inst.runtime_hours
                if success
                else head.inst.runtime_hours * time_to_failure
            )
            heapq.heappush(events, (now + duration, _COMPLETION, seq, head))
            seq += 1

    while events:
        now = events[0][0]
        while events and events[0][0] == now:
            _, kind, _, payload = heapq.heappop(events)
            if kind == _WF_ARRIVAL:
                wi = payload
                for st in scheduler.admit(wi, states[wi.key]):
                    st.queued_at = now
                if wi.done:  # a workflow with no tasks finishes on arrival
                    wi.finish_time = now
            else:
                st = payload
                if st.running is not None and (
                    st.running[2] >= st.inst.peak_memory_mb
                ):
                    handle_finish(st, now)
                else:
                    handle_kill(st, now)
            makespan = max(makespan, now)
        schedule(now)

    unfinished = [wi.key for wi in workflows if not wi.done]
    if unfinished:  # engine invariant, not a user-facing condition
        raise RuntimeError(
            f"DAG simulation ended with unfinished workflow instances: "
            f"{unfinished}"
        )

    predictor.end_trace()
    logs.sort(key=lambda log: log.timestamp)
    return SimulationResult(
        workflow=trace.workflow,
        method=predictor.name,
        time_to_failure=time_to_failure,
        ledger=ledger,
        predictions=logs,
        cluster=build_cluster_metrics(
            manager, makespan, queue_waits, busy_mbh, timelines
        ),
        workflows=WorkflowMetrics(
            instances=[_workflow_metrics(wi) for wi in workflows]
        ),
    )


def _workflow_metrics(wi: WorkflowInstance) -> WorkflowInstanceMetrics:
    finish = wi.finish_time if wi.finish_time is not None else wi.submit_time
    first = (
        wi.first_dispatch if wi.first_dispatch is not None else wi.submit_time
    )
    makespan = finish - wi.submit_time
    critical_path = wi.critical_path_hours()
    return WorkflowInstanceMetrics(
        key=wi.key,
        workflow=wi.workflow,
        tenant=wi.tenant,
        submit_time_hours=wi.submit_time,
        first_dispatch_hours=first,
        finish_time_hours=finish,
        makespan_hours=makespan,
        critical_path_hours=critical_path,
        stretch=(makespan / critical_path if critical_path > 0 else 1.0),
        queue_wait_hours=wi.queue_wait_hours,
        wastage_gbh=wi.wastage_gbh,
        n_tasks=wi.n_tasks,
        n_failures=wi.n_failures,
    )
