"""Workflow instances: a DAG, its task instances, and execution state.

The paper models a workflow as a DAG whose SWMS "releases ready tasks"
(§I).  A :class:`WorkflowInstance` is one *execution* of a workflow — the
unit a multi-tenant scheduler admits: the :class:`~repro.workflow.dag.WorkflowDAG`
over task types, the concrete :class:`~repro.workflow.task.TaskInstance`
list of this run, and the per-instance dependency state that decides
which tasks are ready.

Dependency semantics (matching how an SWMS gates stage barriers):

- a task-type node is **released** once every DAG predecessor type is
  satisfied — its instances may then be dispatched;
- a task-type node is **satisfied** once *all* of its instances have
  succeeded — a killed-and-requeued instance therefore holds every
  downstream type back until its retry lands;
- a type with no instances in this run is trivially satisfied the moment
  it is released, so partial traces don't deadlock their successors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workflow.dag import WorkflowDAG
from repro.workflow.task import TaskInstance

__all__ = ["WorkflowInstance"]


@dataclass
class WorkflowInstance:
    """One submitted execution of a workflow, with live dependency state.

    Attributes
    ----------
    key:
        Unique label of this execution, e.g. ``"rnaseq#2"``.
    workflow:
        Name of the workflow this is an instance of.
    dag:
        Task-type dependency graph; every task's type must be a node.
    tasks:
        The physical task instances of this execution.
    submit_time:
        Simulation time (hours) the whole workflow was submitted.
    tenant:
        Owning user — many tenants' instances contend for one cluster.
    """

    key: str
    workflow: str
    dag: WorkflowDAG
    tasks: list[TaskInstance]
    submit_time: float = 0.0
    tenant: str = "default"

    # -- live dependency state (managed via release/complete below) -----
    _tasks_by_type: dict[str, list[TaskInstance]] = field(
        init=False, repr=False, default_factory=dict
    )
    _unsatisfied_preds: dict[str, int] = field(init=False, repr=False)
    _remaining: dict[str, int] = field(init=False, repr=False)
    _released: set[str] = field(init=False, repr=False, default_factory=set)
    _n_pending: int = field(init=False, repr=False)

    # -- metric accumulators filled in by the scheduling engine ---------
    first_dispatch: float | None = field(init=False, default=None)
    finish_time: float | None = field(init=False, default=None)
    queue_wait_hours: float = field(init=False, default=0.0)
    wastage_gbh: float = field(init=False, default=0.0)
    n_failures: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        nodes = set(self.dag.nodes)
        for inst in self.tasks:
            if inst.task_type.name not in nodes:
                raise ValueError(
                    f"task instance {inst.instance_id} has type "
                    f"{inst.task_type.name!r} which is not a node of the "
                    f"DAG of workflow instance {self.key!r}"
                )
            self._tasks_by_type.setdefault(inst.task_type.name, []).append(inst)
        self._unsatisfied_preds = {
            n: len(self.dag.predecessors(n)) for n in self.dag.nodes
        }
        self._remaining = {
            n: len(self._tasks_by_type.get(n, [])) for n in self.dag.nodes
        }
        self._n_pending = len(self.tasks)

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def done(self) -> bool:
        """True once every task instance has succeeded."""
        return self._n_pending == 0

    def is_released(self, task_type: str) -> bool:
        return task_type in self._released

    # ------------------------------------------------------------------
    def release_roots(self) -> list[TaskInstance]:
        """Release every root type; returns the initially ready tasks.

        Types without predecessors release immediately; released types
        that happen to have zero instances are trivially satisfied, so
        the release cascades through empty nodes.
        """
        ready: list[TaskInstance] = []
        for node in self.dag.topological_order():
            if self._unsatisfied_preds[node] == 0:
                ready.extend(self._release(node))
        return ready

    def complete(self, task_type: str) -> list[TaskInstance]:
        """Record one successful instance of ``task_type``.

        Returns the task instances that became ready because this
        success satisfied their last outstanding predecessor type.
        """
        if task_type not in self._remaining:
            raise KeyError(task_type)
        if self._remaining[task_type] <= 0:
            raise ValueError(
                f"all instances of {task_type!r} in {self.key!r} already "
                f"completed"
            )
        self._remaining[task_type] -= 1
        self._n_pending -= 1
        if self._remaining[task_type] > 0:
            return []
        return self._satisfy(task_type)

    # ------------------------------------------------------------------
    def _release(self, node: str) -> list[TaskInstance]:
        if node in self._released:
            return []
        self._released.add(node)
        ready = list(self._tasks_by_type.get(node, []))
        if not ready and self._remaining[node] == 0:
            # Empty type: satisfied the moment it is released.
            ready.extend(self._satisfy(node))
        return ready

    def _satisfy(self, node: str) -> list[TaskInstance]:
        newly_ready: list[TaskInstance] = []
        for succ in self.dag.successors(node):
            self._unsatisfied_preds[succ] -= 1
            if self._unsatisfied_preds[succ] == 0:
                newly_ready.extend(self._release(succ))
        return newly_ready

    # ------------------------------------------------------------------
    def critical_path_hours(self) -> float:
        """Zero-contention lower bound on this instance's makespan.

        Under the release semantics above, a type's instances can all run
        in parallel on an infinite cluster but the type completes only
        when its *slowest* instance does — so each DAG node weighs its
        maximum instance runtime and the bound is the heaviest path
        through the DAG.
        """
        weight = {
            n: max(
                (t.runtime_hours for t in self._tasks_by_type.get(n, [])),
                default=0.0,
            )
            for n in self.dag.nodes
        }
        longest: dict[str, float] = {}
        for node in self.dag.topological_order():
            upstream = max(
                (longest[p] for p in self.dag.predecessors(node)), default=0.0
            )
            longest[node] = weight[node] + upstream
        return max(longest.values(), default=0.0)
