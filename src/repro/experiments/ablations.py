"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but direct tests of its design rationale:

- **Gating strategy**: Argmax vs softmax Interpolation (§II-D discusses
  the trade-off: opportunism vs consensus).
- **Offset strategy**: each fixed offset statistic vs the dynamic
  least-wastage selection (§II-E), plus no offset at all.
- **Model-pool composition**: each model class alone vs the full pool —
  the heart of the paper's claim that no single model class fits all
  task types.
- **Granularity**: per-(task, machine) pools vs per-task pools (Fig. 4).
- **Adaptive alpha**: the paper's future-work idea (§III-E), switching
  alpha per task type online (see :mod:`repro.core.adaptive`).
"""

from __future__ import annotations

from typing import Callable

from repro.core.adaptive import AdaptiveAlphaSizey
from repro.experiments.factories import make_sizey
from repro.experiments.report import render_table
from repro.sim.engine import OnlineSimulator
from repro.sim.interface import MemoryPredictor
from repro.workflow.nfcore import build_workflow_trace

__all__ = [
    "run_variants",
    "gating_ablation",
    "offset_ablation",
    "pool_ablation",
    "granularity_ablation",
    "adaptive_alpha_ablation",
    "run",
]


def run_variants(
    variants: dict[str, Callable[[], MemoryPredictor]],
    workflow: str = "rnaseq",
    seed: int = 0,
    scale: float = 0.5,
) -> dict[str, dict[str, float]]:
    """Run each predictor variant on one workflow trace."""
    trace = build_workflow_trace(workflow, seed=seed, scale=scale)
    out: dict[str, dict[str, float]] = {}
    for name, factory in variants.items():
        res = OnlineSimulator(trace).run(factory())
        out[name] = {
            "wastage_gbh": res.total_wastage_gbh,
            "failures": float(res.num_failures),
            "runtime_h": res.total_runtime_hours,
        }
    return out


def gating_ablation(workflow: str = "rnaseq", seed: int = 0, scale: float = 0.5):
    return run_variants(
        {
            "interpolation": lambda: make_sizey(gating="interpolation"),
            "argmax": lambda: make_sizey(gating="argmax"),
        },
        workflow,
        seed,
        scale,
    )


def offset_ablation(workflow: str = "rnaseq", seed: int = 0, scale: float = 0.5):
    strategies = ("dynamic", "std", "std_under", "median", "median_under", "none")
    return run_variants(
        {s: (lambda s=s: make_sizey(offset_strategy=s)) for s in strategies},
        workflow,
        seed,
        scale,
    )


def pool_ablation(workflow: str = "rnaseq", seed: int = 0, scale: float = 0.5):
    singles = ("linear", "knn", "mlp", "random_forest")
    variants: dict[str, Callable[[], MemoryPredictor]] = {
        f"only_{m}": (lambda m=m: make_sizey(model_classes=(m,))) for m in singles
    }
    variants["full_pool"] = make_sizey
    return run_variants(variants, workflow, seed, scale)


def granularity_ablation(workflow: str = "rnaseq", seed: int = 0, scale: float = 0.5):
    return run_variants(
        {
            "task_machine": lambda: make_sizey(granularity="task_machine"),
            "task": lambda: make_sizey(granularity="task"),
        },
        workflow,
        seed,
        scale,
    )


def adaptive_alpha_ablation(
    workflow: str = "rnaseq", seed: int = 0, scale: float = 0.5
):
    return run_variants(
        {
            "alpha_0.0": lambda: make_sizey(alpha=0.0),
            "alpha_0.5": lambda: make_sizey(alpha=0.5),
            "alpha_1.0": lambda: make_sizey(alpha=1.0),
            "adaptive": AdaptiveAlphaSizey,
        },
        workflow,
        seed,
        scale,
    )


def run(seed: int = 0, scale: float = 0.5, verbose: bool = True):
    """Run all ablations on rnaseq; returns ``{ablation: {variant: metrics}}``."""
    all_results = {
        "gating": gating_ablation(seed=seed, scale=scale),
        "offset": offset_ablation(seed=seed, scale=scale),
        "pool": pool_ablation(seed=seed, scale=scale),
        "granularity": granularity_ablation(seed=seed, scale=scale),
        "adaptive_alpha": adaptive_alpha_ablation(seed=seed, scale=scale),
    }
    if verbose:
        for ablation, variants in all_results.items():
            rows = [
                [v, m["wastage_gbh"], m["failures"], m["runtime_h"]]
                for v, m in variants.items()
            ]
            print(
                render_table(
                    ["variant", "wastage GBh", "failures", "runtime h"],
                    rows,
                    title=f"Ablation — {ablation} (rnaseq)",
                )
            )
            print()
    return all_results
