"""Cluster scenarios: sizing methods across heterogeneous cluster shapes.

The paper's evaluation runs every method on eight identical 128 GB
nodes.  Sizing decisions only matter because they interact with a
cluster, and real workflow clusters are heterogeneous — so this grid
replays the same traces through the event-driven backend on a set of
cluster *shapes* (homogeneous baseline, mixed big/small pools, many
small nodes) combined with placement policies and arrival models, and
reports the cluster-level consequences of each sizing method: makespan,
queueing, and per-node utilization alongside the usual wastage.

Scenario axes:

- cluster spec (``"128g:8"`` vs ``"128g:4,256g:4"`` vs ``"64g:16"``),
- placement policy (first-fit / best-fit / worst-fit),
- arrival model (batch, Poisson, bursty),
- scheduled node drains (``node_outage="start:duration:node"``) — a
  kernel-level scenario that pauses placement on a node mid-run and
  preempts its running tasks, stressing every method's re-queue path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.factories import method_factories
from repro.experiments.report import render_table
from repro.sim.backends import EventDrivenBackend
from repro.sim.runner import run_cell
from repro.workflow.nfcore import build_workflow_trace

__all__ = ["Scenario", "SCENARIOS", "DEFAULT_METHODS", "collect", "run"]


@dataclass(frozen=True)
class Scenario:
    """One cluster shape: node pools + placement policy + arrival model."""

    name: str
    cluster: str
    placement: str = "first-fit"
    arrival: str = "fixed:0"
    #: Optional node drain windows ("start:duration:node" specs).
    node_outage: tuple[str, ...] = ()


#: The default scenario grid: the paper's homogeneous baseline, a mixed
#: big/small cluster under the two non-trivial placement policies, and a
#: many-small-nodes shape under Poisson and bursty load.
SCENARIOS: tuple[Scenario, ...] = (
    Scenario(name="uniform-128g", cluster="128g:8"),
    Scenario(
        name="hetero-best-fit",
        cluster="128g:4,256g:4",
        placement="best-fit",
        arrival="poisson:40",
    ),
    Scenario(
        name="hetero-worst-fit",
        cluster="128g:4,256g:4",
        placement="worst-fit",
        arrival="poisson:40",
    ),
    Scenario(
        name="small-nodes-bursty",
        cluster="64g:16",
        placement="best-fit",
        arrival="bursty:16x0.05",
    ),
    Scenario(
        name="node-drain",
        cluster="64g:4",
        placement="best-fit",
        arrival="bursty:16x0.05",
        node_outage=("0.02:0.2:0",),
    ),
)

#: Sizey plus the two extremes of the baseline spectrum — enough to show
#: the cluster-shape interaction without replaying all six methods.
DEFAULT_METHODS = ("Sizey", "Witt-Percentile", "Workflow-Presets")


def collect(
    seed: int = 0,
    scale: float = 0.1,
    workflows: tuple[str, ...] = ("iwd",),
    methods: tuple[str, ...] = DEFAULT_METHODS,
    scenarios: tuple[Scenario, ...] = SCENARIOS,
) -> dict[str, dict[str, dict[str, object]]]:
    """``{scenario: {method: summary}}`` over the scenario grid.

    Each summary aggregates the method's event-backend results over
    ``workflows``: wastage, failures, makespan (summed — each workflow
    replays on its own fresh cluster), task-weighted mean queue wait,
    and the mean per-node utilization.
    """
    factories = method_factories()
    traces = {
        wf: build_workflow_trace(wf, seed=seed, scale=scale)
        for wf in workflows
    }
    out: dict[str, dict[str, dict[str, object]]] = {}
    for scenario in scenarios:
        backend = EventDrivenBackend(
            arrival=scenario.arrival,
            seed=seed,
            node_outage=scenario.node_outage or None,
        )
        per_method: dict[str, dict[str, object]] = {}
        for method in methods:
            results = [
                run_cell(
                    trace,
                    factories[method],
                    backend=backend,
                    cluster=scenario.cluster,
                    placement=scenario.placement,
                )
                for trace in traces.values()
            ]
            n_tasks = sum(r.num_tasks for r in results)
            waits = sum(
                r.cluster.total_queue_wait_hours for r in results
            )
            per_method[method] = {
                "wastage_gbh": sum(r.total_wastage_gbh for r in results),
                "failures": sum(r.num_failures for r in results),
                "makespan_hours": sum(
                    r.cluster.makespan_hours for r in results
                ),
                "mean_queue_wait_hours": waits / n_tasks if n_tasks else 0.0,
                "mean_utilization": float(
                    np.mean([r.cluster.mean_utilization for r in results])
                ),
            }
        out[scenario.name] = per_method
    return out


def run(
    seed: int = 0,
    scale: float = 0.1,
    workflows: tuple[str, ...] = ("iwd",),
    methods: tuple[str, ...] = DEFAULT_METHODS,
    scenarios: tuple[Scenario, ...] = SCENARIOS,
    verbose: bool = True,
) -> dict[str, dict[str, dict[str, object]]]:
    """Regenerate the cluster-scenario grid; returns the summaries."""
    data = collect(
        seed=seed,
        scale=scale,
        workflows=workflows,
        methods=methods,
        scenarios=scenarios,
    )
    if verbose:
        by_name = {s.name: s for s in scenarios}
        for name, per_method in data.items():
            s = by_name[name]
            rows = [
                [
                    method,
                    summary["wastage_gbh"],
                    summary["failures"],
                    summary["makespan_hours"],
                    summary["mean_queue_wait_hours"],
                    summary["mean_utilization"],
                ]
                for method, summary in per_method.items()
            ]
            print(
                render_table(
                    ["method", "wastage GBh", "failures", "makespan h",
                     "mean wait h", "mean util"],
                    rows,
                    title=(
                        f"cluster scenario {name}: {s.cluster} "
                        f"({s.placement}, {s.arrival}"
                        + (
                            f", drains: {','.join(s.node_outage)}"
                            if s.node_outage
                            else ""
                        )
                        + f", workflows: {', '.join(workflows)})"
                    ),
                )
            )
            print()
    return data
