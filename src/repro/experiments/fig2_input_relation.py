"""Fig. 2: peak memory vs. input read, with linear fits.

The paper contrasts ``MarkDuplicates`` (clean linear correlation) with
``BaseRecalibrator`` (two regimes, where a single linear model "would
lead to half of the task instances failing ... and the other half would
waste significant memory").  This regenerator fits an OLS line per task
and quantifies exactly that pathology: the under-prediction rate and the
mean relative over-allocation of the linear fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.linear import LinearRegression
from repro.ml.metrics import r2_score, under_prediction_rate
from repro.experiments.report import render_table
from repro.workflow.nfcore import build_workflow_trace

__all__ = ["FIG2_TASKS", "LinearFitDiagnosis", "run", "diagnose_task"]

FIG2_TASKS = (("MarkDuplicates", "rnaseq"), ("BaseRecalibrator", "rnaseq"))


@dataclass(frozen=True)
class LinearFitDiagnosis:
    """How well a single linear model explains one task type."""

    task: str
    n: int
    slope_mb_per_mb: float
    intercept_mb: float
    r2: float
    under_prediction_rate: float
    mean_over_allocation_frac: float


def diagnose_task(task: str, workflow: str, seed: int = 0, scale: float = 1.0):
    """Fit OLS memory ~ input for one task type and diagnose it."""
    trace = build_workflow_trace(workflow, seed=seed, scale=scale)
    insts = trace.instances_of(task)
    if not insts:
        raise RuntimeError(f"no instances of {task!r} in {workflow!r}")
    X = np.array([[i.input_size_mb] for i in insts])
    y = np.array([i.peak_memory_mb for i in insts])
    fit = LinearRegression().fit(X, y)
    pred = fit.predict(X)
    over = pred >= y
    over_frac = (
        float(np.mean((pred[over] - y[over]) / y[over])) if over.any() else 0.0
    )
    return LinearFitDiagnosis(
        task=task,
        n=len(insts),
        slope_mb_per_mb=float(fit.coef_[0]),
        intercept_mb=float(fit.intercept_),
        r2=r2_score(y, pred),
        under_prediction_rate=under_prediction_rate(y, pred),
        mean_over_allocation_frac=over_frac,
    )


def run(seed: int = 0, scale: float = 1.0, verbose: bool = True):
    """Regenerate Fig. 2; returns a diagnosis per task type."""
    rows = []
    out: dict[str, LinearFitDiagnosis] = {}
    for task, workflow in FIG2_TASKS:
        d = diagnose_task(task, workflow, seed=seed, scale=scale)
        out[task] = d
        rows.append(
            [
                d.task,
                d.n,
                d.slope_mb_per_mb,
                d.intercept_mb,
                d.r2,
                d.under_prediction_rate,
                d.mean_over_allocation_frac,
            ]
        )
    if verbose:
        print(
            render_table(
                [
                    "task",
                    "n",
                    "slope",
                    "intercept MB",
                    "R^2",
                    "underpred rate",
                    "mean overalloc frac",
                ],
                rows,
                title="Fig. 2 — linear fit of peak memory vs input read",
                ndigits=3,
            )
        )
    return out
