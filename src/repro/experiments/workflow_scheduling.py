"""Workflow-level scheduling: does better memory sizing shorten workflows?

The paper's headline metric is memory wastage; this grid measures the
*workflow-level* consequence the paper motivates but never quantifies:
on a shared cluster, over-sized tasks crowd out other work and
under-sized tasks burn retries on the critical path — both stretch
workflow makespan.  The grid replays the same trace through the
DAG-aware scheduling engine (:mod:`repro.sched`) while sweeping

- sizing method (Sizey vs the extremes of the baseline spectrum),
- cluster spec (homogeneous vs heterogeneous shapes),
- workflow arrival rate (batch of competing instances vs Poisson
  streams at increasing tenancy pressure),

and reports per-workflow makespan, critical-path-normalized stretch,
queue wait, failures, and wastage for every (scenario, method) cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.factories import method_factories
from repro.experiments.report import render_table
from repro.sim.backends import EventDrivenBackend
from repro.sim.runner import run_cell
from repro.workflow.nfcore import build_workflow_trace

__all__ = [
    "WorkflowScenario",
    "SCENARIOS",
    "DEFAULT_METHODS",
    "collect",
    "run",
]


@dataclass(frozen=True)
class WorkflowScenario:
    """One (cluster shape, workflow arrival) point of the sweep."""

    name: str
    cluster: str
    workflow_arrival: str
    placement: str = "best-fit"


#: The default sweep runs a memory-heavy workflow on clusters small
#: enough that sizing decides how many tasks fit side by side — the
#: regime where over-allocation visibly stretches workflow makespan: a
#: batch of competing instances on a tight homogeneous cluster, a
#: heterogeneous cluster under increasing Poisson arrival pressure, and
#: a bursty multi-tenant spike.
SCENARIOS: tuple[WorkflowScenario, ...] = (
    WorkflowScenario(
        name="uniform-batch",
        cluster="128g:3",
        workflow_arrival="4",
    ),
    WorkflowScenario(
        name="hetero-poisson-slow",
        cluster="128g:2,256g:1",
        workflow_arrival="4@poisson:2",
    ),
    WorkflowScenario(
        name="hetero-poisson-fast",
        cluster="128g:2,256g:1",
        workflow_arrival="6@poisson:8",
    ),
    WorkflowScenario(
        name="hetero-bursty-tenants",
        cluster="64g:2,256g:1",
        workflow_arrival="6@bursty:3x0.5@tenants:3",
    ),
)

#: Sizey plus the two extremes of the baseline spectrum — enough to
#: show the sizing/makespan coupling without replaying all six methods.
DEFAULT_METHODS = ("Sizey", "Witt-Percentile", "Workflow-Presets")


def collect(
    seed: int = 0,
    scale: float = 0.05,
    workflow: str = "methylseq",
    methods: tuple[str, ...] = DEFAULT_METHODS,
    scenarios: tuple[WorkflowScenario, ...] = SCENARIOS,
) -> dict[str, dict[str, dict[str, object]]]:
    """``{scenario: {method: summary}}`` over the scheduling sweep.

    Each summary aggregates one method's run of the scenario: total
    wastage/failures plus the workflow-level distribution — mean/max
    makespan, mean/max stretch, mean queue wait per workflow instance —
    and the raw per-instance tuples under ``"per_workflow"``.
    """
    factories = method_factories()
    trace = build_workflow_trace(workflow, seed=seed, scale=scale)
    out: dict[str, dict[str, dict[str, object]]] = {}
    for scenario in scenarios:
        backend = EventDrivenBackend(
            dag="trace",
            workflow_arrival=scenario.workflow_arrival,
            seed=seed,
        )
        per_method: dict[str, dict[str, object]] = {}
        for method in methods:
            res = run_cell(
                trace,
                factories[method],
                backend=backend,
                cluster=scenario.cluster,
                placement=scenario.placement,
            )
            wm = res.workflows
            assert wm is not None
            per_method[method] = {
                "wastage_gbh": res.total_wastage_gbh,
                "failures": res.num_failures,
                "cluster_makespan_hours": res.cluster.makespan_hours,
                "mean_workflow_makespan_hours": wm.mean_makespan_hours,
                "max_workflow_makespan_hours": wm.max_makespan_hours,
                "mean_stretch": wm.mean_stretch,
                "max_stretch": wm.max_stretch,
                "mean_queue_wait_hours": (
                    wm.total_queue_wait_hours / wm.n_instances
                    if wm.n_instances
                    else 0.0
                ),
                "mean_utilization": res.cluster.mean_utilization,
                "per_workflow": [
                    {
                        "key": w.key,
                        "tenant": w.tenant,
                        "makespan_hours": w.makespan_hours,
                        "critical_path_hours": w.critical_path_hours,
                        "stretch": w.stretch,
                        "queue_wait_hours": w.queue_wait_hours,
                        "wastage_gbh": w.wastage_gbh,
                        "n_failures": w.n_failures,
                    }
                    for w in wm.instances
                ],
            }
        out[scenario.name] = per_method
    return out


def run(
    seed: int = 0,
    scale: float = 0.05,
    workflow: str = "methylseq",
    methods: tuple[str, ...] = DEFAULT_METHODS,
    scenarios: tuple[WorkflowScenario, ...] = SCENARIOS,
    verbose: bool = True,
) -> dict[str, dict[str, dict[str, object]]]:
    """Regenerate the workflow-scheduling grid; returns the summaries."""
    data = collect(
        seed=seed,
        scale=scale,
        workflow=workflow,
        methods=methods,
        scenarios=scenarios,
    )
    if verbose:
        by_name = {s.name: s for s in scenarios}
        for name, per_method in data.items():
            s = by_name[name]
            rows = [
                [
                    method,
                    summary["wastage_gbh"],
                    summary["failures"],
                    summary["mean_workflow_makespan_hours"],
                    summary["max_workflow_makespan_hours"],
                    summary["mean_stretch"],
                    summary["mean_queue_wait_hours"],
                ]
                for method, summary in per_method.items()
            ]
            print(
                render_table(
                    ["method", "wastage GBh", "failures", "mean wf mkspan h",
                     "max wf mkspan h", "mean stretch", "mean wf wait h"],
                    rows,
                    title=(
                        f"workflow scheduling {name}: {s.cluster} "
                        f"({s.placement}, arrival {s.workflow_arrival}, "
                        f"workflow {workflow})"
                    ),
                )
            )
            print()
    return data
