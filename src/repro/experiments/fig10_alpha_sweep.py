"""Fig. 10: impact of the RAQ parameter alpha on per-task wastage.

The paper sweeps alpha over {0, 0.1, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7,
0.75, 0.8, 0.9, 1.0} for two rnaseq tasks — ``FastQC`` trends better
with low alpha while ``MarkDuplicates (Picard)`` trends the other way —
supporting the discussion that no single alpha wins everywhere.

Each sweep point replays the full rnaseq trace with that alpha and
reports the wastage attributed to the task of interest.
"""

from __future__ import annotations

from repro.experiments.factories import make_sizey
from repro.experiments.report import render_table
from repro.sim.engine import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace

__all__ = ["PAPER_ALPHAS", "FIG10_TASKS", "run"]

PAPER_ALPHAS = (0.0, 0.1, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 1.0)
FIG10_TASKS = ("FastQC", "MarkDuplicates")


def run(
    alphas: tuple[float, ...] = PAPER_ALPHAS,
    tasks: tuple[str, ...] = FIG10_TASKS,
    seed: int = 0,
    scale: float = 1.0,
    verbose: bool = True,
) -> dict[str, dict[float, float]]:
    """Regenerate Fig. 10; returns ``{task: {alpha: wastage_gbh}}``."""
    trace = build_workflow_trace("rnaseq", seed=seed, scale=scale)
    sweeps: dict[str, dict[float, float]] = {t: {} for t in tasks}
    for alpha in alphas:
        res = OnlineSimulator(trace).run(make_sizey(alpha=alpha))
        by_type = res.wastage_by_task_type()
        for t in tasks:
            sweeps[t][alpha] = by_type.get(t, 0.0)
    if verbose:
        rows = [[a, *[sweeps[t][a] for t in tasks]] for a in alphas]
        print(
            render_table(
                ["alpha", *[f"{t} GBh" for t in tasks]],
                rows,
                title="Fig. 10 — wastage vs alpha for two rnaseq tasks",
                ndigits=3,
            )
        )
    return sweeps
