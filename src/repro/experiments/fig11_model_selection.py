"""Fig. 11: proportion of model classes selected by Sizey (Argmax).

The paper runs Sizey with the Argmax strategy on rnaseq and reports the
share of predictions each model class won: MLP 42.7 %, KNN 29.1 %,
random forest 19.4 %, linear regression 8.8 % — with the note that the
linear model dominates early (few data points) and more complex models
take over as history grows.
"""

from __future__ import annotations

from repro.experiments.factories import make_sizey_argmax
from repro.experiments.report import render_table
from repro.sim.engine import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace

__all__ = ["PAPER_SHARES", "run"]

PAPER_SHARES = {
    "mlp": 0.427,
    "knn": 0.291,
    "random_forest": 0.194,
    "linear": 0.088,
}


def run(
    workflow: str = "rnaseq",
    seed: int = 0,
    scale: float = 1.0,
    verbose: bool = True,
) -> dict[str, float]:
    """Regenerate Fig. 11; returns the selection share per model class."""
    trace = build_workflow_trace(workflow, seed=seed, scale=scale)
    sizey = make_sizey_argmax()
    OnlineSimulator(trace).run(sizey)
    shares = sizey.model_selection_shares()
    if verbose:
        rows = [
            [name, shares.get(name, 0.0) * 100.0, PAPER_SHARES[name] * 100.0]
            for name in ("mlp", "knn", "random_forest", "linear")
        ]
        print(
            render_table(
                ["model class", "share % (ours)", "share % (paper)"],
                rows,
                title=f"Fig. 11 — model classes selected by Sizey ({workflow}, Argmax)",
                ndigits=1,
            )
        )
    return shares
