"""Fig. 1: peak-memory distributions of four task types.

The paper shows box/violin distributions for ``lcextrap``,
``Preprocessing``, ``mpileup`` and ``genomecov``, demonstrating that
(a) memory varies widely between instances of one task type and (b) the
ranges differ strongly across task types.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import render_distribution
from repro.workflow.nfcore import build_workflow_trace

__all__ = ["FIG1_TASKS", "run", "collect_distributions"]

#: (task type, workflow it lives in) — as in the paper's Fig. 1 panels.
FIG1_TASKS = (
    ("lcextrap", "eager"),
    ("Preprocessing", "iwd"),
    ("mpileup", "eager"),
    ("genomecov", "chipseq"),
)


def collect_distributions(
    seed: int = 0, scale: float = 1.0
) -> dict[str, np.ndarray]:
    """Peak-memory samples (MB) per Fig. 1 task type."""
    out: dict[str, np.ndarray] = {}
    for task, workflow in FIG1_TASKS:
        trace = build_workflow_trace(workflow, seed=seed, scale=scale)
        mems = np.array(
            [i.peak_memory_mb for i in trace.instances_of(task)], dtype=np.float64
        )
        if mems.size == 0:
            raise RuntimeError(f"no instances of {task!r} in {workflow!r}")
        out[task] = mems
    return out


def run(seed: int = 0, scale: float = 1.0, verbose: bool = True) -> dict[str, np.ndarray]:
    """Regenerate Fig. 1; returns the per-task peak-memory samples."""
    dists = collect_distributions(seed=seed, scale=scale)
    if verbose:
        print("Fig. 1 — peak memory consumption per task type (MB)")
        for task, mems in dists.items():
            print(f"  {task:14s} {render_distribution(mems)}")
    return dists
