"""WfCommons replay: the method grid over an ingested WfCommons instance.

The paper's evaluation replays recorded provenance; the public WfCommons
collections are the community's standard source of exactly such records.
This cell closes the loop end-to-end: a WfCommons instance document is
ingested through :class:`~repro.workload.wfcommons.WfCommonsSource`
(unit normalization, instance-edge DAG collapse, seeded fallback) and
replayed under every selected sizing method in both kernel modes — the
flat event stream and DAG-aware scheduling with multiple competing
workflow instances.

By default the instance document is *fabricated* from a synthetic trace
via :func:`~repro.workload.wfcommons.trace_to_wfcommons` (the traces the
paper used are not public), so the cell is hermetic; point ``path`` at
any real WfCommons file to replay it instead, e.g. one downloaded from
the wfcommons/WfInstances collection.
"""

from __future__ import annotations

import json
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.experiments.factories import method_factories
from repro.experiments.report import render_table
from repro.sim.backends import EventDrivenBackend
from repro.sim.runner import run_cell
from repro.workload import WfCommonsSource, trace_to_wfcommons
from repro.workflow.nfcore import build_workflow_trace

__all__ = ["DEFAULT_METHODS", "fabricate_instance", "collect", "run"]

#: Sizey plus the two extremes of the baseline spectrum.
DEFAULT_METHODS = ("Sizey", "Witt-Percentile", "Workflow-Presets")


def fabricate_instance(
    path: str | Path, workflow: str = "iwd", seed: int = 0, scale: float = 0.1
) -> Path:
    """Write a WfCommons instance document fabricated from a synthetic trace."""
    trace = build_workflow_trace(workflow, seed=seed, scale=scale)
    path = Path(path)
    path.write_text(json.dumps(trace_to_wfcommons(trace)))
    return path


def collect(
    seed: int = 0,
    scale: float = 0.1,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    path: str | Path | None = None,
    workflow: str = "iwd",
    cluster: str = "64g:2,128g:2",
    workflow_arrival: str = "3@poisson:8",
) -> dict[str, dict[str, dict[str, object]]]:
    """``{mode: {method: summary}}`` for flat and DAG replay of the file.

    ``path=None`` fabricates a hermetic instance document from the named
    synthetic ``workflow``; an explicit path replays a real WfCommons
    file.  Both kernel modes consume the *same* ingested source, so the
    two summaries differ only by scheduling semantics.
    """
    factories = method_factories()

    def _collect_from(instance_path: Path) -> dict:
        out: dict[str, dict[str, dict[str, object]]] = {
            "flat": {},
            "dag": {},
        }
        for method in methods:
            # A Poisson trickle (not a t=0 batch) so completions feed
            # back into later predictions — otherwise every online
            # method sizes the whole file untrained and degenerates to
            # the presets.
            flat = run_cell(
                workload=WfCommonsSource(instance_path, seed=seed),
                factory=factories[method],
                backend=EventDrivenBackend(arrival="poisson:600", seed=seed),
                cluster=cluster,
            )
            out["flat"][method] = {
                "wastage_gbh": flat.total_wastage_gbh,
                "failures": flat.num_failures,
                "makespan_hours": flat.cluster.makespan_hours,
                "mean_queue_wait_hours": flat.cluster.mean_queue_wait_hours,
            }
            dag = run_cell(
                workload=WfCommonsSource(instance_path, seed=seed),
                factory=factories[method],
                backend="event",
                cluster=cluster,
                dag="trace",
                workflow_arrival=workflow_arrival,
            )
            wm = dag.workflows
            out["dag"][method] = {
                "wastage_gbh": dag.total_wastage_gbh,
                "failures": dag.num_failures,
                "makespan_hours": dag.cluster.makespan_hours,
                "mean_wf_makespan_hours": wm.mean_makespan_hours,
                "mean_stretch": wm.mean_stretch,
            }
        return out

    if path is not None:
        return _collect_from(Path(path))
    with TemporaryDirectory() as tmp:
        instance = fabricate_instance(
            Path(tmp) / f"{workflow}_wfcommons.json",
            workflow=workflow,
            seed=seed,
            scale=scale,
        )
        return _collect_from(instance)


def run(
    seed: int = 0,
    scale: float = 0.1,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    path: str | Path | None = None,
    verbose: bool = True,
) -> dict[str, dict[str, dict[str, object]]]:
    """Regenerate the WfCommons-replay cell; returns the summaries."""
    data = collect(seed=seed, scale=scale, methods=methods, path=path)
    if verbose:
        origin = str(path) if path is not None else "fabricated iwd instance"
        flat_rows = [
            [m, s["wastage_gbh"], s["failures"], s["makespan_hours"],
             s["mean_queue_wait_hours"]]
            for m, s in data["flat"].items()
        ]
        print(
            render_table(
                ["method", "wastage GBh", "failures", "makespan h",
                 "mean wait h"],
                flat_rows,
                title=f"wfcommons replay (flat event): {origin}",
            )
        )
        print()
        dag_rows = [
            [m, s["wastage_gbh"], s["failures"], s["makespan_hours"],
             s["mean_wf_makespan_hours"], s["mean_stretch"]]
            for m, s in data["dag"].items()
        ]
        print(
            render_table(
                ["method", "wastage GBh", "failures", "makespan h",
                 "mean wf makespan h", "mean stretch"],
                dag_rows,
                title="wfcommons replay (DAG, 3@poisson:8)",
            )
        )
        print()
    return data
