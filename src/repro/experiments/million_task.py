"""Million-task scale-out: the flagship sharded WfCommons-derived run.

The paper's evaluation tops out at thousands of tasks per workflow; real
scientific clusters schedule *millions*.  This cell demonstrates that
the streaming-collector + sharded-runner stack holds at that scale: a
WfCommons-derived workflow instance (~1000 tasks) is replayed as 100
tenants' worth of competing DAG instances — one million tasks total —
on a 1000-node cluster, partitioned across worker processes by
:func:`~repro.sim.runner.run_sharded`.  Each shard simulates its slice
with streaming collectors (quantile sketches + running sums, no
per-task lists), so the merged result is a compact
:class:`~repro.sim.results.RunSummary` and peak RSS stays bounded
regardless of task count.

The two numbers this cell exists to produce — wall-clock seconds and
peak resident set size — land in ``BENCH_7.json`` via
``benchmarks/test_bench_scaleout.py``; ``examples/million_task.py``
runs a reduced configuration of the same pipeline (CI smokes it with an
RSS budget assertion).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, replace
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.experiments.factories import method_factories
from repro.experiments.wfcommons_replay import fabricate_instance
from repro.sim.results import SimulationResult
from repro.sim.runner import peak_rss_mb, run_sharded
from repro.workload import WfCommonsSource

__all__ = ["ScaleConfig", "FLAGSHIP", "collect", "run", "main"]


@dataclass(frozen=True)
class ScaleConfig:
    """One scale-out cell: workload size, cluster shape, and sharding."""

    #: Synthetic workflow fabricated into the WfCommons instance document.
    workflow: str = "rnaseq"
    #: Trace subsample factor; rnaseq at 0.86 yields ~1000 tasks/instance.
    scale: float = 0.86
    seed: int = 0
    #: Total task floor — instances are added until it is met.
    tasks_target: int = 1_000_000
    nodes: int = 1000
    node_memory_gb: int = 128
    tenants: int = 100
    shards: int = 8
    #: Worker processes (None = one per shard, capped at cpu_count).
    n_workers: int | None = None
    method: str = "Workflow-Presets"
    placement: str = "first-fit"
    time_to_failure: float = 1.0
    #: Workflow-instance arrivals per hour (Poisson).
    arrival_rate: float = 200.0
    #: Existing WfCommons instance document (None = fabricate one).
    path: str | Path | None = None


#: The headline configuration: 1M tasks, 1000 nodes, 100 tenants.
FLAGSHIP = ScaleConfig()


def _collect_from(instance: Path, cfg: ScaleConfig) -> dict[str, object]:
    source = WfCommonsSource(instance, seed=cfg.seed)
    per_instance = source.n_tasks
    assert per_instance is not None and per_instance > 0
    n_instances = max(1, math.ceil(cfg.tasks_target / per_instance))
    arrival = (
        f"{n_instances}@poisson:{cfg.arrival_rate:g}@tenants:{cfg.tenants}"
    )
    cluster = f"{cfg.node_memory_gb}g:{cfg.nodes}"
    factory = method_factories()[cfg.method]

    t0 = time.perf_counter()
    result = run_sharded(
        source,
        factory,
        shards=cfg.shards,
        time_to_failure=cfg.time_to_failure,
        cluster=cluster,
        placement=cfg.placement,
        dag="trace",
        workflow_arrival=arrival,
        n_workers=cfg.n_workers,
    )
    wall_clock = time.perf_counter() - t0
    return _report(result, cfg, per_instance, n_instances, wall_clock)


def _report(
    result: SimulationResult,
    cfg: ScaleConfig,
    per_instance: int,
    n_instances: int,
    wall_clock: float,
) -> dict[str, object]:
    s = result.summary
    assert s is not None
    return {
        "workflow": cfg.workflow,
        "method": cfg.method,
        "tasks_per_instance": per_instance,
        "n_instances": n_instances,
        "n_tasks": s.n_tasks,
        "n_attempts": s.n_attempts,
        "n_failures": s.n_failures,
        "nodes": cfg.nodes,
        "tenants": cfg.tenants,
        "shards": cfg.shards,
        "wall_clock_seconds": wall_clock,
        "peak_rss_mb": peak_rss_mb(),
        "tasks_per_second": s.n_tasks / wall_clock if wall_clock else 0.0,
        "total_wastage_gbh": s.total_wastage_gbh,
        "makespan_hours": s.makespan_hours,
        "mean_queue_wait_hours": s.queue_wait.mean,
        "p99_queue_wait_hours": s.queue_wait_sketch.quantile(0.99),
        "mean_utilization": s.mean_utilization,
        "mean_wf_makespan_hours": s.workflow_makespan.mean,
        "mean_stretch": s.workflow_stretch.mean,
    }


def collect(cfg: ScaleConfig = FLAGSHIP) -> dict[str, object]:
    """Run one scale-out cell; returns the metrics row.

    ``peak_rss_mb`` is the process-lifetime high watermark of this
    process and its reaped shard workers — run the cell in a fresh
    interpreter when the absolute number matters.
    """
    if cfg.path is not None:
        return _collect_from(Path(cfg.path), cfg)
    with TemporaryDirectory() as tmp:
        instance = fabricate_instance(
            Path(tmp) / f"{cfg.workflow}_wfcommons.json",
            workflow=cfg.workflow,
            seed=cfg.seed,
            scale=cfg.scale,
        )
        return _collect_from(instance, cfg)


def run(cfg: ScaleConfig = FLAGSHIP, verbose: bool = True) -> dict[str, object]:
    """Regenerate the scale-out cell; returns (and prints) the metrics."""
    row = collect(cfg)
    if verbose:
        print(json.dumps(row, indent=1, sort_keys=True))
    return row


def main(argv: "list[str] | None" = None) -> int:
    """CLI: ``python -m repro.experiments.million_task [--tasks N ...]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="million_task",
        description=(
            "Sharded million-task scale-out run (streaming collectors); "
            "prints a JSON metrics row with wall-clock and peak RSS."
        ),
    )
    parser.add_argument("--tasks", type=int, default=FLAGSHIP.tasks_target,
                        help="total task floor (default: %(default)s)")
    parser.add_argument("--nodes", type=int, default=FLAGSHIP.nodes,
                        help="cluster nodes (default: %(default)s)")
    parser.add_argument("--tenants", type=int, default=FLAGSHIP.tenants,
                        help="distinct users (default: %(default)s)")
    parser.add_argument("--shards", type=int, default=FLAGSHIP.shards,
                        help="worker shards (default: %(default)s)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per shard)")
    parser.add_argument("--method", default=FLAGSHIP.method,
                        help="sizing method (default: %(default)s)")
    parser.add_argument("--workflow", default=FLAGSHIP.workflow,
                        help="fabricated workflow (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=FLAGSHIP.seed)
    parser.add_argument("--rss-budget-mb", type=float, default=None,
                        help="fail (exit 1) if peak RSS exceeds this")
    args = parser.parse_args(argv)

    cfg = replace(
        FLAGSHIP,
        tasks_target=args.tasks,
        nodes=args.nodes,
        tenants=args.tenants,
        shards=args.shards,
        n_workers=args.workers,
        method=args.method,
        workflow=args.workflow,
        seed=args.seed,
    )
    row = run(cfg)
    if args.rss_budget_mb is not None and row["peak_rss_mb"] > args.rss_budget_mb:
        print(
            f"FAIL: peak RSS {row['peak_rss_mb']:.0f} MB exceeds budget "
            f"{args.rss_budget_mb:.0f} MB"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
