"""Kernel phase profiles across engine modes: where does the time go?

The event kernel executes the same size→place→run→kill cycle whether it
is draining a flat FCFS queue, walking a workflow DAG, or re-queueing
preempted tasks around a node drain — but the *cost distribution* over
those phases shifts with the mode.  This cell runs one workload through
a small grid of kernel configurations with the phase profiler enabled
(:class:`~repro.obs.profile.KernelProfile`) and reports, per
configuration, the per-phase wall-time shares and the events/sec
throughput — the numbers that justify the zero-overhead-when-off design
and tell future optimization work which phase to attack first.

The grid deliberately spans the three structurally different loops:

- ``flat-batch`` — every task submitted at t=0, pure queue drain;
- ``flat-poisson`` — timed arrivals interleave ARRIVAL and COMPLETION
  events, exercising the heap phase;
- ``flat-outage`` — a scheduled node drain adds preemption/re-queue
  traffic (kill + outage phases);
- ``dag-trace`` — DAG-aware scheduling pays extra sizing waves as
  dependencies resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.factories import method_factories
from repro.experiments.report import render_table
from repro.sim.backends import EventDrivenBackend
from repro.sim.engine import OnlineSimulator
from repro.workload import parse_workload

__all__ = ["ProfileCell", "CELLS", "collect", "run"]


@dataclass(frozen=True)
class ProfileCell:
    """One profiled kernel configuration."""

    name: str
    arrival: str | None = None
    dag: str | None = None
    node_outage: tuple[str, ...] = ()
    backend_kwargs: dict = field(default_factory=dict)

    def backend(self, seed: int) -> EventDrivenBackend:
        kwargs: dict = dict(self.backend_kwargs)
        if self.arrival is not None:
            kwargs["arrival"] = self.arrival
        if self.dag is not None:
            kwargs["dag"] = self.dag
        if self.node_outage:
            kwargs["node_outage"] = self.node_outage
        return EventDrivenBackend(seed=seed, **kwargs)


CELLS: tuple[ProfileCell, ...] = (
    ProfileCell(name="flat-batch"),
    ProfileCell(name="flat-poisson", arrival="poisson:40"),
    ProfileCell(
        name="flat-outage",
        arrival="poisson:40",
        node_outage=("0.05:0.2:0",),
    ),
    ProfileCell(name="dag-trace", dag="trace"),
)


def collect(
    workflow: str = "iwd",
    method: str = "Sizey",
    scale: float = 0.2,
    seed: int = 0,
    cells: tuple[ProfileCell, ...] = CELLS,
) -> dict[str, dict]:
    """Profile every cell; returns ``{cell_name: profile_to_dict(...)}``."""
    factory = method_factories()[method]
    out: dict[str, dict] = {}
    for cell in cells:
        source = parse_workload(
            f"synthetic:{workflow}", seed=seed, scale=scale
        )
        sim = OnlineSimulator(
            source, backend=cell.backend(seed), profile=True
        )
        result = sim.run(factory())
        assert result is not None and result.profile is not None
        out[cell.name] = result.profile.to_dict()
    return out


def run(
    workflow: str = "iwd",
    method: str = "Sizey",
    scale: float = 0.2,
    seed: int = 0,
) -> dict[str, dict]:
    """Print the phase-share table per cell; returns the collected dicts."""
    profiles = collect(
        workflow=workflow, method=method, scale=scale, seed=seed
    )
    from repro.obs.profile import PHASE_ORDER

    rank = {name: i for i, name in enumerate(PHASE_ORDER)}
    phases = sorted(
        {name for prof in profiles.values() for name in prof["phases"]},
        key=lambda name: (rank.get(name, len(PHASE_ORDER)), name),
    )
    rows = []
    for cell_name, prof in profiles.items():
        wall = prof["wall_seconds"] or 1.0
        row = [cell_name, prof["n_events"], f"{prof['events_per_sec']:,.0f}"]
        row += [
            f"{prof['phases'][p]['seconds'] / wall * 100:.1f}%"
            if p in prof["phases"]
            else "-"
            for p in phases
        ]
        rows.append(row)
    print(
        render_table(
            ["cell", "events", "events/s", *phases],
            rows,
            title=(
                f"kernel phase shares: {workflow} x {method} "
                f"(scale={scale}, seed={seed})"
            ),
        )
    )
    return profiles


if __name__ == "__main__":  # pragma: no cover
    run()
