"""Module-level predictor factories.

Factories (rather than instances) guarantee every (workflow, method)
cell starts untrained, and module-level functions are picklable so the
grid runner can fan out over processes.

Every factory returns a predictor speaking the v2 contract
(:mod:`repro.sim.interface`): per-task ``predict``, vectorized
``predict_batch``, and the trace lifecycle hooks — so any of them can be
run under either simulation backend (``run_grid(..., backend="event")``).
"""

from __future__ import annotations

from typing import Callable

from repro.baselines import (
    TovarPPM,
    WittLR,
    WittPercentile,
    WittWastage,
    WorkflowPresets,
)
from repro.core.config import SizeyConfig
from repro.core.predictor import SizeyPredictor
from repro.sim.interface import MemoryPredictor

__all__ = [
    "METHOD_ORDER",
    "make_sizey",
    "make_sizey_full",
    "make_sizey_argmax",
    "make_witt_wastage",
    "make_witt_lr",
    "make_tovar_ppm",
    "make_witt_percentile",
    "make_workflow_presets",
    "method_factories",
]

#: Plot/table ordering used throughout the paper's Fig. 8.
METHOD_ORDER = (
    "Sizey",
    "Witt-Wastage",
    "Witt-LR",
    "Tovar-PPM",
    "Witt-Percentile",
    "Workflow-Presets",
)


def make_sizey(**overrides) -> SizeyPredictor:
    """Paper configuration: alpha=0, Interpolation gating (§III-A).

    Incremental training is the default here: the paper shows it is
    ~98 % faster at a ~6 % wastage premium (§III-D), which is the right
    trade for a simulation harness replaying tens of thousands of tasks.
    """
    cfg = dict(training_mode="incremental", alpha=0.0, gating="interpolation")
    cfg.update(overrides)
    return SizeyPredictor(SizeyConfig(**cfg))


def make_sizey_full() -> SizeyPredictor:
    """Fully retrained variant (Fig. 9's 'Sizey-Full')."""
    return make_sizey(training_mode="full")


def make_sizey_argmax() -> SizeyPredictor:
    """Argmax-gated variant (used for the Fig. 11 selection shares)."""
    return make_sizey(gating="argmax")


def make_witt_wastage() -> WittWastage:
    return WittWastage()


def make_witt_lr() -> WittLR:
    return WittLR()


def make_tovar_ppm() -> TovarPPM:
    return TovarPPM()


def make_witt_percentile() -> WittPercentile:
    return WittPercentile()


def make_workflow_presets() -> WorkflowPresets:
    return WorkflowPresets()


def method_factories() -> dict[str, Callable[[], MemoryPredictor]]:
    """All six methods of the paper's evaluation, in Fig. 8 order."""
    return {
        "Sizey": make_sizey,
        "Witt-Wastage": make_witt_wastage,
        "Witt-LR": make_witt_lr,
        "Tovar-PPM": make_tovar_ppm,
        "Witt-Percentile": make_witt_percentile,
        "Workflow-Presets": make_workflow_presets,
    }
