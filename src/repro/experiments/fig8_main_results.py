"""Fig. 8: the paper's main results.

One grid run — every method on every workflow at a given time-to-failure
— feeds all four panels:

- **8a/8b** total memory wastage (GBh) aggregated over the six
  workflows, at ttf = 1.0 and ttf = 0.5;
- **8c** the distribution of task failures aggregated by task type;
- **8d** the aggregated task runtimes per method.

``run_main_grid`` is also reused by the Table II regenerator (the
per-workflow breakdown of the same run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.factories import METHOD_ORDER, method_factories
from repro.experiments.report import render_distribution, render_table
from repro.sim.results import SimulationResult, aggregate_results
from repro.sim.runner import run_grid
from repro.workflow.nfcore import build_all_traces

__all__ = ["MainGrid", "run_main_grid", "run", "PAPER_FIG8A", "PAPER_FIG8B"]

#: The paper's aggregated wastage numbers, for side-by-side reporting.
PAPER_FIG8A = {
    "Sizey": 1684.21,
    "Witt-Wastage": 5437.08,
    "Witt-LR": 4754.85,
    "Tovar-PPM": 5072.26,
    "Witt-Percentile": 5767.20,
    "Workflow-Presets": 28370.77,
}
PAPER_FIG8B = {
    "Sizey": 1429.28,
    "Witt-Wastage": 4963.40,
    "Witt-LR": 3628.02,
    "Tovar-PPM": 4106.45,
    "Witt-Percentile": 4576.27,
    "Workflow-Presets": 28370.77,
}


@dataclass
class MainGrid:
    """Everything the Fig. 8 panels and Table II need from one grid run."""

    time_to_failure: float
    results: dict[str, dict[str, SimulationResult]]
    totals: dict[str, float] = field(default_factory=dict)
    runtimes: dict[str, float] = field(default_factory=dict)
    failures: dict[str, int] = field(default_factory=dict)
    failure_distributions: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for method, per_wf in self.results.items():
            agg = aggregate_results(list(per_wf.values()))
            self.totals[method] = float(agg["total_wastage_gbh"])
            self.runtimes[method] = float(agg["total_runtime_hours"])
            self.failures[method] = int(agg["num_failures"])
            self.failure_distributions[method] = agg["failure_distribution"]

    def per_workflow(self) -> dict[str, dict[str, float]]:
        """``{method: {workflow: wastage}}`` (Table II)."""
        return {
            m: {wf: r.total_wastage_gbh for wf, r in per_wf.items()}
            for m, per_wf in self.results.items()
        }

    def best_baseline(self) -> tuple[str, float]:
        """Best-performing non-Sizey method on total wastage."""
        candidates = {m: w for m, w in self.totals.items() if m != "Sizey"}
        best = min(candidates, key=candidates.get)
        return best, candidates[best]

    def sizey_reduction_vs_best_baseline(self) -> float:
        """Relative wastage reduction of Sizey vs the best baseline."""
        _, best = self.best_baseline()
        return 1.0 - self.totals["Sizey"] / best


def run_main_grid(
    time_to_failure: float = 1.0,
    seed: int = 0,
    scale: float = 1.0,
    n_workers: int = 1,
    workflows: tuple[str, ...] | None = None,
) -> MainGrid:
    """Run all six methods on all (or selected) workflows."""
    traces = build_all_traces(seed=seed, scale=scale)
    if workflows is not None:
        traces = {wf: tr for wf, tr in traces.items() if wf in workflows}
    results = run_grid(
        traces,
        method_factories(),
        time_to_failure=time_to_failure,
        n_workers=n_workers,
    )
    return MainGrid(time_to_failure=time_to_failure, results=results)


def run(
    seed: int = 0,
    scale: float = 1.0,
    n_workers: int = 1,
    verbose: bool = True,
    workflows: tuple[str, ...] | None = None,
) -> dict[str, MainGrid]:
    """Regenerate all Fig. 8 panels; returns grids keyed by ttf."""
    grids = {
        ttf: run_main_grid(
            ttf, seed=seed, scale=scale, n_workers=n_workers, workflows=workflows
        )
        for ttf in (1.0, 0.5)
    }
    if verbose:
        for ttf, paper in ((1.0, PAPER_FIG8A), (0.5, PAPER_FIG8B)):
            g = grids[ttf]
            rows = [
                [m, g.totals[m], paper[m]]
                for m in METHOD_ORDER
                if m in g.totals
            ]
            print(
                render_table(
                    ["method", "wastage GBh (ours)", "wastage GBh (paper)"],
                    rows,
                    title=f"Fig. 8{'a' if ttf == 1.0 else 'b'} — total wastage, ttf={ttf}",
                )
            )
            red = g.sizey_reduction_vs_best_baseline()
            best, _ = g.best_baseline()
            print(
                f"  Sizey vs best baseline ({best}): "
                f"{red * 100.0:.1f}% lower wastage\n"
            )
        g = grids[1.0]
        print("Fig. 8c — task failures per task type (distribution)")
        for m in METHOD_ORDER:
            if m in g.failure_distributions:
                print(f"  {m:17s} {render_distribution(g.failure_distributions[m])}")
        print("\nFig. 8d — aggregated task runtimes")
        rows = [[m, g.runtimes[m]] for m in METHOD_ORDER if m in g.runtimes]
        print(render_table(["method", "total runtime h"], rows))
    return grids
