"""Regenerators for every table and figure in the paper's evaluation.

One module per artifact:

========  =====================================================  ============================
Artifact  Paper content                                          Module
========  =====================================================  ============================
Fig. 1    peak-memory distributions of four task types           ``fig1_distributions``
Fig. 2    memory vs. input read + linear fits                    ``fig2_input_relation``
Table I   task-type counts per workflow                          ``table1_workflow_stats``
Fig. 7    CPU/memory/I-O utilisation distributions               ``fig7_utilization``
Fig. 8a   total wastage, ttf = 1.0                               ``fig8_main_results``
Fig. 8b   total wastage, ttf = 0.5                               ``fig8_main_results``
Fig. 8c   task-failure distributions                             ``fig8_main_results``
Fig. 8d   aggregated task runtimes                               ``fig8_main_results``
Table II  per-workflow wastage                                   ``table2_per_workflow``
Fig. 9    full vs incremental training time                      ``fig9_training_time``
Fig. 10   wastage vs alpha for two rnaseq tasks                  ``fig10_alpha_sweep``
Fig. 11   model-class selection shares (Argmax)                  ``fig11_model_selection``
Fig. 12   Prokka prediction-error trend                          ``fig12_error_trend``
(ours)    gating/offset/granularity/pool ablations               ``ablations``
(ours)    methods across heterogeneous cluster shapes            ``cluster_scenarios``
(ours)    sizing method x cluster x workflow arrival makespans   ``workflow_scheduling``
(ours)    method grid over an ingested WfCommons instance        ``wfcommons_replay``
========  =====================================================  ============================

All regenerators accept ``scale`` (trace subsampling fraction) and
``seed`` so the benchmark harness can trade fidelity for wall-clock.
"""

from repro.experiments.factories import METHOD_ORDER, method_factories

__all__ = ["METHOD_ORDER", "method_factories"]
