"""Plain-text rendering of experiment tables.

The harness prints the same rows/series the paper reports; these helpers
keep the formatting consistent across all regenerators.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["render_table", "render_distribution", "fmt"]


def fmt(value: object, ndigits: int = 2) -> str:
    """Format numbers compactly; pass strings through."""
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return "-"
        return f"{value:,.{ndigits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    ndigits: int = 2,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[fmt(c, ndigits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(
                c.rjust(w) if _is_numeric(c) else c.ljust(w)
                for c, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.replace(",", ""))
        return True
    except ValueError:
        return False


def render_distribution(values: np.ndarray, ndigits: int = 1) -> str:
    """One-line five-number summary, the text form of a box plot."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return "(empty)"
    q1, med, q3 = np.percentile(v, [25, 50, 75])
    return (
        f"min={fmt(v.min(), ndigits)} q1={fmt(q1, ndigits)} "
        f"median={fmt(med, ndigits)} q3={fmt(q3, ndigits)} "
        f"max={fmt(v.max(), ndigits)} (n={v.size})"
    )
