"""Fig. 7: CPU / memory / I-O utilisation distributions per workflow.

The paper's point: "all workflows yield different resource usage
patterns" — methylseq is I/O- and CPU-intensive, mag reads enormously,
iwd is lightweight.  This regenerator reports the five-number summary
per workflow per resource dimension (the textual equivalent of the
log-scale box plots).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import render_distribution
from repro.workflow.nfcore import WORKFLOW_NAMES, build_workflow_trace

__all__ = ["RESOURCES", "collect", "run"]

RESOURCES = ("cpu_percent", "peak_memory_mb", "io_read_mb", "io_write_mb")


def collect(seed: int = 0, scale: float = 1.0) -> dict[str, dict[str, np.ndarray]]:
    """``{workflow: {resource: samples}}`` over all task instances."""
    out: dict[str, dict[str, np.ndarray]] = {}
    for wf in WORKFLOW_NAMES:
        trace = build_workflow_trace(wf, seed=seed, scale=scale)
        out[wf] = {
            res: np.array([getattr(i, res) for i in trace], dtype=np.float64)
            for res in RESOURCES
        }
    return out


def run(seed: int = 0, scale: float = 1.0, verbose: bool = True):
    """Regenerate Fig. 7; returns the per-workflow per-resource samples."""
    data = collect(seed=seed, scale=scale)
    if verbose:
        for res in RESOURCES:
            print(f"Fig. 7 — {res} distribution per workflow")
            for wf in WORKFLOW_NAMES:
                print(f"  {wf:10s} {render_distribution(data[wf][res])}")
    return data


def medians(seed: int = 0, scale: float = 1.0) -> dict[str, dict[str, float]]:
    """Per-workflow medians, used by tests to check the documented
    character (methylseq write-heavy, mag read-heavy, iwd lightweight)."""
    data = collect(seed=seed, scale=scale)
    return {
        wf: {res: float(np.median(v)) for res, v in byres.items()}
        for wf, byres in data.items()
    }
