"""Table I: number of task types and average instances per type."""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.workflow.nfcore import WORKFLOW_NAMES, build_workflow_trace

__all__ = ["PAPER_TABLE_I", "run"]

#: The paper's Table I, for side-by-side comparison.
PAPER_TABLE_I = {
    "eager": (13, 121),
    "methylseq": (9, 100),
    "chipseq": (30, 82),
    "rnaseq": (30, 39),
    "mag": (8, 720),
    "iwd": (5, 332),
}


def run(seed: int = 0, scale: float = 1.0, verbose: bool = True):
    """Regenerate Table I; returns ``{workflow: (types, avg_instances)}``."""
    out: dict[str, tuple[int, float]] = {}
    rows = []
    for wf in WORKFLOW_NAMES:
        stats = build_workflow_trace(wf, seed=seed, scale=scale).stats()
        got = (int(stats["n_task_types"]), float(stats["avg_instances_per_type"]))
        out[wf] = got
        paper = PAPER_TABLE_I[wf]
        rows.append([wf, got[0], round(got[1], 1), paper[0], paper[1]])
    if verbose:
        print(
            render_table(
                ["workflow", "types", "avg inst", "paper types", "paper avg"],
                rows,
                title="Table I — task types and instances per workflow",
                ndigits=1,
            )
        )
    return out
