"""Fig. 9: training time of full retraining vs incremental updates.

The paper reports a median of 1.09 s per full retraining (including
hyper-parameter optimisation) against 17.5 ms for incremental updates —
a 98.39 % reduction — and a ~6 % wastage premium for the incremental
variant (§III-D).  This regenerator replays one or more workflows with
both Sizey variants, collecting per-update training durations from the
predictor's own clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.factories import make_sizey, make_sizey_full
from repro.experiments.report import render_table
from repro.sim.engine import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace

__all__ = ["TrainingTimeResult", "run"]


@dataclass(frozen=True)
class TrainingTimeResult:
    workflow: str
    median_full_ms: float
    median_incremental_ms: float
    wastage_full_gbh: float
    wastage_incremental_gbh: float

    @property
    def time_reduction(self) -> float:
        """Relative speed-up of incremental updates (paper: 98.39 %)."""
        return 1.0 - self.median_incremental_ms / self.median_full_ms

    @property
    def wastage_premium(self) -> float:
        """Relative extra wastage of the incremental variant (paper: ~6 %)."""
        return self.wastage_incremental_gbh / self.wastage_full_gbh - 1.0


def run(
    workflows: tuple[str, ...] = ("rnaseq", "iwd"),
    seed: int = 0,
    scale: float = 0.3,
    verbose: bool = True,
) -> dict[str, TrainingTimeResult]:
    """Regenerate Fig. 9 on a subset of workflows.

    Full retraining costs grow with history length, so the default scale
    keeps the comparison affordable; the *ratio* between the two modes is
    what the figure demonstrates.
    """
    out: dict[str, TrainingTimeResult] = {}
    for wf in workflows:
        trace = build_workflow_trace(wf, seed=seed, scale=scale)
        sizey_full = make_sizey_full()
        res_full = OnlineSimulator(trace).run(sizey_full)
        sizey_inc = make_sizey()
        res_inc = OnlineSimulator(trace).run(sizey_inc)
        out[wf] = TrainingTimeResult(
            workflow=wf,
            median_full_ms=float(np.median(sizey_full.training_times_s) * 1e3),
            median_incremental_ms=float(np.median(sizey_inc.training_times_s) * 1e3),
            wastage_full_gbh=res_full.total_wastage_gbh,
            wastage_incremental_gbh=res_inc.total_wastage_gbh,
        )
    if verbose:
        rows = [
            [
                wf,
                r.median_full_ms,
                r.median_incremental_ms,
                r.time_reduction * 100.0,
                r.wastage_premium * 100.0,
            ]
            for wf, r in out.items()
        ]
        print(
            render_table(
                [
                    "workflow",
                    "full ms (median)",
                    "incremental ms",
                    "time reduction %",
                    "wastage premium %",
                ],
                rows,
                title="Fig. 9 — Sizey training time per update "
                "(paper: 1090 ms vs 17.5 ms, -98.39%)",
            )
        )
    return out
