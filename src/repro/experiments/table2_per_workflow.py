"""Table II: per-workflow memory wastage for all methods."""

from __future__ import annotations

from repro.experiments.factories import METHOD_ORDER
from repro.experiments.fig8_main_results import MainGrid, run_main_grid
from repro.experiments.report import render_table
from repro.workflow.nfcore import WORKFLOW_NAMES

__all__ = ["PAPER_TABLE_II", "run", "winners"]

#: The paper's Table II (GBh), for side-by-side comparison.
PAPER_TABLE_II = {
    "Sizey": {"methylseq": 631.62, "chipseq": 79.38, "eager": 678.19,
              "rnaseq": 43.62, "mag": 251.05, "iwd": 0.36},
    "Witt-Wastage": {"methylseq": 3565.11, "chipseq": 214.60, "eager": 491.16,
                     "rnaseq": 176.39, "mag": 323.62, "iwd": 0.55},
    "Witt-LR": {"methylseq": 988.90, "chipseq": 136.33, "eager": 3585.19,
                "rnaseq": 57.91, "mag": 301.00, "iwd": 2.94},
    "Tovar-PPM": {"methylseq": 4080.60, "chipseq": 211.02, "eager": 624.14,
                  "rnaseq": 195.26, "mag": 309.36, "iwd": 16.70},
    "Witt-Percentile": {"methylseq": 4372.19, "chipseq": 94.70, "eager": 860.16,
                        "rnaseq": 128.90, "mag": 309.81, "iwd": 1.44},
    "Workflow-Presets": {"methylseq": 22596.14, "chipseq": 260.61, "eager": 2304.53,
                         "rnaseq": 1238.62, "mag": 1955.01, "iwd": 15.86},
}


def winners(per_workflow: dict[str, dict[str, float]]) -> dict[str, str]:
    """Lowest-wastage method per workflow."""
    out: dict[str, str] = {}
    workflows = next(iter(per_workflow.values())).keys()
    for wf in workflows:
        out[wf] = min(per_workflow, key=lambda m: per_workflow[m][wf])
    return out


def run(
    seed: int = 0,
    scale: float = 1.0,
    n_workers: int = 1,
    verbose: bool = True,
    grid: MainGrid | None = None,
) -> dict[str, dict[str, float]]:
    """Regenerate Table II; accepts a pre-computed Fig. 8 grid to reuse."""
    if grid is None:
        grid = run_main_grid(1.0, seed=seed, scale=scale, n_workers=n_workers)
    table = grid.per_workflow()
    if verbose:
        wfs = [wf for wf in WORKFLOW_NAMES if wf in next(iter(table.values()))]
        rows = [
            [m, *[table[m][wf] for wf in wfs]] for m in METHOD_ORDER if m in table
        ]
        print(
            render_table(
                ["method", *wfs],
                rows,
                title="Table II — wastage (GBh) per workflow",
            )
        )
        won = winners(table)
        sizey_wins = sum(1 for wf, m in won.items() if m == "Sizey")
        print(f"  Sizey lowest in {sizey_wins}/{len(won)} workflows; winners: {won}")
    return table
