"""Fig. 12: Sizey's relative prediction error over 1171 Prokka runs.

The paper plots the raw (un-offset) relative memory prediction error
over the Prokka task's executions in the mag workflow; a regression
trend with its 95 % confidence interval shows the error declining as
online learning incorporates more completions.

We reuse the predictor's internal raw-prediction log (pre-offset gated
estimates vs. actual peaks) and fit an OLS line to error-vs-sequence;
the slope's 95 % CI comes from the standard OLS slope variance
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.experiments.factories import make_sizey
from repro.sim.engine import OnlineSimulator
from repro.workflow.nfcore import build_workflow_trace

__all__ = ["ErrorTrend", "run"]


@dataclass(frozen=True)
class ErrorTrend:
    task: str
    n: int
    errors_percent: np.ndarray
    slope_per_100: float
    slope_ci95: tuple[float, float]
    first_half_mean: float
    second_half_mean: float

    @property
    def declining(self) -> bool:
        """Whether the fitted trend slopes downward."""
        return self.slope_per_100 < 0.0


def run(
    task: str = "Prokka",
    workflow: str = "mag",
    seed: int = 0,
    scale: float = 1.0,
    verbose: bool = True,
) -> ErrorTrend:
    """Regenerate Fig. 12; returns the fitted error trend."""
    trace = build_workflow_trace(workflow, seed=seed, scale=scale)
    sizey = make_sizey()
    OnlineSimulator(trace).run(sizey)
    log = sizey.raw_prediction_log.get(task, [])
    if len(log) < 10:
        raise RuntimeError(
            f"only {len(log)} raw predictions recorded for {task!r}; "
            "increase scale"
        )
    raw = np.array([entry[1] for entry in log])
    actual = np.array([entry[2] for entry in log])
    errors = np.abs(raw - actual) / actual * 100.0
    x = np.arange(errors.shape[0], dtype=np.float64)
    fit = stats.linregress(x, errors)
    # 95% CI of the slope, scaled to "per 100 executions" for readability.
    t_crit = stats.t.ppf(0.975, df=errors.shape[0] - 2)
    ci = (
        (fit.slope - t_crit * fit.stderr) * 100.0,
        (fit.slope + t_crit * fit.stderr) * 100.0,
    )
    half = errors.shape[0] // 2
    trend = ErrorTrend(
        task=task,
        n=errors.shape[0],
        errors_percent=errors,
        slope_per_100=fit.slope * 100.0,
        slope_ci95=ci,
        first_half_mean=float(errors[:half].mean()),
        second_half_mean=float(errors[half:].mean()),
    )
    if verbose:
        print(
            f"Fig. 12 — {task} relative prediction error over {trend.n} "
            f"executions (raw, no offset)\n"
            f"  first-half mean error : {trend.first_half_mean:6.2f} %\n"
            f"  second-half mean error: {trend.second_half_mean:6.2f} %\n"
            f"  trend slope           : {trend.slope_per_100:+.3f} %-points "
            f"per 100 executions (95% CI [{ci[0]:+.3f}, {ci[1]:+.3f}])\n"
            f"  declining             : {trend.declining}"
        )
    return trend
