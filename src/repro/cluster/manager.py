"""Cluster resource manager: placement and strict limit enforcement.

Scheduling policy itself is out of the paper's scope (assumption A2 —
ordering and node assignment belong to the resource manager), so this
manager delegates node choice to a pluggable
:class:`~repro.cluster.policies.PlacementPolicy` (first-fit by default,
the seed behaviour).  What the evaluation *does* depend on is captured
faithfully:

- strict memory limits: a task whose true peak exceeds its allocation is
  killed (assumption A3);
- allocation requests are capped at the capacity of the largest node
  that could ever host the task — the retry policy "doubles until the
  machine resources are exhausted" (§II-E), so the manager exposes the
  cap;
- placement bookkeeping so utilisation can be inspected.

The cluster may be heterogeneous: pass ``pools`` as ``(config, count)``
pairs (or use :meth:`ResourceManager.from_spec` with a compact string
such as ``"128g:4,256g:4"``).  The original single-config signature
keeps working and still builds the paper's eight identical 128 GB EPYC
nodes by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Sequence

from repro.cluster.machine import (
    EPYC_7282_128G,
    Machine,
    MachineConfig,
    parse_cluster_spec,
)
from repro.cluster.policies import (
    FirstFit,
    PlacementPolicy,
    resolve_placement,
)

__all__ = ["ResourceManager", "ExecutionVerdict"]


@dataclass(frozen=True)
class ExecutionVerdict:
    """Result of executing one attempt under a strict memory limit."""

    success: bool
    node_id: int
    allocated_mb: float
    #: hours the attempt occupied its allocation (full runtime on
    #: success; runtime * time_to_failure on a kill)
    occupied_hours: float


class ResourceManager:
    """A cluster of nodes with strict memory limits.

    Parameters
    ----------
    config:
        Node type (defaults to the paper's 128 GB EPYC nodes).  Ignored
        when ``pools`` is given.
    n_nodes:
        Cluster size (paper: 8).  Ignored when ``pools`` is given.
    pools:
        Heterogeneous node pools as ``(MachineConfig, count)`` pairs;
        nodes are numbered consecutively in pool order.
    placement:
        Node-choice policy: a registered name (``"first-fit"``,
        ``"best-fit"``, ``"worst-fit"``) or a
        :class:`~repro.cluster.policies.PlacementPolicy` instance.
    """

    def __init__(
        self,
        config: MachineConfig = EPYC_7282_128G,
        n_nodes: int = 8,
        *,
        pools: Sequence[tuple[MachineConfig, int]] | None = None,
        placement: str | PlacementPolicy = "first-fit",
    ) -> None:
        if pools is None:
            if n_nodes < 1:
                raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
            pools = [(config, n_nodes)]
        self.pools: list[tuple[MachineConfig, int]] = []
        self.nodes: list[Machine] = []
        for cfg, count in pools:
            if count < 1:
                raise ValueError(
                    f"pool count must be >= 1, got {count} for {cfg.name!r}"
                )
            self.pools.append((cfg, int(count)))
            for _ in range(count):
                self.nodes.append(
                    Machine(config=cfg, node_id=len(self.nodes))
                )
        # Back-compat: the single-config attribute now names the first
        # pool's node type (the only one, for homogeneous clusters).
        self.config = self.pools[0][0]
        self.placement = resolve_placement(placement)
        self._next_task_id = 0
        # The node list is fixed for the manager's lifetime, so the
        # largest capacity is too; the event kernel reads it once per
        # sized task, which made the per-call max() measurable.
        self._max_allocation_mb = max(
            node.config.memory_mb for node in self.nodes
        )
        #: Cluster-state generation: bumped whenever capacity can *grow*
        #: (a release, an outage transition, a full reset).  Placement
        #: failures are cached against it — see :meth:`try_place`.
        self.generation = 0
        self._fail_gen = -1
        self._fail_mb = 0.0
        self._fail_exclude: frozenset[int] = frozenset()

    @classmethod
    def from_spec(
        cls,
        spec: str,
        *,
        placement: str | PlacementPolicy = "first-fit",
    ) -> "ResourceManager":
        """Build a manager from a cluster spec string like ``"128g:4,256g:4"``."""
        return cls(pools=parse_cluster_spec(spec), placement=placement)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the cluster mixes more than one node capacity."""
        return len({node.config.memory_mb for node in self.nodes}) > 1

    @property
    def max_allocation_mb(self) -> float:
        """The largest allocation any single task can receive.

        On a heterogeneous cluster this is the capacity of the *largest*
        node — the only node type that bounds what a task could ever be
        granted.
        """
        return self._max_allocation_mb

    def node_capacities_mb(self) -> dict[int, float]:
        """Per-node memory capacity, keyed by node id."""
        return {node.node_id: node.config.memory_mb for node in self.nodes}

    def clamp_allocation(self, request_mb: float) -> float:
        """Clamp a request to (0, largest-node capacity]."""
        return float(min(max(request_mb, 1.0), self.max_allocation_mb))

    def next_task_id(self) -> int:
        """Hand out a fresh cluster-unique task id (monotonic per run)."""
        task_id = self._next_task_id
        self._next_task_id += 1
        return task_id

    def invalidate_placement(self) -> None:
        """Bump the cluster-state generation, voiding cached failures.

        Callers must invoke this whenever free capacity can *increase* —
        a task release (completion, kill, preemption), an outage
        transition, a reset.  Allocations only shrink capacity, so they
        never need a bump: a cached "nothing >= A fits" only becomes
        more true.
        """
        self.generation += 1

    def release_all(self) -> None:
        """Reset all allocation bookkeeping to a pristine state.

        Drops every live reservation and restarts the task-id counter, so
        one manager can back repeated ``run()`` calls without leaking
        state (or unbounded task ids) between simulations.
        """
        for node in self.nodes:
            node.running.clear()
            node.allocated_mb = 0.0
        self._next_task_id = 0
        self.generation += 1

    def try_place(
        self,
        memory_mb: float,
        policy: PlacementPolicy | None = None,
        exclude: "Collection[int] | None" = None,
    ) -> Machine | None:
        """Policy-driven placement that returns ``None`` instead of raising.

        Used by the event-driven simulation kernel, where a request that
        does not currently fit simply stays queued until capacity frees
        up.  ``policy`` overrides the manager's configured policy for
        one call; ``exclude`` hides the named node ids from the policy —
        how the kernel pauses placement on drained nodes.

        Failed scans are cached: a miss for ``A`` MB at generation ``g``
        proves no non-excluded node fits ``A``, and — because the
        shipped policies fail iff no node has room, and capacity only
        grows at an :meth:`invalidate_placement` bump — every later
        probe at the same generation for ``>= A`` MB over the same or a
        larger exclude set can short-circuit to ``None`` without
        touching a node.  A one-call ``policy`` override bypasses the
        cache entirely (a custom policy may fail for its own reasons).
        """
        if policy is None:
            if self._fail_gen == self.generation and memory_mb >= self._fail_mb:
                stored = self._fail_exclude
                # The certificate covers every node outside ``stored``;
                # a probe excluding a superset scans a subset of those.
                if not stored or (
                    exclude is not None and stored.issubset(exclude)
                ):
                    return None
            nodes = self.nodes
            if exclude:
                nodes = [n for n in nodes if n.node_id not in exclude]
            placement = self.placement
            if type(placement) is FirstFit:
                # Inlined FirstFit.select (the default policy; one scan
                # per dispatch on the kernel hot path).
                node = None
                for cand in nodes:
                    if (
                        memory_mb
                        <= cand.config.memory_mb - cand.allocated_mb + 1e-9
                    ):
                        node = cand
                        break
            else:
                node = placement.select(nodes, memory_mb)
            if node is None:
                self._fail_gen = self.generation
                self._fail_mb = memory_mb
                self._fail_exclude = (
                    frozenset(exclude) if exclude else frozenset()
                )
            return node
        nodes = self.nodes
        if exclude:
            nodes = [n for n in nodes if n.node_id not in exclude]
        return policy.select(nodes, memory_mb)

    def place(self, memory_mb: float) -> Machine:
        """Policy-driven placement; frees are logical so capacity returns.

        Raises ``MemoryError`` when no node can currently fit the request
        — callers in the serial replay execute tasks one at a time, so
        this only triggers for requests beyond every node's capacity.
        """
        node = self.placement.select(self.nodes, memory_mb)
        if node is None:
            raise MemoryError(
                f"no node can fit {memory_mb:.0f} MB "
                f"(largest node capacity {self.max_allocation_mb:.0f} MB)"
            )
        return node

    def execute_attempt(
        self,
        *,
        allocated_mb: float,
        true_peak_mb: float,
        runtime_hours: float,
        time_to_failure: float = 1.0,
    ) -> ExecutionVerdict:
        """Run one attempt under assumption A3.

        The task succeeds iff its true peak fits in the allocation; an
        under-allocated task is killed after ``time_to_failure`` of its
        runtime (the paper's simulation parameter: 1.0 = fails at the
        end, 0.5 = fails halfway).
        """
        if not 0.0 < time_to_failure <= 1.0:
            raise ValueError(
                f"time_to_failure must be in (0, 1], got {time_to_failure}"
            )
        allocated_mb = self.clamp_allocation(allocated_mb)
        node = self.place(allocated_mb)
        task_id = self.next_task_id()
        node.allocate(task_id, allocated_mb)
        try:
            success = allocated_mb >= true_peak_mb
            occupied = runtime_hours if success else runtime_hours * time_to_failure
            return ExecutionVerdict(
                success=success,
                node_id=node.node_id,
                allocated_mb=allocated_mb,
                occupied_hours=occupied,
            )
        finally:
            node.release(task_id)
            self.generation += 1
