"""Cluster resource manager: placement and strict limit enforcement.

Scheduling policy itself is out of the paper's scope (assumption A2 —
ordering and node assignment belong to the resource manager), so this
manager implements a deliberately simple first-fit placement.  What the
evaluation *does* depend on is captured faithfully:

- strict memory limits: a task whose true peak exceeds its allocation is
  killed (assumption A3);
- allocation requests are capped at node capacity — the retry policy
  "doubles until the machine resources are exhausted" (§II-E), so the
  manager exposes the cap;
- placement bookkeeping so utilisation can be inspected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import EPYC_7282_128G, Machine, MachineConfig

__all__ = ["ResourceManager", "ExecutionVerdict"]


@dataclass(frozen=True)
class ExecutionVerdict:
    """Result of executing one attempt under a strict memory limit."""

    success: bool
    node_id: int
    allocated_mb: float
    #: hours the attempt occupied its allocation (full runtime on
    #: success; runtime * time_to_failure on a kill)
    occupied_hours: float


class ResourceManager:
    """A small cluster of identical nodes with strict memory limits.

    Parameters
    ----------
    config:
        Node type (defaults to the paper's 128 GB EPYC nodes).
    n_nodes:
        Cluster size (paper: 8).
    """

    def __init__(
        self, config: MachineConfig = EPYC_7282_128G, n_nodes: int = 8
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.config = config
        self.nodes = [Machine(config=config, node_id=i) for i in range(n_nodes)]
        self._next_task_id = 0

    @property
    def max_allocation_mb(self) -> float:
        """The largest allocation any single task can receive (node size)."""
        return self.config.memory_mb

    def clamp_allocation(self, request_mb: float) -> float:
        """Clamp a request to (0, node capacity]."""
        return float(min(max(request_mb, 1.0), self.max_allocation_mb))

    def next_task_id(self) -> int:
        """Hand out a fresh cluster-unique task id (monotonic per run)."""
        task_id = self._next_task_id
        self._next_task_id += 1
        return task_id

    def release_all(self) -> None:
        """Reset all allocation bookkeeping to a pristine state.

        Drops every live reservation and restarts the task-id counter, so
        one manager can back repeated ``run()`` calls without leaking
        state (or unbounded task ids) between simulations.
        """
        for node in self.nodes:
            node.running.clear()
            node.allocated_mb = 0.0
        self._next_task_id = 0

    def try_place(self, memory_mb: float) -> Machine | None:
        """First-fit placement that returns ``None`` instead of raising.

        Used by the event-driven backend, where a request that does not
        currently fit simply stays queued until capacity frees up.
        """
        for node in self.nodes:
            if node.can_fit(memory_mb):
                return node
        return None

    def place(self, memory_mb: float) -> Machine:
        """First-fit placement; frees are logical so capacity always returns.

        Raises ``MemoryError`` when no node can currently fit the request
        — callers in the simulator execute tasks one at a time, so this
        only triggers for requests beyond node capacity.
        """
        for node in self.nodes:
            if node.can_fit(memory_mb):
                return node
        raise MemoryError(
            f"no node can fit {memory_mb:.0f} MB "
            f"(node capacity {self.config.memory_mb:.0f} MB)"
        )

    def execute_attempt(
        self,
        *,
        allocated_mb: float,
        true_peak_mb: float,
        runtime_hours: float,
        time_to_failure: float = 1.0,
    ) -> ExecutionVerdict:
        """Run one attempt under assumption A3.

        The task succeeds iff its true peak fits in the allocation; an
        under-allocated task is killed after ``time_to_failure`` of its
        runtime (the paper's simulation parameter: 1.0 = fails at the
        end, 0.5 = fails halfway).
        """
        if not 0.0 < time_to_failure <= 1.0:
            raise ValueError(
                f"time_to_failure must be in (0, 1], got {time_to_failure}"
            )
        allocated_mb = self.clamp_allocation(allocated_mb)
        node = self.place(allocated_mb)
        task_id = self.next_task_id()
        node.allocate(task_id, allocated_mb)
        try:
            success = allocated_mb >= true_peak_mb
            occupied = runtime_hours if success else runtime_hours * time_to_failure
            return ExecutionVerdict(
                success=success,
                node_id=node.node_id,
                allocated_mb=allocated_mb,
                occupied_hours=occupied,
            )
        finally:
            node.release(task_id)
