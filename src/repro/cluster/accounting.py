"""Wastage accounting: the evaluation's headline metric.

The paper reports *memory wastage over time* in gigabyte-hours (GBh).
Definition used here (matching the paper's semantics):

- A **successful** attempt wastes ``(allocated - peak) * runtime`` — the
  over-provisioned slice of memory is held for the task's whole runtime.
- A **failed** attempt (under-allocation, killed at the limit) wastes
  ``allocated * time_to_failure`` — everything that was allocated was
  held without producing a result, for the fraction of the runtime the
  task survived.

Total runtime per method (Fig. 8d) is the sum of successful runtimes
plus the time lost in failed attempts — which is why failure-prone
methods show higher aggregate runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import defaultdict

__all__ = ["AttemptOutcome", "WastageLedger"]

_MB_PER_GB = 1024.0


@dataclass(frozen=True)
class AttemptOutcome:
    """Outcome of one execution attempt of one task instance."""

    task_type: str
    workflow: str
    instance_id: int
    attempt: int
    allocated_mb: float
    peak_memory_mb: float
    runtime_hours: float
    success: bool
    wastage_gbh: float

    @property
    def over_allocation_mb(self) -> float:
        return max(self.allocated_mb - self.peak_memory_mb, 0.0)


class WastageLedger:
    """Accumulates wastage, runtime, and failure statistics per task type.

    With ``keep_outcomes=False`` the per-attempt :class:`AttemptOutcome`
    list is dropped and only the running aggregates are maintained —
    the streaming-collector mode for million-task runs, where the
    outcome list would be the largest allocation of the whole process.
    Totals, per-type breakdowns, and :meth:`merge` behave identically
    either way.
    """

    def __init__(self, keep_outcomes: bool = True) -> None:
        self.keep_outcomes = keep_outcomes
        # Columnar storage: one plain tuple per attempt, in
        # :class:`AttemptOutcome` field order.  Building the frozen
        # dataclass per attempt was a top-five cost of the kernel hot
        # path; the object view is materialized lazily (and cached) by
        # :attr:`outcomes`.
        self._outcomes: list[tuple] = []
        self._mat: list[AttemptOutcome] | None = None
        self._wastage_by_type: dict[str, float] = defaultdict(float)
        self._failures_by_type: dict[str, int] = defaultdict(int)
        self._runtime_hours = 0.0
        self._total_wastage = 0.0
        self._n_attempts = 0

    def record_success(
        self,
        task_type: str,
        workflow: str,
        instance_id: int,
        attempt: int,
        allocated_mb: float,
        peak_memory_mb: float,
        runtime_hours: float,
    ) -> AttemptOutcome:
        if allocated_mb < peak_memory_mb - 1e-9:
            raise ValueError(
                "successful attempt cannot have allocated < peak "
                f"({allocated_mb:.1f} < {peak_memory_mb:.1f} MB)"
            )
        wastage = (allocated_mb - peak_memory_mb) / _MB_PER_GB * runtime_hours
        # Constructed via __dict__ rather than the generated __init__:
        # the frozen dataclass pays one object.__setattr__ per field.
        out = object.__new__(AttemptOutcome)
        out.__dict__.update(
            task_type=task_type,
            workflow=workflow,
            instance_id=instance_id,
            attempt=attempt,
            allocated_mb=allocated_mb,
            peak_memory_mb=peak_memory_mb,
            runtime_hours=runtime_hours,
            success=True,
            wastage_gbh=wastage,
        )
        if self.keep_outcomes:
            self._outcomes.append(
                (
                    task_type,
                    workflow,
                    instance_id,
                    attempt,
                    allocated_mb,
                    peak_memory_mb,
                    runtime_hours,
                    True,
                    wastage,
                )
            )
        self._wastage_by_type[task_type] += wastage
        self._total_wastage += wastage
        self._runtime_hours += runtime_hours
        self._n_attempts += 1
        return out

    def record_failure(
        self,
        task_type: str,
        workflow: str,
        instance_id: int,
        attempt: int,
        allocated_mb: float,
        peak_memory_mb: float,
        time_to_failure_hours: float,
    ) -> AttemptOutcome:
        if allocated_mb >= peak_memory_mb:
            raise ValueError(
                "failed attempt requires allocated < peak "
                f"({allocated_mb:.1f} >= {peak_memory_mb:.1f} MB)"
            )
        # The whole allocation was wasted for as long as the task ran.
        wastage = allocated_mb / _MB_PER_GB * time_to_failure_hours
        out = object.__new__(AttemptOutcome)
        out.__dict__.update(
            task_type=task_type,
            workflow=workflow,
            instance_id=instance_id,
            attempt=attempt,
            allocated_mb=allocated_mb,
            peak_memory_mb=peak_memory_mb,
            runtime_hours=time_to_failure_hours,
            success=False,
            wastage_gbh=wastage,
        )
        if self.keep_outcomes:
            self._outcomes.append(
                (
                    task_type,
                    workflow,
                    instance_id,
                    attempt,
                    allocated_mb,
                    peak_memory_mb,
                    time_to_failure_hours,
                    False,
                    wastage,
                )
            )
        self._wastage_by_type[task_type] += wastage
        self._total_wastage += wastage
        self._runtime_hours += time_to_failure_hours
        self._n_attempts += 1
        self._failures_by_type[task_type] += 1
        return out

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def outcomes(self) -> list[AttemptOutcome]:
        """Materialized :class:`AttemptOutcome` view of the stored rows.

        Rows are kept as plain tuples during a run (hot-path append);
        the dataclass objects are built on first access and cached —
        the length check rebuilds whenever new rows arrived since.
        """
        rows = self._outcomes
        mat = self._mat
        if mat is None or len(mat) != len(rows):
            new = object.__new__
            mat = []
            append = mat.append
            for row in rows:
                o = new(AttemptOutcome)
                o.__dict__.update(
                    task_type=row[0],
                    workflow=row[1],
                    instance_id=row[2],
                    attempt=row[3],
                    allocated_mb=row[4],
                    peak_memory_mb=row[5],
                    runtime_hours=row[6],
                    success=row[7],
                    wastage_gbh=row[8],
                )
                append(o)
            self._mat = mat
        return list(mat)

    @property
    def total_wastage_gbh(self) -> float:
        return self._total_wastage

    @property
    def total_runtime_hours(self) -> float:
        return self._runtime_hours

    @property
    def num_failures(self) -> int:
        return sum(self._failures_by_type.values())

    @property
    def num_attempts(self) -> int:
        """Total attempts committed — valid even with dropped outcomes."""
        return self._n_attempts

    def wastage_by_task_type(self) -> dict[str, float]:
        return dict(self._wastage_by_type)

    def failures_by_task_type(self) -> dict[str, int]:
        return dict(self._failures_by_type)

    def merge(self, other: "WastageLedger") -> "WastageLedger":
        """Fold ``other`` into this ledger (multi-workflow or shard merge).

        Aggregates come from ``other``'s running counters, so merging
        works whether or not either side kept its outcome list; outcome
        lists concatenate when present.
        """
        if self.keep_outcomes:
            self._outcomes.extend(other._outcomes)
        for t, w in other._wastage_by_type.items():
            self._wastage_by_type[t] += w
        for t, n in other._failures_by_type.items():
            self._failures_by_type[t] += n
        self._total_wastage += other._total_wastage
        self._runtime_hours += other._runtime_hours
        self._n_attempts += other._n_attempts
        return self
