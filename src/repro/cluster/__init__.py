"""Simulated cluster substrate.

Models the resource-manager side of the paper's setup: machines with
fixed memory capacity, strict enforcement of memory limits (assumption
A3: "the resource manager enforces strict resource limits on memory
allocations, resulting in a failed task execution when exceeding these
limits"), and the GBh wastage ledger that the evaluation's headline
metric is computed from.
"""

from repro.cluster.accounting import AttemptOutcome, WastageLedger
from repro.cluster.machine import (
    Machine,
    MachineConfig,
    parse_cluster_spec,
    parse_memory_mb,
)
from repro.cluster.manager import ResourceManager
from repro.cluster.policies import (
    BestFit,
    FirstFit,
    PlacementPolicy,
    WorstFit,
    placement_names,
    register_placement,
    resolve_placement,
)

__all__ = [
    "MachineConfig",
    "Machine",
    "ResourceManager",
    "WastageLedger",
    "AttemptOutcome",
    "parse_cluster_spec",
    "parse_memory_mb",
    "PlacementPolicy",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "placement_names",
    "register_placement",
    "resolve_placement",
]
