"""Simulated cluster substrate.

Models the resource-manager side of the paper's setup: machines with
fixed memory capacity, strict enforcement of memory limits (assumption
A3: "the resource manager enforces strict resource limits on memory
allocations, resulting in a failed task execution when exceeding these
limits"), and the GBh wastage ledger that the evaluation's headline
metric is computed from.
"""

from repro.cluster.accounting import AttemptOutcome, WastageLedger
from repro.cluster.machine import Machine, MachineConfig
from repro.cluster.manager import ResourceManager

__all__ = [
    "MachineConfig",
    "Machine",
    "ResourceManager",
    "WastageLedger",
    "AttemptOutcome",
]
