"""Pluggable node-placement policies.

The paper treats node assignment as the resource manager's business
(assumption A2), and its evaluation only ever needed first-fit on eight
identical nodes.  On a heterogeneous cluster the policy starts to
matter: best-fit packs small tasks onto small nodes and keeps the big
nodes free for tasks only they can host, while worst-fit spreads load.
:class:`PlacementPolicy` is the seam — any object with a ``name`` and a
``select(nodes, memory_mb)`` method works, and the three classic
policies ship ready-made:

- ``"first-fit"`` — the first node (in node-id order) with room; this is
  the seed behaviour and the default everywhere.
- ``"best-fit"`` — the fitting node with the least free memory
  (tightest fit; ties broken by node id).
- ``"worst-fit"`` — the fitting node with the most free memory
  (ties broken by node id).

All three are deterministic, which the simulation backends rely on.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.cluster.machine import Machine

__all__ = [
    "PlacementPolicy",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "register_placement",
    "placement_names",
    "resolve_placement",
]


@runtime_checkable
class PlacementPolicy(Protocol):
    """Chooses which node hosts an allocation request.

    ``select`` returns the chosen node, or ``None`` when no node
    currently has room — the caller decides whether that means "queue"
    (event backend) or "error" (serial replay).  Implementations must be
    deterministic for a given node state.
    """

    #: Registry / CLI name of the policy.
    name: str

    def select(
        self, nodes: Sequence[Machine], memory_mb: float
    ) -> Machine | None:
        ...


class FirstFit:
    """First node in node-id order with room (seed behaviour)."""

    name = "first-fit"

    def select(
        self, nodes: Sequence[Machine], memory_mb: float
    ) -> Machine | None:
        # Inlined Machine.can_fit (a method + property per probe): this
        # runs for every placement scan on the kernel hot path.
        for node in nodes:
            if memory_mb <= node.config.memory_mb - node.allocated_mb + 1e-9:
                return node
        return None


class BestFit:
    """Fitting node with the least free memory (tightest fit)."""

    name = "best-fit"

    def select(
        self, nodes: Sequence[Machine], memory_mb: float
    ) -> Machine | None:
        fitting = [n for n in nodes if n.can_fit(memory_mb)]
        if not fitting:
            return None
        return min(fitting, key=lambda n: (n.free_mb, n.node_id))


class WorstFit:
    """Fitting node with the most free memory (spreads load)."""

    name = "worst-fit"

    def select(
        self, nodes: Sequence[Machine], memory_mb: float
    ) -> Machine | None:
        fitting = [n for n in nodes if n.can_fit(memory_mb)]
        if not fitting:
            return None
        return min(fitting, key=lambda n: (-n.free_mb, n.node_id))


_REGISTRY: dict[str, Callable[[], PlacementPolicy]] = {
    "first-fit": FirstFit,
    "best-fit": BestFit,
    "worst-fit": WorstFit,
}


def register_placement(
    name: str, factory: Callable[[], PlacementPolicy]
) -> None:
    """Make ``factory()`` addressable as ``placement=name`` everywhere."""
    if not name:
        raise ValueError("placement policy name must be non-empty")
    _REGISTRY[name] = factory


def placement_names() -> tuple[str, ...]:
    """Registered policy names (CLI choices), in registration order."""
    return tuple(_REGISTRY)


def resolve_placement(
    placement: str | PlacementPolicy,
) -> PlacementPolicy:
    """Turn a registry name or a ready-made policy into an instance."""
    if isinstance(placement, str):
        try:
            return _REGISTRY[placement]()
        except KeyError:
            raise ValueError(
                f"unknown placement policy {placement!r}; "
                f"registered: {sorted(_REGISTRY)}"
            ) from None
    if not isinstance(placement, PlacementPolicy):
        raise TypeError(
            f"placement must be a name or PlacementPolicy, "
            f"got {type(placement)!r}"
        )
    return placement
