"""Machine model: configurations and allocation state.

The paper's testbed is eight identical nodes (AMD EPYC 7282, 128 GB
DDR4).  :class:`MachineConfig` describes a node type;
:class:`Machine` tracks the live allocation state of one node so the
resource manager can enforce capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MachineConfig", "Machine", "EPYC_7282_128G"]


@dataclass(frozen=True)
class MachineConfig:
    """A node type: name, memory capacity, and core count."""

    name: str
    memory_mb: float
    cores: int = 32

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")


#: The paper's node type: AMD EPYC 7282, 128 GB DDR4.
EPYC_7282_128G = MachineConfig(name="epyc-7282-128g", memory_mb=128.0 * 1024, cores=32)


@dataclass
class Machine:
    """One cluster node with live allocation bookkeeping."""

    config: MachineConfig
    node_id: int = 0
    allocated_mb: float = 0.0
    running: dict[int, float] = field(default_factory=dict)

    @property
    def free_mb(self) -> float:
        return self.config.memory_mb - self.allocated_mb

    def can_fit(self, memory_mb: float) -> bool:
        return memory_mb <= self.free_mb + 1e-9

    def allocate(self, task_id: int, memory_mb: float) -> None:
        """Reserve ``memory_mb`` for ``task_id``; strict capacity check."""
        if memory_mb <= 0:
            raise ValueError(f"allocation must be positive, got {memory_mb}")
        if task_id in self.running:
            raise ValueError(f"task {task_id} already running on node {self.node_id}")
        if not self.can_fit(memory_mb):
            raise MemoryError(
                f"node {self.node_id} ({self.config.name}) cannot fit "
                f"{memory_mb:.0f} MB; free={self.free_mb:.0f} MB"
            )
        self.running[task_id] = memory_mb
        self.allocated_mb += memory_mb

    def release(self, task_id: int) -> float:
        """Free the reservation of ``task_id``; returns the released MB."""
        if task_id not in self.running:
            raise KeyError(f"task {task_id} not running on node {self.node_id}")
        mb = self.running.pop(task_id)
        self.allocated_mb -= mb
        return mb
