"""Machine model: configurations, allocation state, cluster specs.

The paper's testbed is eight identical nodes (AMD EPYC 7282, 128 GB
DDR4).  :class:`MachineConfig` describes a node type;
:class:`Machine` tracks the live allocation state of one node so the
resource manager can enforce capacity.  Real workflow clusters are
heterogeneous, so :func:`parse_cluster_spec` turns a compact string
such as ``"128g:4,256g:4"`` into the ``(config, count)`` node pools the
resource manager is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "MachineConfig",
    "Machine",
    "EPYC_7282_128G",
    "parse_memory_mb",
    "parse_cluster_spec",
]


@dataclass(frozen=True)
class MachineConfig:
    """A node type: name, memory capacity, and core count."""

    name: str
    memory_mb: float
    cores: int = 32

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")


#: The paper's node type: AMD EPYC 7282, 128 GB DDR4.
EPYC_7282_128G = MachineConfig(name="epyc-7282-128g", memory_mb=128.0 * 1024, cores=32)


def parse_memory_mb(token: str) -> float:
    """Parse a memory size token: ``"128g"``, ``"512m"``, or plain MB.

    Accepts a ``g``/``gb`` suffix (GiB), an ``m``/``mb`` suffix (MB), or
    a bare number interpreted as MB.  Case-insensitive; fractions such
    as ``"1.5g"`` are fine.
    """
    text = token.strip().lower()
    if not text:
        raise ValueError("empty memory size token")
    factor = 1.0
    for suffix, mult in (("gb", 1024.0), ("g", 1024.0), ("mb", 1.0), ("m", 1.0)):
        if text.endswith(suffix):
            text = text[: -len(suffix)]
            factor = mult
            break
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"cannot parse memory size {token!r}") from None
    mb = value * factor
    if mb <= 0:
        raise ValueError(f"memory size must be positive, got {token!r}")
    return mb


def parse_cluster_spec(spec: str) -> list[tuple[MachineConfig, int]]:
    """Parse a cluster spec string into ``(config, count)`` node pools.

    The spec is a comma-separated list of ``SIZE:COUNT`` entries, e.g.
    ``"128g:4,256g:4"`` — four 128 GB nodes plus four 256 GB nodes.  The
    count defaults to 1 when omitted (``"512g"``).  Sizes follow
    :func:`parse_memory_mb`.
    """
    pools: list[tuple[MachineConfig, int]] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            raise ValueError(f"empty entry in cluster spec {spec!r}")
        size_token, _, count_token = entry.partition(":")
        memory_mb = parse_memory_mb(size_token)
        if count_token:
            try:
                count = int(count_token)
            except ValueError:
                raise ValueError(
                    f"cannot parse node count in {entry!r}"
                ) from None
        else:
            count = 1
        if count < 1:
            raise ValueError(f"node count must be >= 1 in {entry!r}")
        config = MachineConfig(
            name=f"node-{size_token.strip().lower()}", memory_mb=memory_mb
        )
        pools.append((config, count))
    if not pools:
        raise ValueError(f"cluster spec {spec!r} describes no nodes")
    return pools


@dataclass
class Machine:
    """One cluster node with live allocation bookkeeping."""

    config: MachineConfig
    node_id: int = 0
    allocated_mb: float = 0.0
    running: dict[int, float] = field(default_factory=dict)

    @property
    def free_mb(self) -> float:
        return self.config.memory_mb - self.allocated_mb

    def can_fit(self, memory_mb: float) -> bool:
        return memory_mb <= self.free_mb + 1e-9

    def allocate(self, task_id: int, memory_mb: float) -> None:
        """Reserve ``memory_mb`` for ``task_id``; strict capacity check."""
        if memory_mb <= 0:
            raise ValueError(f"allocation must be positive, got {memory_mb}")
        if task_id in self.running:
            raise ValueError(f"task {task_id} already running on node {self.node_id}")
        if not self.can_fit(memory_mb):
            raise MemoryError(
                f"node {self.node_id} ({self.config.name}) cannot fit "
                f"{memory_mb:.0f} MB; free={self.free_mb:.0f} MB"
            )
        self.running[task_id] = memory_mb
        self.allocated_mb += memory_mb

    def release(self, task_id: int) -> float:
        """Free the reservation of ``task_id``; returns the released MB."""
        if task_id not in self.running:
            raise KeyError(f"task {task_id} not running on node {self.node_id}")
        mb = self.running.pop(task_id)
        self.allocated_mb -= mb
        return mb
