"""In-memory provenance database with per-(task, machine) indexes.

Append-only store; queries return NumPy views over pre-grown arrays so
the online hot path (one insert + one query per task completion) does no
per-call list-to-array conversion.  Capacity doubles amortised, like a
C++ vector — the "be easy on the memory" guide idiom applied to growth.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.provenance.records import TaskRecord

__all__ = ["ProvenanceDatabase"]


class _ColumnStore:
    """Growable column store for one (task type, machine) partition."""

    _INITIAL = 32

    def __init__(self) -> None:
        cap = self._INITIAL
        self.size = 0
        self._inputs = np.empty(cap, dtype=np.float64)
        self._peaks = np.empty(cap, dtype=np.float64)
        self._runtimes = np.empty(cap, dtype=np.float64)
        self._timestamps = np.empty(cap, dtype=np.int64)
        self._success = np.empty(cap, dtype=bool)

    def _grow(self) -> None:
        cap = self._inputs.shape[0] * 2
        for name in ("_inputs", "_peaks", "_runtimes", "_timestamps", "_success"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[: self.size] = old[: self.size]
            setattr(self, name, new)

    def append(self, rec: TaskRecord) -> None:
        if self.size == self._inputs.shape[0]:
            self._grow()
        i = self.size
        self._inputs[i] = rec.input_size_mb
        self._peaks[i] = rec.peak_memory_mb
        self._runtimes[i] = rec.runtime_hours
        self._timestamps[i] = rec.timestamp
        self._success[i] = rec.success
        self.size += 1

    def view(self, name: str) -> np.ndarray:
        return getattr(self, name)[: self.size]


class ProvenanceDatabase:
    """Append-only provenance store indexed by (task type, machine).

    The ``machine`` dimension exists because Sizey's model granularity is
    per task-machine pair (paper Fig. 4); queries may also aggregate over
    machines by passing ``machine=None``.
    """

    def __init__(self) -> None:
        self._partitions: dict[tuple[str, str], _ColumnStore] = defaultdict(
            _ColumnStore
        )
        self._records: list[TaskRecord] = []
        self._max_peak: dict[str, float] = {}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, rec: TaskRecord) -> None:
        """Store one execution record (Phase 3 of the paper's Fig. 3)."""
        self._partitions[rec.pool_key].append(rec)
        self._records.append(rec)
        if rec.success:
            prev = self._max_peak.get(rec.task_type, 0.0)
            if rec.peak_memory_mb > prev:
                self._max_peak[rec.task_type] = rec.peak_memory_mb

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[TaskRecord]:
        return list(self._records)

    def partitions(self) -> list[tuple[str, str]]:
        """All (task type, machine) keys with at least one record."""
        return sorted(self._partitions)

    def count(self, task_type: str, machine: str | None = None) -> int:
        """Number of records for a task type (optionally one machine)."""
        return sum(
            store.size
            for (t, m), store in self._partitions.items()
            if t == task_type and (machine is None or m == machine)
        )

    def _stores_for(
        self, task_type: str, machine: str | None
    ) -> list[_ColumnStore]:
        return [
            store
            for (t, m), store in self._partitions.items()
            if t == task_type and (machine is None or m == machine)
        ]

    def training_arrays(
        self,
        task_type: str,
        machine: str | None = None,
        *,
        include_failures: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X, y)`` for model training.

        ``X`` is the ``(n, 1)`` input-size matrix and ``y`` the measured
        peak memory.  Failed attempts are excluded by default: their
        recorded "peak" is merely the exceeded allocation, a lower bound
        that would bias models downward — the exact wrong direction for
        a failure-avoiding predictor.
        """
        stores = self._stores_for(task_type, machine)
        if not stores:
            return np.empty((0, 1)), np.empty(0)
        xs, ys = [], []
        for store in stores:
            ok = (
                np.ones(store.size, dtype=bool)
                if include_failures
                else store.view("_success")
            )
            xs.append(store.view("_inputs")[ok])
            ys.append(store.view("_peaks")[ok])
        x = np.concatenate(xs)
        y = np.concatenate(ys)
        return x.reshape(-1, 1), y

    def peaks(self, task_type: str, machine: str | None = None) -> np.ndarray:
        """Successful peak-memory observations (for percentile baselines)."""
        _, y = self.training_arrays(task_type, machine)
        return y

    def runtimes(self, task_type: str, machine: str | None = None) -> np.ndarray:
        """Runtimes of successful executions."""
        stores = self._stores_for(task_type, machine)
        if not stores:
            return np.empty(0)
        return np.concatenate(
            [s.view("_runtimes")[s.view("_success")] for s in stores]
        )

    def max_observed_peak(self, task_type: str) -> float | None:
        """Largest successful peak ever seen for ``task_type``.

        This is the allocation the paper's failure handler jumps to after
        the first underprediction failure ("the maximum amount of task
        memory ever observed is allocated", §II-E).
        """
        return self._max_peak.get(task_type)

    def known_task_types(self) -> set[str]:
        """Task types with at least one successful record."""
        return set(self._max_peak)
