"""Provenance database substrate.

The SWMS-side store Sizey queries in Phase 1 of the paper's Fig. 3: it
holds one record per (attempted) task execution — task name, machine,
input features, measured peak memory, runtime, and success flag — and
supports the online insertions of Phase 3.
"""

from repro.provenance.database import ProvenanceDatabase
from repro.provenance.records import TaskRecord

__all__ = ["TaskRecord", "ProvenanceDatabase"]
