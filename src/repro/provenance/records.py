"""Provenance record schema."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TaskRecord"]


@dataclass(frozen=True)
class TaskRecord:
    """One completed (or failed) task execution, as stored by the SWMS.

    Mirrors the table sketched in the paper's Fig. 3 (task instance,
    timestamp, features, labels).  ``peak_memory_mb`` is only a *lower
    bound* on true usage for failed attempts (the task was killed at the
    limit), which is why :meth:`repro.provenance.database.
    ProvenanceDatabase.training_arrays` excludes failures by default.

    Attributes
    ----------
    task_type:
        Task-type name, e.g. ``"MarkDuplicates"``.
    workflow:
        Owning workflow name.
    machine:
        Machine configuration the task ran on.
    timestamp:
        Logical submission index (the simulator's clock).
    input_size_mb:
        Input-size feature.
    peak_memory_mb:
        Measured peak memory (for failed attempts: the allocation that
        was exceeded).
    runtime_hours:
        Observed runtime (for failed attempts: time until the crash).
    success:
        Whether the attempt completed.
    attempt:
        1-based attempt counter for the task instance.
    allocated_mb:
        The memory allocation the attempt ran under.
    instance_id:
        Trace-level id of the task instance, used to match completion
        records to earlier predictions (offset bookkeeping).
    """

    task_type: str
    workflow: str
    machine: str
    timestamp: int
    input_size_mb: float
    peak_memory_mb: float
    runtime_hours: float
    success: bool = True
    attempt: int = 1
    allocated_mb: float = 0.0
    instance_id: int = -1

    def __post_init__(self) -> None:
        if self.peak_memory_mb <= 0:
            raise ValueError(
                f"peak_memory_mb must be positive, got {self.peak_memory_mb}"
            )
        if self.runtime_hours < 0:
            raise ValueError(
                f"runtime_hours must be >= 0, got {self.runtime_hours}"
            )
        if self.attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {self.attempt}")

    @property
    def features(self) -> np.ndarray:
        """Feature vector (shape ``(1, d)``) used to train predictors."""
        return np.array([[self.input_size_mb]], dtype=np.float64)

    @property
    def pool_key(self) -> tuple[str, str]:
        """(task type, machine) — the granularity Sizey keys its models by."""
        return (self.task_type, self.machine)
