"""The sizing service's JSON wire protocol.

Request parsing is strict and *typed*: every rejection is a
:class:`ProtocolError` naming the offending field (``tasks[2].
input_size_mb``), which the server maps to an HTTP 400 whose body
carries the field path — so a misbehaving client learns exactly which
key to fix instead of guessing from a blanket "bad request".

The parsers return the repo's native types
(:class:`~repro.sim.interface.TaskSubmission`,
:class:`~repro.provenance.records.TaskRecord`), keeping the server and
the simulation backends on one predictor-facing vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.provenance.records import TaskRecord
from repro.sim.interface import TaskSubmission

__all__ = [
    "ProtocolError",
    "ObserveItem",
    "parse_predict_request",
    "parse_observe_request",
    "parse_tenant",
]

#: Upper bounds keeping one request from monopolizing the event loop.
MAX_TASKS_PER_REQUEST = 4096
MAX_TENANT_NAME_LEN = 128

_PRESET_DEFAULT_MB = 4096.0


class ProtocolError(ValueError):
    """A malformed request, pinned to the field that broke the contract."""

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}")
        self.field = field
        self.message = message

    def to_payload(self) -> dict:
        """The HTTP 400 response body."""
        return {"error": {"field": self.field, "message": self.message}}


@dataclass(frozen=True)
class ObserveItem:
    """One parsed ``/observe`` entry: the record plus ledger context.

    ``allocated_mb > 0`` opts the observation into the tenant's wastage
    ledger; ``0`` (the default) trains the models without accounting —
    for callers that know peaks but not what was provisioned.
    """

    record: TaskRecord
    allocated_mb: float
    attempt: int


def _require_object(payload: object, field: str) -> dict:
    if not isinstance(payload, dict):
        raise ProtocolError(
            field, f"expected a JSON object, got {type(payload).__name__}"
        )
    return payload


def _require_list(value: object, field: str) -> list:
    if not isinstance(value, list):
        raise ProtocolError(
            field, f"expected a JSON array, got {type(value).__name__}"
        )
    if not value:
        raise ProtocolError(field, "must not be empty")
    if len(value) > MAX_TASKS_PER_REQUEST:
        raise ProtocolError(
            field,
            f"at most {MAX_TASKS_PER_REQUEST} items per request, "
            f"got {len(value)}",
        )
    return value


def _str_field(obj: dict, name: str, path: str, default: str | None = None) -> str:
    value = obj.get(name, default)
    if value is None:
        raise ProtocolError(f"{path}.{name}", "is required")
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{path}.{name}", "must be a non-empty string")
    return value


def _num_field(
    obj: dict,
    name: str,
    path: str,
    default: float | None = None,
    *,
    minimum: float | None = None,
    exclusive: bool = False,
) -> float:
    value = obj.get(name, default)
    if value is None:
        raise ProtocolError(f"{path}.{name}", "is required")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{path}.{name}", "must be a number")
    value = float(value)
    if minimum is not None:
        if exclusive and value <= minimum:
            raise ProtocolError(f"{path}.{name}", f"must be > {minimum:g}")
        if not exclusive and value < minimum:
            raise ProtocolError(f"{path}.{name}", f"must be >= {minimum:g}")
    return value


def _int_field(obj: dict, name: str, path: str, default: int) -> int:
    value = obj.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{path}.{name}", "must be an integer")
    return value


def _bool_field(obj: dict, name: str, path: str, default: bool) -> bool:
    value = obj.get(name, default)
    if not isinstance(value, bool):
        raise ProtocolError(f"{path}.{name}", "must be a boolean")
    return value


def parse_tenant(payload: dict) -> str:
    """Validate the ``tenant`` routing key shared by both POST bodies."""
    tenant = payload.get("tenant")
    if tenant is None:
        raise ProtocolError("tenant", "is required")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("tenant", "must be a non-empty string")
    if len(tenant) > MAX_TENANT_NAME_LEN:
        raise ProtocolError(
            "tenant", f"at most {MAX_TENANT_NAME_LEN} characters"
        )
    if any(c.isspace() or not c.isprintable() for c in tenant):
        raise ProtocolError(
            "tenant", "must not contain whitespace or control characters"
        )
    return tenant


def parse_predict_request(
    payload: object,
) -> tuple[str, list[TaskSubmission]]:
    """Parse a ``POST /predict`` body into (tenant, submissions)."""
    body = _require_object(payload, "body")
    tenant = parse_tenant(body)
    tasks = _require_list(body.get("tasks"), "tasks")
    submissions: list[TaskSubmission] = []
    for i, item in enumerate(tasks):
        path = f"tasks[{i}]"
        obj = _require_object(item, path)
        submissions.append(
            TaskSubmission(
                task_type=_str_field(obj, "task_type", path),
                workflow=_str_field(obj, "workflow", path, default="serve"),
                machine=_str_field(obj, "machine", path, default="default"),
                instance_id=_int_field(obj, "instance_id", path, -1),
                input_size_mb=_num_field(
                    obj, "input_size_mb", path, minimum=0.0
                ),
                preset_memory_mb=_num_field(
                    obj,
                    "preset_memory_mb",
                    path,
                    _PRESET_DEFAULT_MB,
                    minimum=0.0,
                    exclusive=True,
                ),
                timestamp=_int_field(obj, "timestamp", path, 0),
            )
        )
    return tenant, submissions


def parse_observe_request(payload: object) -> tuple[str, list[ObserveItem]]:
    """Parse a ``POST /observe`` body into (tenant, observations)."""
    body = _require_object(payload, "body")
    tenant = parse_tenant(body)
    items = _require_list(body.get("observations"), "observations")
    observations: list[ObserveItem] = []
    for i, item in enumerate(items):
        path = f"observations[{i}]"
        obj = _require_object(item, path)
        success = _bool_field(obj, "success", path, True)
        peak = _num_field(
            obj, "peak_memory_mb", path, minimum=0.0, exclusive=True
        )
        allocated = _num_field(obj, "allocated_mb", path, 0.0, minimum=0.0)
        # The ledger enforces these invariants by raising; validating
        # here instead turns an inconsistent report into a typed 400.
        if allocated > 0.0 and success and allocated < peak:
            raise ProtocolError(
                f"{path}.allocated_mb",
                f"successful run cannot have allocated < peak "
                f"({allocated:g} < {peak:g} MB)",
            )
        if allocated > 0.0 and not success and allocated >= peak:
            raise ProtocolError(
                f"{path}.allocated_mb",
                f"failed run requires allocated < peak "
                f"({allocated:g} >= {peak:g} MB)",
            )
        record = TaskRecord(
            task_type=_str_field(obj, "task_type", path),
            workflow=_str_field(obj, "workflow", path, default="serve"),
            machine=_str_field(obj, "machine", path, default="default"),
            timestamp=_int_field(obj, "timestamp", path, 0),
            input_size_mb=_num_field(obj, "input_size_mb", path, minimum=0.0),
            peak_memory_mb=peak,
            runtime_hours=_num_field(
                obj, "runtime_hours", path, 0.0, minimum=0.0
            ),
            success=success,
            attempt=max(_int_field(obj, "attempt", path, 1), 1),
            allocated_mb=allocated,
            instance_id=_int_field(obj, "instance_id", path, -1),
        )
        observations.append(
            ObserveItem(
                record=record, allocated_mb=allocated, attempt=record.attempt
            )
        )
    return tenant, observations
