"""Sizing as a service: a resident async prediction server.

The paper frames memory sizing as an *online* loop — predict, observe
the measured peak, update the models — but the CLI runs that loop in
batch, one simulated workload at a time.  This package keeps the loop
resident: an asyncio HTTP server (:mod:`repro.serve.server`) holds warm
per-tenant :class:`~repro.core.predictor.SizeyPredictor` instances
(:mod:`repro.serve.tenants`) and exposes the loop as four endpoints:

========  ============  ====================================================
method    path          purpose
========  ============  ====================================================
POST      /predict      batch memory sizing for a list of task submissions
POST      /observe      peak-memory feedback -> per-tenant model update
GET       /metrics      wastage ledger, per-model accuracy, request counters
GET       /healthz      liveness probe
========  ============  ====================================================

Tenants are isolated: each name lazily creates its own predictor with a
deterministic per-tenant seed, so feedback for one tenant never moves
another tenant's estimates, and restarting the server reproduces the
same predictions given the same observation history.  The wire protocol
(:mod:`repro.serve.protocol`) is plain JSON; :mod:`repro.serve.client`
is the blocking client and :mod:`repro.serve.loadgen` replays any
:class:`~repro.workload.base.WorkloadSource` against a live server at a
configured arrival rate.

Everything is standard library + numpy — no web framework.
"""

from repro.serve.client import ServeError, SizingClient
from repro.serve.loadgen import LoadgenReport, run_loadgen
from repro.serve.protocol import ProtocolError
from repro.serve.server import ServerThread, SizingServer
from repro.serve.tenants import TenantRegistry, TenantSession, tenant_seed

__all__ = [
    "LoadgenReport",
    "ProtocolError",
    "ServeError",
    "ServerThread",
    "SizingClient",
    "SizingServer",
    "TenantRegistry",
    "TenantSession",
    "run_loadgen",
    "tenant_seed",
]
