"""Multi-tenant predictor pools with deterministic seeds and LRU eviction.

One :class:`TenantSession` owns everything stateful about a tenant: its
:class:`~repro.core.predictor.SizeyPredictor` (and therefore its model
pools), its :class:`~repro.cluster.accounting.WastageLedger`, and its
request counters.  The :class:`TenantRegistry` creates sessions lazily
on first use — an unknown tenant name is a valid tenant that simply has
no history yet — and evicts the least-recently-used session when the
configured capacity is exceeded, so a server pointed at an unbounded
tenant population cannot grow without limit.

Seeding is deterministic per *name*: ``tenant_seed`` mixes the server's
base seed with a digest of the tenant name, so two servers started with
the same base seed hand every tenant identical model initialisation —
replaying the same observation history reproduces the same estimates
across restarts (pinned by the serve tests).
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import replace

from repro.cluster.accounting import WastageLedger
from repro.core.config import SizeyConfig
from repro.core.predictor import SizeyPredictor
from repro.obs.metrics import LatencyHistogram
from repro.serve.protocol import ObserveItem
from repro.sim.interface import TaskSubmission

__all__ = ["tenant_seed", "TenantSession", "TenantRegistry"]


def tenant_seed(name: str, base_seed: int = 0) -> int:
    """Deterministic per-tenant seed: stable across server restarts."""
    return (int(base_seed) + zlib.crc32(name.encode("utf-8"))) % (2**31 - 1)


class TenantSession:
    """All per-tenant state behind one lock.

    The server handles requests on executor threads, so two requests for
    the *same* tenant can run concurrently; the session lock serializes
    them (predict ordering relative to observes is part of the online
    contract), while different tenants proceed fully in parallel.  The
    pool-level lock below this one keeps direct pool sharing safe too.
    """

    def __init__(
        self,
        name: str,
        config: SizeyConfig | None = None,
        base_seed: int = 0,
        clock=time.perf_counter,
    ) -> None:
        self.name = name
        self.seed = tenant_seed(name, base_seed)
        cfg = config if config is not None else SizeyConfig()
        self.config = replace(cfg, random_state=self.seed)
        self.predictor = SizeyPredictor(self.config)
        self.ledger = WastageLedger()
        self.created_at = time.time()
        self.n_predictions = 0
        self.n_observations = 0
        #: Request-latency histograms per operation (lock-wait included);
        #: ``clock`` is injectable so tests can pin deterministic buckets.
        self.latency = {
            "predict": LatencyHistogram(),
            "observe": LatencyHistogram(),
        }
        self._clock = clock
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def predict(self, tasks: list[TaskSubmission]) -> list[dict]:
        """Size a batch; each result reports its estimate and source.

        ``source`` is ``"model"`` when the tenant's pool answered and
        ``"preset"`` when the submission fell back to its user preset
        (unknown task type or below ``min_history``) — the distinction
        the paper's Phase 1 makes, surfaced so clients can tell a cold
        tenant from a warm one.
        """
        start = self._clock()
        with self._lock:
            sources = [self._source_of(task) for task in tasks]
            estimates = self.predictor.predict_batch(tasks)
            self.n_predictions += len(tasks)
            self.latency["predict"].observe(self._clock() - start)
        return [
            {"estimate_mb": float(est), "source": src}
            for est, src in zip(estimates, sources)
        ]

    def _source_of(self, task: TaskSubmission) -> str:
        key = self.predictor._key(task.task_type, task.machine)
        pool = self.predictor.pools.get(key)
        if pool is None or not pool.is_ready or (
            pool.n_observations < self.config.min_history
        ):
            return "preset"
        return "model"

    def observe(self, items: list[ObserveItem]) -> int:
        """Feed peak-memory measurements back into the tenant's models."""
        start = self._clock()
        with self._lock:
            for item in items:
                rec = item.record
                if item.allocated_mb > 0.0:
                    if rec.success:
                        self.ledger.record_success(
                            task_type=rec.task_type,
                            workflow=rec.workflow,
                            instance_id=rec.instance_id,
                            attempt=item.attempt,
                            allocated_mb=item.allocated_mb,
                            peak_memory_mb=rec.peak_memory_mb,
                            runtime_hours=rec.runtime_hours,
                        )
                    else:
                        self.ledger.record_failure(
                            task_type=rec.task_type,
                            workflow=rec.workflow,
                            instance_id=rec.instance_id,
                            attempt=item.attempt,
                            allocated_mb=item.allocated_mb,
                            peak_memory_mb=rec.peak_memory_mb,
                            time_to_failure_hours=rec.runtime_hours,
                        )
                self.predictor.observe(rec)
            self.n_observations += len(items)
            self.latency["observe"].observe(self._clock() - start)
        return len(items)

    def metrics(self) -> dict:
        """Per-tenant slice of ``GET /metrics``.

        One lock acquisition snapshots every counter and histogram
        together, so the payload is internally consistent even while
        predict/observe traffic is mutating the session concurrently.
        """
        with self._lock:
            accuracy = {
                f"{task_type}@{machine}": {
                    name: float(score)
                    for name, score in zip(
                        self.config.model_classes, pool.accuracy_scores()
                    )
                }
                for (task_type, machine), pool in sorted(
                    self.predictor.pools.items()
                )
            }
            return {
                "seed": self.seed,
                "n_predictions": self.n_predictions,
                "n_observations": self.n_observations,
                "preset_fallbacks": self.predictor.preset_fallbacks,
                "n_pools": len(self.predictor.pools),
                "model_accuracy": accuracy,
                "model_selection_shares": (
                    self.predictor.model_selection_shares()
                ),
                "latency": {
                    op: hist.snapshot()
                    for op, hist in self.latency.items()
                },
                "wastage": {
                    "total_gbh": self.ledger.total_wastage_gbh,
                    "runtime_hours": self.ledger.total_runtime_hours,
                    "failures": self.ledger.num_failures,
                    "by_task_type": self.ledger.wastage_by_task_type(),
                },
            }


class TenantRegistry:
    """Lazily-created tenant sessions with LRU capacity eviction."""

    def __init__(
        self,
        config: SizeyConfig | None = None,
        *,
        base_seed: int = 0,
        max_tenants: int = 64,
    ) -> None:
        if max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {max_tenants}")
        self.config = config
        self.base_seed = base_seed
        self.max_tenants = max_tenants
        self.evictions = 0
        self._sessions: OrderedDict[str, TenantSession] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, name: str) -> TenantSession:
        """The tenant's session, created on first use; bumps LRU rank."""
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                session = TenantSession(
                    name, config=self.config, base_seed=self.base_seed
                )
                self._sessions[name] = session
                while len(self._sessions) > self.max_tenants:
                    self._sessions.popitem(last=False)
                    self.evictions += 1
            else:
                self._sessions.move_to_end(name)
            return session

    def peek(self, name: str) -> TenantSession | None:
        """The session if resident, without creating or bumping it."""
        with self._lock:
            return self._sessions.get(name)

    def names(self) -> list[str]:
        """Resident tenant names, least- to most-recently used."""
        with self._lock:
            return list(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def metrics(self) -> dict:
        """The registry + per-tenant slice of ``GET /metrics``.

        The session list *and* the eviction counter are snapshotted in
        one lock acquisition — reading ``evictions`` unlocked could pair
        a post-eviction counter with a pre-eviction tenant list.  The
        per-session calls then run outside the registry lock (each takes
        its own session lock), so a slow tenant cannot stall ``get()``.
        """
        with self._lock:
            sessions = list(self._sessions.items())
            n_tenants = len(sessions)
            evictions = self.evictions
        return {
            "n_tenants": n_tenants,
            "max_tenants": self.max_tenants,
            "evictions": evictions,
            "tenants": {
                name: session.metrics() for name, session in sessions
            },
        }
