"""Load generator: replay a WorkloadSource against a live sizing server.

The harness turns any :class:`~repro.workload.base.WorkloadSource` into
serving traffic: tasks are chunked into ``/predict`` batches, batches
are assigned round-robin to the configured tenants, and request starts
follow a seeded Poisson arrival process at the requested rate — the
serving analogue of the simulator's arrival models.  After each sized
batch the generator optionally closes the online loop, reporting each
task's ground-truth peak back through ``/observe`` exactly like an SWMS
would: a sufficient estimate becomes a successful (ledger-accounted)
run, an under-allocation becomes a failure record plus a training-only
success — mirroring the simulator's kill-and-retry outcome.

Each tenant drives its own persistent connection, so the measured
p50/p95/p99 ``/predict`` latencies and the total request rate are
end-to-end numbers (client serialization included).  They land in
``BENCH_6.json`` via ``benchmarks/test_bench_serve.py``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.obs.metrics import LatencyHistogram
from repro.workflow.task import TaskInstance
from repro.workload.base import WorkloadSource

__all__ = ["LoadgenReport", "run_loadgen"]


@dataclass(frozen=True)
class LoadgenReport:
    """End-to-end load-generation measurements (latencies in ms).

    ``predict_latency`` is a :meth:`~repro.obs.metrics.LatencyHistogram.
    snapshot` using the same bucket bounds as the server's ``/metrics``
    histograms, so client-observed and server-observed latency
    distributions compare bucket-for-bucket.
    """

    workload: str
    n_tenants: int
    n_tasks: int
    n_predict_requests: int
    n_observe_requests: int
    n_errors: int
    n_under_allocations: int
    duration_s: float
    requests_per_sec: float
    predict_p50_ms: float
    predict_p95_ms: float
    predict_p99_ms: float
    predict_mean_ms: float
    predict_latency: dict | None = None

    def as_dict(self) -> dict:
        return asdict(self)


class _AsyncConnection:
    """Minimal HTTP/1.1 keep-alive client on asyncio streams."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure_open(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        await self._ensure_open()
        assert self._reader is not None and self._writer is not None
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("ascii")
        self._writer.write(head + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        length = 0
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self._reader.readexactly(length) if length else b""
        return status, json.loads(data.decode("utf-8")) if data else {}

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None


def _predict_item(inst: TaskInstance) -> dict:
    return {
        "task_type": inst.task_type.name,
        "workflow": inst.task_type.workflow,
        "machine": inst.machine,
        "instance_id": inst.instance_id,
        "input_size_mb": inst.input_size_mb,
        "preset_memory_mb": inst.task_type.preset_memory_mb,
    }


def _observe_items(
    batch: list[TaskInstance], results: list[dict]
) -> tuple[list[dict], int]:
    """SWMS-style feedback for one sized batch.

    Returns the observation payloads plus how many estimates fell short
    of the true peak (the under-allocation count in the report).
    """
    items: list[dict] = []
    under = 0
    for inst, result in zip(batch, results):
        estimate = float(result["estimate_mb"])
        base = {
            "task_type": inst.task_type.name,
            "workflow": inst.task_type.workflow,
            "machine": inst.machine,
            "instance_id": inst.instance_id,
            "input_size_mb": inst.input_size_mb,
            "peak_memory_mb": inst.peak_memory_mb,
            "runtime_hours": inst.runtime_hours,
        }
        if estimate >= inst.peak_memory_mb:
            items.append({**base, "success": True, "allocated_mb": estimate})
        else:
            under += 1
            # The failed attempt wastes its whole allocation; the retry
            # that eventually succeeds still reveals the true peak, so a
            # training-only success (allocated 0 -> no ledger row) follows.
            items.append(
                {**base, "success": False, "allocated_mb": estimate}
            )
            items.append({**base, "success": True, "allocated_mb": 0.0})
    return items, under


async def _tenant_worker(
    tenant: str,
    host: str,
    port: int,
    schedule: list[tuple[float, list[TaskInstance]]],
    t0: float,
    observe: bool,
    latencies: list[float],
    counters: dict,
) -> None:
    conn = _AsyncConnection(host, port)
    loop = asyncio.get_running_loop()
    try:
        for offset, batch in schedule:
            delay = t0 + offset - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            payload = {
                "tenant": tenant,
                "tasks": [_predict_item(inst) for inst in batch],
            }
            start = time.perf_counter()
            status, response = await conn.request(
                "POST", "/predict", payload
            )
            latencies.append((time.perf_counter() - start) * 1e3)
            counters["predict"] += 1
            if status != 200:
                counters["errors"] += 1
                continue
            if not observe:
                continue
            items, under = _observe_items(batch, response["results"])
            counters["under"] += under
            status, _ = await conn.request(
                "POST",
                "/observe",
                {"tenant": tenant, "observations": items},
            )
            counters["observe"] += 1
            if status != 200:
                counters["errors"] += 1
    finally:
        await conn.close()


async def _run_async(
    source: WorkloadSource,
    host: str,
    port: int,
    tenant_names: list[str],
    rate_rps: float,
    batch: int,
    max_tasks: int | None,
    observe: bool,
    seed: int,
) -> LoadgenReport:
    tasks: list[TaskInstance] = []
    for inst in source.iter_tasks():
        tasks.append(inst)
        if max_tasks is not None and len(tasks) >= max_tasks:
            break
    if not tasks:
        raise ValueError(f"workload {source.name!r} yielded no tasks")
    batches = [tasks[i : i + batch] for i in range(0, len(tasks), batch)]
    # Seeded Poisson arrivals; batch k goes to tenant k round-robin.
    rng = np.random.default_rng(seed)
    offsets = np.cumsum(rng.exponential(1.0 / rate_rps, size=len(batches)))
    schedules: dict[str, list[tuple[float, list[TaskInstance]]]] = {
        name: [] for name in tenant_names
    }
    for k, b in enumerate(batches):
        name = tenant_names[k % len(tenant_names)]
        schedules[name].append((float(offsets[k]), b))

    latencies: list[float] = []
    counters = {"predict": 0, "observe": 0, "errors": 0, "under": 0}
    t0 = asyncio.get_running_loop().time()
    wall_start = time.perf_counter()
    await asyncio.gather(
        *(
            _tenant_worker(
                name,
                host,
                port,
                schedule,
                t0,
                observe,
                latencies,
                counters,
            )
            for name, schedule in schedules.items()
        )
    )
    duration = time.perf_counter() - wall_start
    lat = np.asarray(latencies, dtype=np.float64)
    hist = LatencyHistogram()
    for ms in latencies:
        hist.observe(ms / 1e3)
    n_requests = counters["predict"] + counters["observe"]
    return LoadgenReport(
        workload=source.name,
        n_tenants=len(tenant_names),
        n_tasks=len(tasks),
        n_predict_requests=counters["predict"],
        n_observe_requests=counters["observe"],
        n_errors=counters["errors"],
        n_under_allocations=counters["under"],
        duration_s=duration,
        requests_per_sec=n_requests / duration if duration > 0 else 0.0,
        predict_p50_ms=float(np.percentile(lat, 50)),
        predict_p95_ms=float(np.percentile(lat, 95)),
        predict_p99_ms=float(np.percentile(lat, 99)),
        predict_mean_ms=float(lat.mean()),
        predict_latency=hist.snapshot(),
    )


def run_loadgen(
    workload: "WorkloadSource | str",
    *,
    host: str = "127.0.0.1",
    port: int,
    tenants: "int | list[str]" = 2,
    rate_rps: float = 200.0,
    batch: int = 8,
    max_tasks: int | None = 256,
    observe: bool = True,
    seed: int = 0,
) -> LoadgenReport:
    """Replay ``workload`` against a live server; returns the report.

    ``tenants`` is either a count (names become ``tenant-0..N-1``) or an
    explicit list of tenant names.  ``rate_rps`` shapes the *arrival*
    process of predict requests; the achieved rate also includes the
    observe feedback traffic.
    """
    if isinstance(workload, str):
        from repro.workload import parse_workload

        source = parse_workload(workload, seed=seed)
    else:
        source = workload
    if isinstance(tenants, int):
        if tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {tenants}")
        tenant_names = [f"tenant-{i}" for i in range(tenants)]
    else:
        tenant_names = list(tenants)
        if not tenant_names:
            raise ValueError("tenant name list must not be empty")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    return asyncio.run(
        _run_async(
            source,
            host,
            port,
            tenant_names,
            rate_rps,
            batch,
            max_tasks,
            observe,
            seed,
        )
    )
